"""Assert the wire-smoke archive proves mixed-codec interop.

The ``wire-smoke`` gate runs a UDP cluster with one node pinned to the
v2 JSON codec while the rest negotiate v3 binary, so this script is the
document-side half of the check: the archived run must record the mixed
codec map, every sample must be sound, and the merged trace must pass
the independent Theorem 2.1 oracle - the binary path is only allowed to
be *faster*, never looser.

Stdlib + the installed package only (the CI smoke jobs install no test
extras).  Usage::

    python scripts/check_wire_smoke.py wire_smoke_run.json
"""

from __future__ import annotations

import json
import sys

from repro.sim.serialize import load_run
from repro.testing.oracle import oracle_causal_past, oracle_external_bounds


def main(path: str) -> int:
    spec, trace, samples = load_run(path)
    document = json.load(open(path))

    codecs = document.get("codecs")
    assert isinstance(codecs, dict) and codecs, "document must record node codecs"
    used = set(codecs.values())
    assert used == {"json", "binary"}, (
        f"wire smoke needs a *mixed* cluster, got codecs {sorted(used)}"
    )

    assert len(trace) > 0 and len(samples) > 0, "empty archive"

    def _endpoint(value):  # archives encode infinities as "inf"/"-inf"
        if value == "inf":
            return float("inf")
        if value == "-inf":
            return float("-inf")
        return float(value)

    unsound = [
        s
        for s in samples
        if not (_endpoint(s["lower"]) <= s["truth"] <= _endpoint(s["upper"]))
    ]
    assert not unsound, f"{len(unsound)} sample(s) exclude the truth"

    # Thm 2.1 oracle over the merged document: at each processor's last
    # event the from-scratch oracle bound must contain the true real
    # time - codec mixing must not perturb the evidence the estimators
    # exchanged.
    events = [record.event for record in trace]
    rt_of = {record.event.eid: record.rt for record in trace}
    last = {}
    for event in events:
        prev = last.get(event.proc)
        if prev is None or event.seq > prev.seq:
            last[event.proc] = event
    checked = 0
    for proc, event in sorted(last.items()):
        past = oracle_causal_past(events, event.eid)
        oracle = oracle_external_bounds(past, spec, event.eid)
        truth = rt_of[event.eid]
        assert oracle.contains(truth, tolerance=1e-6), (
            f"oracle bound {oracle} at {event.eid} excludes rt {truth:.9g}"
        )
        if proc != spec.source:
            assert oracle.is_bounded, f"{proc} never gathered two-sided evidence"
        checked += 1

    binary_nodes = sum(1 for codec in codecs.values() if codec == "binary")
    print(
        f"wire smoke ok: {len(codecs)} nodes ({binary_nodes} binary, "
        f"{len(codecs) - binary_nodes} json), {len(events)} merged events, "
        f"{len(samples)} sound samples, oracle parity at {checked} finals"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1]))
