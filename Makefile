# Developer loop for the reproduction.

PYTHON ?= python

.PHONY: install test bench experiments experiments-quick chaos chaos-byz examples fuzz fuzz-long clean

# conformance-suite paths run by the fuzz targets (the differential
# driver, oracles, invariant hooks, corpus replay, and both fuzz files)
FUZZ_PATHS = tests/testing tests/integration/test_protocol_fuzz.py \
	tests/integration/test_lossy_fuzz.py tests/core/test_validate_byzantine.py

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.cli

experiments-quick:
	$(PYTHON) -m repro.experiments.cli --quick

chaos:
	$(PYTHON) -m repro.experiments.cli chaos-soak --quick

# fixed-seed Byzantine chaos: one ring soak plus the adversarial run
# (payload tampering, suspicion, eviction) - deterministic smoke check
chaos-byz:
	$(PYTHON) -m repro.experiments.chaos --shapes ring --duration 60 --seed 0 --liars 1

# property-based conformance sweep at the CI example budget (~150/property)
fuzz:
	HYPOTHESIS_PROFILE=ci $(PYTHON) -m pytest $(FUZZ_PATHS) -q

# nightly-scale sweep with debug invariant hooks armed everywhere
fuzz-long:
	HYPOTHESIS_PROFILE=nightly REPRO_DEBUG=1 $(PYTHON) -m pytest $(FUZZ_PATHS) -q

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
