# Developer loop for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-json bench-compare bench-refresh experiments experiments-quick chaos chaos-byz churn examples fuzz fuzz-long rt-demo rt-smoke wire-smoke serve-demo loadtest serve-smoke strata-demo hierarchy-smoke clean

# relative slowdown tolerated by the perf gate before it fails.  0.75
# accommodates CPU-throttled/shared dev machines (observed run-to-run
# drift up to ~1.5x with identical code); tighten on quiet hardware with
# `BENCH_TOLERANCE=0.25 make bench-compare`.  CI sets 1.0.  The 2x
# backend speedup floor is within-run and unaffected by this knob.
BENCH_TOLERANCE ?= 0.75

# conformance-suite paths run by the fuzz targets (the differential
# driver, oracles, invariant hooks, corpus replay, and both fuzz files)
FUZZ_PATHS = tests/testing tests/integration/test_protocol_fuzz.py \
	tests/integration/test_lossy_fuzz.py tests/core/test_validate_byzantine.py

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# machine-readable benchmark baseline; BENCH_core.json is committed so
# perf regressions show up as a diff (CI uploads the fresh run as an
# artifact for comparison)
bench-json:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only --benchmark-json=BENCH_core.json

# the perf-regression gate: fresh run vs the committed baseline, plus the
# hard floor on the compacted numpy AGDP backend's speedup over dict at
# the largest live-set size (the tentpole acceptance criterion)
bench-compare:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only --benchmark-json=BENCH_fresh.json
	$(PYTHON) benchmarks/compare.py BENCH_core.json BENCH_fresh.json \
		--tolerance $(BENCH_TOLERANCE) --report BENCH_compare.md \
		--assert-speedup "test_agdp_backend_comparison[128-numpy]" \
			"test_agdp_backend_comparison[128-dict]" 2.0 \
		--assert-speedup "test_serve_garbage_rejection" \
			"test_serve_probe_throughput" 2.0 \
		--assert-speedup "test_compose_delegated_throughput" \
			"test_delegation_reply_throughput" 3.0 \
		--assert-speedup "test_sync_encode_decode[binary]" \
			"test_sync_encode_decode[json]" 3.0 \
		--assert-improved-vs benchmarks/BENCH_pre_wire_baseline.json \
			"test_line_gossip_run[12]" 2.0 \
		--assert-improved-vs benchmarks/BENCH_pre_wire_baseline.json \
			"test_ntp_hierarchy_run[shape1]" 2.0

# rebless the committed baseline after an intentional perf change
# (bench-json with intent: review the diff of BENCH_core.json)
bench-refresh:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only --benchmark-json=BENCH_core.json

experiments:
	$(PYTHON) -m repro.experiments.cli

experiments-quick:
	$(PYTHON) -m repro.experiments.cli --quick

chaos:
	$(PYTHON) -m repro.experiments.cli chaos-soak --quick

# fixed-seed Byzantine chaos: one ring soak plus the adversarial run
# (payload tampering, suspicion, eviction) - deterministic smoke check
chaos-byz:
	$(PYTHON) -m repro.experiments.chaos --shapes ring --duration 60 --seed 0 --liars 1

# fixed-seed churn smoke: every corruption scope detected and rebuilt
# with finite re-convergence, plus a late joiner bootstrapping through
# the sponsor-snapshot handshake (quick size, deterministic)
churn:
	$(PYTHON) -m repro.experiments.cli e11-churn --quick

# property-based conformance sweep at the CI example budget (~150/property)
fuzz:
	HYPOTHESIS_PROFILE=ci $(PYTHON) -m pytest $(FUZZ_PATHS) -q

# nightly-scale sweep with debug invariant hooks armed everywhere
fuzz-long:
	HYPOTHESIS_PROFILE=nightly REPRO_DEBUG=1 $(PYTHON) -m pytest $(FUZZ_PATHS) -q

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

# live 4-node cluster over loopback with drifting clocks (~4 s)
rt-demo:
	$(PYTHON) -m repro.rt.cli --nodes 4 --shape ring --duration 4 \
		--period 0.2 --drifting --require-converged

# the CI wire gate: a mixed-codec UDP cluster (n2 pinned to the v2 JSON
# codec, everyone else negotiating v3 binary) must converge with zero
# soundness violations; the checker then verifies the archived document
# records the mixed codec map and passes the Thm 2.1 oracle
wire-smoke:
	$(PYTHON) -m repro.rt.cli --nodes 4 --shape line --transport udp \
		--duration 4 --period 0.2 --drifting --json-node n2 --seed 0 \
		--require-converged --out wire_smoke_run.json
	$(PYTHON) scripts/check_wire_smoke.py wire_smoke_run.json

# the CI runtime gate: loopback + real UDP sockets, both must converge
rt-smoke:
	$(PYTHON) -m repro.rt.cli --nodes 3 --duration 8 --period 0.25 \
		--skew-ppm 100 --require-converged --out rt_loopback_run.json
	$(PYTHON) -m repro.rt.cli --nodes 2 --transport udp --duration 8 \
		--period 0.25 --skew-ppm 100 --require-converged --out rt_udp_run.json

# serving-tier demo: 2 servers, 4 clients, primary crash and failover (~3 s)
serve-demo:
	$(PYTHON) -m repro.rt.serve_cli --nodes 3 --duration 3 --clients 4 \
		--crash-primary 1.2:2.2 --eps-max 0.02 --require-sound

# sustained overload: an undersized bucket must shed explicitly while
# every accepted bound stays sound (archives the scorecard)
loadtest:
	$(PYTHON) -m repro.rt.serve_cli --nodes 3 --duration 5 --clients 8 \
		--bucket-rate 40 --bucket-burst 5 --max-interval 0.03 \
		--require-sound --out serve_load_run.json

# stratum federation demo: a 3-node core delegating to two downstream
# tiers in one process, skewed clocks everywhere but the borders (~4 s)
strata-demo:
	$(PYTHON) -m repro.rt.strata.cli --core-nodes 3 --tiers 2 --tier-nodes 2 \
		--duration 4 --skew-ppm 120 --require-sound

# the CI hierarchy gate: a two-tier federation across real OS processes
# over UDP, primary anchor crashed mid-run - the downstream border must
# re-elect with zero soundness violations (fixed seed, partial archive)
hierarchy-smoke:
	$(PYTHON) -m repro.rt.strata.cli --procs --core-nodes 3 --tiers 1 \
		--tier-nodes 2 --duration 8 --skew-ppm 120 --sync-period 0.15 \
		--max-age 1.0 --crash-anchor 3 --seed 0 \
		--require-sound --require-election --out strata_smoke_run.json

# the CI serving gate: primary crash mid-load over loopback with skewed
# clocks, plus a UDP swarm - both must end with zero unsound accepts
serve-smoke:
	$(PYTHON) -m repro.rt.serve_cli --nodes 3 --duration 6 --clients 4 \
		--crash-primary 2:4 --skew-ppm 100 --eps-max 0.02 \
		--require-sound --out serve_smoke_run.json
	$(PYTHON) -m repro.rt.serve_cli --nodes 2 --transport udp --duration 4 \
		--clients 2 --require-sound

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	rm -f BENCH_fresh.json BENCH_compare.md
	rm -f serve_load_run.json serve_smoke_run.json strata_smoke_run.json
	rm -f wire_smoke_run.json rt_loopback_run.json rt_udp_run.json
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
