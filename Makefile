# Developer loop for the reproduction.

PYTHON ?= python

.PHONY: install test bench experiments experiments-quick chaos chaos-byz examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.cli

experiments-quick:
	$(PYTHON) -m repro.experiments.cli --quick

chaos:
	$(PYTHON) -m repro.experiments.cli chaos-soak --quick

# fixed-seed Byzantine chaos: one ring soak plus the adversarial run
# (payload tampering, suspicion, eviction) - deterministic smoke check
chaos-byz:
	$(PYTHON) -m repro.experiments.chaos --shapes ring --duration 60 --seed 0 --liars 1

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
