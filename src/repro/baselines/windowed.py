"""Windowed optimal synchronization: forget the past, keep the math right.

A natural middle point between the paper's algorithm and the drift-free
fudge recipe: run the *drift-aware* Theorem 2.1 computation, but only on
a sliding window of recent events (a per-processor local-time suffix).
A restriction of a view asserts a *subset* of the constraints, so the
result is sound by construction — no fudge factor needed — but looser
than the true optimum because discarded constraints can no longer
tighten it.

This isolates what the fudge recipe actually loses: comparing

* optimal (all constraints, drift-aware),
* windowed (recent constraints, drift-aware)        <- this class
* drift-free + fudge (recent constraints, drift-pretending + repair),

on the same execution shows how much of the gap is *forgetting* versus
*pretending*.  Used by the E8 extension rows and the baseline tests.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..core.csa_base import Estimator
from ..core.distances import INF, WeightedDigraph, bellman_ford_from
from ..core.errors import InconsistentSpecificationError
from ..core.events import Event, EventId, ProcessorId
from ..core.history import HistoryModule, HistoryPayload
from ..core.intervals import ClockBound
from ..core.specs import SystemSpec
from ..core.view import View

__all__ = ["WindowedCSA"]


class WindowedCSA(Estimator):
    """Drift-aware optimal bounds restricted to a sliding event window."""

    name = "windowed"

    def __init__(
        self,
        proc: ProcessorId,
        spec: SystemSpec,
        *,
        window: float = 30.0,
    ):
        super().__init__(proc, spec)
        self.window = window
        self.history = HistoryModule(proc, spec.neighbors(proc))
        self.view = View()
        self._anchor: Optional[Tuple[float, ClockBound]] = None
        self._cached_at: Optional[EventId] = None
        self._cached: Optional[ClockBound] = None

    # -- event hooks -------------------------------------------------------------

    def on_send(self, event: Event) -> HistoryPayload:
        self._track_local(event)
        self.view.add(event)
        self.history.record_local(event)
        payload, _token = self.history.prepare_payload(event.dest)
        return payload

    def on_receive(self, event: Event, payload: HistoryPayload) -> None:
        self._track_local(event)
        sender = event.send_eid.proc
        new_events, _flags = self.history.ingest_payload(sender, payload)
        for reported in new_events:
            self.view.add(reported)
        self.history.record_local(event)
        self.view.add(event)

    def on_internal(self, event: Event) -> None:
        self._track_local(event)
        self.view.add(event)
        self.history.record_local(event)

    # -- windowed computation ------------------------------------------------------

    def _window_graph(self) -> Tuple[WeightedDigraph, Optional[EventId]]:
        """Drift-aware synchronization graph over the recent window."""
        graph = WeightedDigraph()
        source_rep: Optional[EventId] = None
        retained = set()
        for w in self.view.processors:
            last = self.view.last_event(w)
            cutoff = last.lt - self.window
            drift = self.spec.drift_of(w)
            previous: Optional[Event] = None
            for ev in self.view.events_of(w):
                if ev.lt < cutoff:
                    continue
                retained.add(ev.eid)
                graph.add_node(ev.eid)
                if previous is not None:
                    delta = ev.lt - previous.lt
                    graph.add_edge(ev.eid, previous.eid, (drift.beta - 1.0) * delta)
                    graph.add_edge(previous.eid, ev.eid, (1.0 - drift.alpha) * delta)
                previous = ev
                if w == self.spec.source:
                    source_rep = ev.eid
        for ev in self.view.events():
            if not ev.is_receive or ev.eid not in retained:
                continue
            if ev.send_eid not in retained:
                continue
            send = self.view.event(ev.send_eid)
            transit = self.spec.transit_of(send.proc, ev.proc)
            observed = ev.lt - send.lt
            if transit.is_bounded:
                graph.add_edge(ev.eid, send.eid, transit.upper - observed)
            graph.add_edge(send.eid, ev.eid, observed - transit.lower)
        return graph, source_rep

    def _fresh_estimate(self, p: EventId, lt_p: float) -> ClockBound:
        graph, source_rep = self._window_graph()
        if source_rep is None or p not in graph:
            return ClockBound.unbounded()
        # the window is a genuine constraint subset: no inconsistency is
        # possible for views of real executions, so no fallback needed
        d_p_sp = bellman_ford_from(graph, p).get(source_rep, INF)
        d_sp_p = bellman_ford_from(graph, source_rep).get(p, INF)
        lower = -math.inf if math.isinf(d_sp_p) else lt_p - d_sp_p
        upper = math.inf if math.isinf(d_p_sp) else lt_p + d_p_sp
        return ClockBound(lower, upper)

    # -- estimates ----------------------------------------------------------------

    def estimate(self) -> ClockBound:
        if self._last_local is None:
            return ClockBound.unbounded()
        p = self._last_local.eid
        if self._cached_at == p and self._cached is not None:
            return self._cached
        lt_p = self._last_local.lt
        bound = self._fresh_estimate(p, lt_p)
        if self._anchor is not None:
            anchor_lt, anchor_bound = self._anchor
            carried = anchor_bound.advance(
                lt_p - anchor_lt, self.spec.drift_of(self.proc)
            )
            bound = bound.intersect(carried)
        if bound.is_bounded:
            self._anchor = (lt_p, bound)
        self._cached_at = p
        self._cached = bound
        return bound
