"""Practical comparators the paper positions itself against (Secs 1, 4).

* :class:`DriftFreeFudgeCSA` - the pre-existing recipe: Patt-Shamir &
  Rajsbaum's drift-free optimal algorithm re-run over a sliding window
  with an additive drift fudge.  Sound but suboptimal [18].
* :class:`NTPFilterCSA` - an NTP-style offset/delay clock filter with a
  root-distance error budget (statistical, not certified).
* :class:`CristianCSA` - Cristian's probabilistic round-trip reading,
  generalised to certified intervals chained through the hierarchy.
* :class:`WindowedCSA` - drift-aware optimal bounds on a sliding window:
  sound without any fudge, isolating what forgetting (vs pretending
  drift-freedom) costs.

All three implement the same passive :class:`~repro.core.csa_base.Estimator`
interface as the optimal algorithms, so any experiment can run them over
the very same execution.
"""

from .cristian import CristianCSA
from .common import RoundTripMixin, RoundTripPayload, RoundTripSample
from .driftfree_fudge import DriftFreeFudgeCSA
from .ntp_filter import NTPFilterCSA
from .windowed import WindowedCSA

__all__ = [
    "CristianCSA",
    "DriftFreeFudgeCSA",
    "NTPFilterCSA",
    "RoundTripMixin",
    "RoundTripPayload",
    "RoundTripSample",
    "WindowedCSA",
]
