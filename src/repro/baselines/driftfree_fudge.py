"""Drift-free optimal synchronization plus a fudge factor.

The paper (Sec 1) describes the pre-existing practical recipe built on
Patt-Shamir & Rajsbaum's drift-free algorithm:

    "It is not difficult to adapt this simple algorithm to scenarios where
    clocks drift by running a new version of the algorithm every short
    while (say, every hour), and combining the results by adding a 'fudge
    factor' to account for the drift.  Such implementations may beat other
    practical algorithms, but they are still not optimal [18]."

This estimator implements that recipe faithfully:

* information is disseminated with the same Figure 2 history protocol (so
  the comparison with the optimal algorithm isolates the *interpretation*
  of the data, not the amount of data);
* at each query it restricts attention to a recent **window** of events
  (a per-processor local-time suffix of span ``window``);
* within the window it runs the **drift-free** computation: drift edges
  get weight 0 in both directions (local elapsed time treated as exact
  real elapsed time), transit edges keep their real weights;
* the resulting interval is widened by the **fudge factor**
  ``n_procs * window * max_deviation``, which provably restores
  soundness: along any simple path, replacing true drift weights by zero
  under-counts by at most ``max_deviation * window`` per processor
  visited;
* between windows the previous estimate is carried forward, widened by
  the processor's own drift - and the reported interval is the
  intersection of the carried and fresh intervals (both sound).

The estimator is sound but suboptimal, exactly as [18] found; experiment
E8 quantifies the gap against the Sec 3 algorithm on identical traffic.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..core.csa_base import Estimator
from ..core.distances import INF, WeightedDigraph, bellman_ford_from
from ..core.errors import InconsistentSpecificationError, ProtocolError
from ..core.events import Event, EventId, ProcessorId
from ..core.history import HistoryModule, HistoryPayload
from ..core.intervals import ClockBound
from ..core.specs import SystemSpec
from ..core.view import View

__all__ = ["DriftFreeFudgeCSA"]


class DriftFreeFudgeCSA(Estimator):
    """Windowed drift-free Bellman-Ford with an additive drift fudge."""

    name = "driftfree-fudge"

    def __init__(
        self,
        proc: ProcessorId,
        spec: SystemSpec,
        *,
        window: float = 30.0,
        fudge_scale: Optional[float] = None,
    ):
        super().__init__(proc, spec)
        self.window = window
        max_dev = max(spec.drift_of(w).max_deviation for w in spec.processors)
        if fudge_scale is None:
            # provably sound: a simple path visits each processor's local
            # chain at most once, accumulating <= window * max_dev each
            fudge_scale = len(spec.processors) * max_dev
        self.fudge = fudge_scale * window
        self.history = HistoryModule(proc, spec.neighbors(proc))
        self.view = View()
        #: carried-forward estimate: (local time it was made at, bound)
        self._anchor: Optional[Tuple[float, ClockBound]] = None
        #: cache: estimate already computed at this event
        self._cached_at: Optional[EventId] = None
        self._cached: Optional[ClockBound] = None

    # -- event hooks -------------------------------------------------------------

    def on_send(self, event: Event) -> HistoryPayload:
        self._track_local(event)
        self.view.add(event)
        self.history.record_local(event)
        payload, _token = self.history.prepare_payload(event.dest)
        return payload

    def on_receive(self, event: Event, payload: HistoryPayload) -> None:
        self._track_local(event)
        sender = event.send_eid.proc
        new_events, _flags = self.history.ingest_payload(sender, payload)
        for reported in new_events:
            self.view.add(reported)
        self.history.record_local(event)
        self.view.add(event)

    def on_internal(self, event: Event) -> None:
        self._track_local(event)
        self.view.add(event)
        self.history.record_local(event)

    # -- the windowed drift-free computation ------------------------------------------

    def _window_graph(self) -> Tuple[WeightedDigraph, Optional[EventId]]:
        """Drift-free synchronization graph over the recent window.

        Returns the graph and the latest source event inside the window
        (``None`` if the window contains no source point).
        """
        graph = WeightedDigraph()
        source_rep: Optional[EventId] = None
        cutoff: Dict[ProcessorId, float] = {}
        for w in self.view.processors:
            last = self.view.last_event(w)
            cutoff[w] = last.lt - self.window
        retained = set()
        for w in self.view.processors:
            previous: Optional[Event] = None
            for ev in self.view.events_of(w):
                if ev.lt < cutoff[w]:
                    continue
                retained.add(ev.eid)
                graph.add_node(ev.eid)
                if previous is not None:
                    # drift-free: local elapsed time counts as exact
                    graph.add_edge(ev.eid, previous.eid, 0.0)
                    graph.add_edge(previous.eid, ev.eid, 0.0)
                previous = ev
                if w == self.spec.source:
                    source_rep = ev.eid
        for ev in self.view.events():
            if not ev.is_receive or ev.eid not in retained:
                continue
            if ev.send_eid not in retained:
                continue
            send = self.view.event(ev.send_eid)
            transit = self.spec.transit_of(send.proc, ev.proc)
            observed = ev.lt - send.lt
            if transit.is_bounded:
                graph.add_edge(ev.eid, send.eid, transit.upper - observed)
            graph.add_edge(send.eid, ev.eid, observed - transit.lower)
        return graph, source_rep

    def _fresh_estimate(self, p: EventId, lt_p: float) -> ClockBound:
        graph, source_rep = self._window_graph()
        if source_rep is None or p not in graph:
            return ClockBound.unbounded()
        try:
            d_p_sp = bellman_ford_from(graph, p).get(source_rep, INF)
            d_sp_p = bellman_ford_from(graph, source_rep).get(p, INF)
        except InconsistentSpecificationError:
            # The drift-free fiction can contradict the timestamps (the
            # window's pretend-constraints close a negative cycle).  A real
            # deployment would discard the round; we fall back to the
            # carried-forward estimate.
            return ClockBound.unbounded()
        lower = -math.inf if math.isinf(d_sp_p) else lt_p - d_sp_p - self.fudge
        upper = math.inf if math.isinf(d_p_sp) else lt_p + d_p_sp + self.fudge
        return ClockBound(lower, upper)

    # -- estimates ----------------------------------------------------------------

    def estimate(self) -> ClockBound:
        if self._last_local is None:
            return ClockBound.unbounded()
        p = self._last_local.eid
        if self._cached_at == p and self._cached is not None:
            return self._cached
        lt_p = self._last_local.lt
        bound = self._fresh_estimate(p, lt_p)
        if self._anchor is not None:
            anchor_lt, anchor_bound = self._anchor
            carried = anchor_bound.advance(
                lt_p - anchor_lt, self.spec.drift_of(self.proc)
            )
            bound = bound.intersect(carried)
        if bound.is_bounded:
            self._anchor = (lt_p, bound)
        self._cached_at = p
        self._cached = bound
        return bound
