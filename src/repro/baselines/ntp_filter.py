"""An NTP-style offset/delay filter [Mills, RFC 1305].

NTP computes, from each completed round trip ``t1 -> (t2, t3) -> t4``,

* the offset ``theta = ((t2 - t1) + (t3 - t4)) / 2`` of the peer's clock
  relative to the local clock, and
* the delay ``delta = (t4 - t1) - (t3 - t2)``;

keeps the last few samples per peer, selects the minimum-delay sample (the
*clock filter* - the sample least distorted by queueing), chains the
peer's own synchronisation distance, and quotes the time as the selected
offset with an error budget (the *root distance*)

    ``lambda = lambda_peer + delta / 2 + dispersion``

where dispersion grows with the local drift rate times the age of the
sample.  NTP's quoted bound is a well-motivated *statistical* budget, not
a guarantee: the true source time is expected - but not certified - to lie
within ``theta +/- lambda``.

Experiment E8 runs this filter beside the optimal algorithm on identical
traffic.  Two things are measured: (a) how often the NTP-style interval
actually contains true time (it usually does - the budget is generous),
and (b) its width against the optimal certified interval.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..core.csa_base import Estimator
from ..core.events import Event, ProcessorId
from ..core.intervals import ClockBound
from ..core.specs import SystemSpec
from .common import RoundTripMixin, RoundTripPayload, RoundTripSample

__all__ = ["NTPFilterCSA"]

#: NTP keeps an 8-stage clock filter shift register per peer
_FILTER_STAGES = 8


class NTPFilterCSA(Estimator, RoundTripMixin):
    """Offset/delay sampling, min-delay clock filter, root-distance budget."""

    name = "ntp"

    def __init__(
        self,
        proc: ProcessorId,
        spec: SystemSpec,
        *,
        filter_stages: int = _FILTER_STAGES,
    ):
        super().__init__(proc, spec)
        self._rt_init()
        #: per peer: recent (local_time_taken, offset_vs_source, root_error)
        self._filters: Dict[ProcessorId, Deque[Tuple[float, float, float]]] = {}
        self._filter_stages = filter_stages
        #: selected synchronization state: (lt chosen, offset, root error)
        self._selected: Optional[Tuple[float, float, float]] = None
        self.samples_taken = 0

    # -- event hooks -------------------------------------------------------------

    def on_send(self, event: Event) -> RoundTripPayload:
        self._track_local(event)
        offset, root = self._current_offset_and_root(event.lt)
        bound = None
        if offset is not None:
            bound = ClockBound(
                event.lt + offset - root, event.lt + offset + root
            )
        return self._rt_build_payload(
            event, bound, root_error=root if offset is not None else math.inf
        )

    def on_receive(self, event: Event, payload: RoundTripPayload) -> None:
        self._track_local(event)
        if not isinstance(payload, RoundTripPayload):
            raise TypeError(
                f"NTP filter expected RoundTripPayload, got {type(payload).__name__}"
            )
        sample = self._rt_ingest(event, payload)
        if sample is None:
            return
        self._absorb(event.lt, sample)

    # -- the clock filter --------------------------------------------------------------

    def _peer_offset_vs_source(
        self, sample: RoundTripSample
    ) -> Optional[Tuple[float, float]]:
        """(peer source-offset at t3, peer root error) from its payload."""
        if sample.peer == self.spec.source:
            return 0.0, 0.0
        if sample.peer_bound is None or not sample.peer_bound.is_bounded:
            return None
        # The peer quoted source time in [lo, hi] at its local t3: its
        # source-minus-local offset estimate is midpoint - t3.
        midpoint = sample.peer_bound.midpoint
        return midpoint - sample.t3, sample.peer_root_error

    def _absorb(self, now_lt: float, sample: RoundTripSample) -> None:
        peer_state = self._peer_offset_vs_source(sample)
        if peer_state is None:
            return
        peer_offset, peer_root = peer_state
        if math.isinf(peer_root):
            return
        self.samples_taken += 1
        #: theta: peer clock minus mine; chain the peer's own source offset
        offset_vs_source = sample.offset + peer_offset
        root = peer_root + sample.round_trip / 2
        stage = self._filters.setdefault(
            sample.peer, deque(maxlen=self._filter_stages)
        )
        stage.append((now_lt, offset_vs_source, root))
        self._select(now_lt)

    def _dispersion(self, now_lt: float, taken_lt: float) -> float:
        """Error growth with sample age, at the local drift rate."""
        rho = self.spec.drift_of(self.proc).max_deviation
        return rho * max(now_lt - taken_lt, 0.0)

    def _select(self, now_lt: float) -> None:
        best: Optional[Tuple[float, float, float]] = None
        best_distance = math.inf
        for stage in self._filters.values():
            for taken_lt, offset, root in stage:
                distance = root + self._dispersion(now_lt, taken_lt)
                if distance < best_distance:
                    best_distance = distance
                    best = (taken_lt, offset, root)
        if best is not None:
            self._selected = best

    def _current_offset_and_root(self, now_lt: float) -> Tuple[Optional[float], float]:
        if self.proc == self.spec.source:
            return 0.0, 0.0
        if self._selected is None:
            return None, math.inf
        taken_lt, offset, root = self._selected
        return offset, root + self._dispersion(now_lt, taken_lt)

    # -- estimates ----------------------------------------------------------------

    def estimate(self) -> ClockBound:
        if self._last_local is None:
            return ClockBound.unbounded()
        lt = self._last_local.lt
        offset, root = self._current_offset_and_root(lt)
        if offset is None:
            return ClockBound.unbounded()
        return ClockBound(lt + offset - root, lt + offset + root)

    def point_estimate(self, local_time: float) -> Optional[float]:
        """NTP's headline output: the corrected clock reading."""
        offset, _root = self._current_offset_and_root(local_time)
        if offset is None:
            return None
        return local_time + offset

    def estimate_now(self, local_time: float) -> ClockBound:
        offset, root = self._current_offset_and_root(local_time)
        if offset is None:
            return ClockBound.unbounded()
        return ClockBound(local_time + offset - root, local_time + offset + root)
