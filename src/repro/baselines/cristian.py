"""Cristian-style probabilistic clock synchronization [Cristian '89].

Cristian's reading algorithm: a client probes a time server; when the
reply arrives it knows the server's clock value ``t3`` was current at some
real instant inside the round trip, so the server's time *now* lies in an
interval of width about the round trip.  Short round trips give tight
intervals - hence the probabilistic strategy of retrying until one is
short.

Our implementation generalises the halving argument to guaranteed
intervals chained through the hierarchy (so that it is a *sound* interval
algorithm, comparable with the optimal one):

* the probed peer reports its own source interval ``[S_lo, S_hi]`` valid
  at its transmit time ``t3``;
* the prober's local elapsed time over the round trip bounds the real
  elapsed time through its drift spec;
* the message spent at least the link's transit lower bound ``L`` in each
  direction, so the real time between ``t3`` and the reply's arrival lies
  in ``[L, beta * (t4 - t1) - L]``;
* therefore source time at arrival lies in
  ``[S_lo + L, S_hi + beta * (t4 - t1) - L]``.

Between round trips the estimate is carried forward widened by the local
drift, and each new interval is intersected with the carried one (both are
sound).  The estimator uses *only* round trips - it ignores the one-way
constraint web the optimal algorithm mines - which is exactly why the
optimal algorithm beats it on the same traffic (experiment E8).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..core.csa_base import Estimator
from ..core.events import Event, ProcessorId
from ..core.errors import SpecificationError
from ..core.intervals import ClockBound
from ..core.specs import SystemSpec
from .common import RoundTripMixin, RoundTripPayload, RoundTripSample

__all__ = ["CristianCSA"]


class CristianCSA(Estimator, RoundTripMixin):
    """Round-trip interval estimation with drift carry-forward."""

    name = "cristian"

    def __init__(self, proc: ProcessorId, spec: SystemSpec):
        super().__init__(proc, spec)
        self._rt_init()
        #: (local time, bound) of the best current estimate
        self._anchor: Optional[Tuple[float, ClockBound]] = None
        self.samples_taken = 0
        self.samples_rejected = 0

    # -- event hooks -------------------------------------------------------------

    def on_send(self, event: Event) -> RoundTripPayload:
        self._track_local(event)
        return self._rt_build_payload(event, self._bound_at(event.lt))

    def on_receive(self, event: Event, payload: RoundTripPayload) -> None:
        self._track_local(event)
        if not isinstance(payload, RoundTripPayload):
            raise TypeError(
                f"Cristian CSA expected RoundTripPayload, got {type(payload).__name__}"
            )
        sample = self._rt_ingest(event, payload)
        if sample is None:
            # Not a completed round trip; still use the one-way lower bound:
            # the peer's interval at xmt, aged by at least the link's
            # minimum transit time, bounds source time from below.
            self._absorb_one_way(event, payload)
            return
        self._absorb_round_trip(event, sample)

    # -- sample processing ----------------------------------------------------------

    def _absorb_round_trip(self, event: Event, sample: RoundTripSample) -> None:
        self.samples_taken += 1
        if sample.peer_bound is None or not sample.peer_bound.is_bounded:
            self.samples_rejected += 1
            return
        drift = self.spec.drift_of(self.proc)
        transit_reply = self.spec.transit_of(sample.peer, self.proc)
        transit_probe = self.spec.transit_of(self.proc, sample.peer)
        #: real elapsed over the whole round trip, bounded by my drift
        max_elapsed = drift.beta * sample.total_local_elapsed
        lower = sample.peer_bound.lower + transit_reply.lower
        upper = sample.peer_bound.upper + max_elapsed - transit_probe.lower
        if lower > upper:
            self.samples_rejected += 1
            return
        self._merge(event.lt, ClockBound(lower, upper))

    def _absorb_one_way(self, event: Event, payload: RoundTripPayload) -> None:
        if payload.source_bound is None:
            return
        peer = event.send_eid.proc
        transit = self.spec.transit_of(peer, self.proc)
        lower = payload.source_bound.lower + transit.lower
        if math.isinf(lower):
            return
        upper = (
            payload.source_bound.upper + transit.upper
            if transit.is_bounded and payload.source_bound.is_bounded
            else math.inf
        )
        self._merge(event.lt, ClockBound(lower, upper))

    def _merge(self, lt: float, fresh: ClockBound) -> None:
        carried = self._bound_at(lt)
        try:
            combined = carried.intersect(fresh)
        except SpecificationError:
            # disjoint through float slop on degenerate links; keep tighter
            combined = fresh if fresh.width < carried.width else carried
        self._anchor = (lt, combined)

    # -- estimates ----------------------------------------------------------------

    def _bound_at(self, lt: float) -> ClockBound:
        if self.proc == self.spec.source:
            return ClockBound.exact(lt)
        if self._anchor is None:
            return ClockBound.unbounded()
        anchor_lt, bound = self._anchor
        return bound.advance(lt - anchor_lt, self.spec.drift_of(self.proc))

    def estimate(self) -> ClockBound:
        if self._last_local is None:
            return ClockBound.unbounded()
        if self.proc == self.spec.source:
            return ClockBound.exact(self._last_local.lt)
        return self._bound_at(self._last_local.lt)
