"""Shared machinery for the practical baseline estimators.

The NTP-style and Cristian-style baselines communicate like their real
counterparts: each message carries the sender's transmit timestamp, an
echo of the last timestamp received from the destination (so the receiver
can recognise a completed round trip), and the sender's own current belief
about source time.  :class:`RoundTripPayload` is that packet;
:class:`RoundTripMixin` implements the per-neighbor bookkeeping both
baselines share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.events import Event, ProcessorId
from ..core.intervals import ClockBound

__all__ = ["RoundTripPayload", "RoundTripSample", "RoundTripMixin"]


@dataclass(frozen=True)
class RoundTripPayload:
    """On-wire data of the round-trip baselines (NTP's org/rec/xmt triple).

    ``org``/``rec`` echo the destination's last transmit local time and the
    local time it was received here; ``xmt`` is this packet's transmit
    local time.  ``source_bound`` is the sender's current interval for the
    source clock at ``xmt`` (``None`` if it has none), and ``root_error``
    the sender's scalar error budget (used by the NTP-style filter).
    """

    xmt: float
    org: Optional[float]
    rec: Optional[float]
    source_bound: Optional[ClockBound]
    root_error: float = float("inf")


@dataclass(frozen=True)
class RoundTripSample:
    """A completed round trip ``t1 -> (t2, t3) -> t4``, in local clocks.

    ``t1``/``t4`` are this processor's clock; ``t2``/``t3`` the peer's.
    """

    peer: ProcessorId
    t1: float
    t2: float
    t3: float
    t4: float
    peer_bound: Optional[ClockBound]
    peer_root_error: float

    @property
    def round_trip(self) -> float:
        """Local round-trip time minus the peer's processing time (NTP delta)."""
        return (self.t4 - self.t1) - (self.t3 - self.t2)

    @property
    def total_local_elapsed(self) -> float:
        """Full local time between the probe send and the reply receive."""
        return self.t4 - self.t1

    @property
    def offset(self) -> float:
        """NTP theta: estimated peer-minus-local clock offset."""
        return 0.5 * ((self.t2 - self.t1) + (self.t3 - self.t4))


class RoundTripMixin:
    """Per-neighbor org/rec/xmt bookkeeping.

    Subclasses call :meth:`_rt_build_payload` in ``on_send`` and
    :meth:`_rt_ingest` in ``on_receive``; the latter returns a completed
    :class:`RoundTripSample` when the packet closes a round trip.
    """

    def _rt_init(self) -> None:
        #: my last transmit local time per neighbor
        self._rt_last_xmt: Dict[ProcessorId, float] = {}
        #: last (peer_xmt, my_receive_lt) per neighbor
        self._rt_last_recv: Dict[ProcessorId, Tuple[float, float]] = {}

    def _rt_build_payload(
        self,
        event: Event,
        source_bound: Optional[ClockBound],
        root_error: float = float("inf"),
    ) -> RoundTripPayload:
        dest = event.dest
        org = rec = None
        if dest in self._rt_last_recv:
            org, rec = self._rt_last_recv[dest]
        self._rt_last_xmt[dest] = event.lt
        return RoundTripPayload(
            xmt=event.lt,
            org=org,
            rec=rec,
            source_bound=source_bound,
            root_error=root_error,
        )

    def _rt_ingest(
        self, event: Event, payload: RoundTripPayload
    ) -> Optional[RoundTripSample]:
        peer = event.send_eid.proc
        self._rt_last_recv[peer] = (payload.xmt, event.lt)
        if payload.org is None:
            return None
        if self._rt_last_xmt.get(peer) != payload.org:
            # the echo does not match our latest probe (reordered or stale)
            return None
        return RoundTripSample(
            peer=peer,
            t1=payload.org,
            t2=payload.rec,
            t3=payload.xmt,
            t4=event.lt,
            peer_bound=payload.source_bound,
            peer_root_error=payload.root_error,
        )
