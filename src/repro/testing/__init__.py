"""Conformance-testing subsystem.

Reusable infrastructure for checking the efficient clock-synchronization
algorithm against independently derived ground truth:

- :mod:`repro.testing.oracle` - from-scratch reference implementations of
  the paper's definitions (sync graph, Definition 3.1 liveness,
  Theorem 2.1 bounds) sharing no graph code with the production path.
- :mod:`repro.testing.differential` - a driver that runs the efficient
  algorithm, the full-information reference, and the oracles over one
  adversarial schedule and diffs every observable surface; divergences
  minimize into deterministic repro scripts and JSON corpus entries.
- :mod:`repro.testing.invariants` - debug-mode structural invariant
  checks (``REPRO_DEBUG=1``) wired into the estimator and AGDP.
- :mod:`repro.testing.asserts` - shared interval-comparison predicates.
- :mod:`repro.testing.strategies` - the Hypothesis strategy library
  (imported lazily so the rest of the package works without hypothesis).
- :mod:`repro.testing.mutants` - deliberately broken estimator variants
  for mutation smoke tests.
- :mod:`repro.testing.reference` - the pre-optimization AGDP/history
  implementations, frozen as differential oracles for the hot-path
  rewrites.
"""

from .asserts import DEFAULT_TOLERANCE, assert_bound_equal, bounds_equal, endpoint_equal
from .differential import (
    CORPUS_FORMAT,
    DifferentialReport,
    Divergence,
    check_schedule,
    load_corpus_entry,
    minimize_schedule,
    repro_script,
    run_differential,
    write_corpus_entry,
)
from .invariants import (
    InvariantViolation,
    check_agdp_invariants,
    check_csa_invariants,
    debug_checks_enabled,
)
from .mutants import BrokenGCCSA, broken_gc_factory
from .reference import ReferenceHistoryModule, ReferenceNumpyAGDP
from .oracle import (
    OracleInconsistencyError,
    oracle_all_pairs,
    oracle_causal_past,
    oracle_distances_from,
    oracle_distances_to,
    oracle_external_bounds,
    oracle_live_points,
    oracle_source_point,
    oracle_sync_edges,
)

__all__ = [
    "BrokenGCCSA",
    "CORPUS_FORMAT",
    "DEFAULT_TOLERANCE",
    "DifferentialReport",
    "Divergence",
    "InvariantViolation",
    "OracleInconsistencyError",
    "ReferenceHistoryModule",
    "ReferenceNumpyAGDP",
    "assert_bound_equal",
    "bounds_equal",
    "broken_gc_factory",
    "check_agdp_invariants",
    "check_csa_invariants",
    "check_schedule",
    "debug_checks_enabled",
    "endpoint_equal",
    "load_corpus_entry",
    "minimize_schedule",
    "oracle_all_pairs",
    "oracle_causal_past",
    "oracle_distances_from",
    "oracle_distances_to",
    "oracle_external_bounds",
    "oracle_live_points",
    "oracle_source_point",
    "oracle_sync_edges",
    "repro_script",
    "run_differential",
    "strategies",
    "write_corpus_entry",
]


def __getattr__(name):
    # hypothesis is a test-only dependency; load the strategy library on
    # first access so production imports of repro.testing never require it
    if name == "strategies":
        from . import strategies

        return strategies
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
