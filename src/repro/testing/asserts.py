"""Shared assertion helpers for conformance tests.

Deduplicates the interval-comparison helper that used to be copy-pasted
across the integration fuzz files.  Kept free of pytest so the differential
driver (which reports divergences instead of raising) can reuse the
predicates.
"""

from __future__ import annotations

import math

__all__ = ["assert_bound_equal", "bounds_equal", "endpoint_equal"]

#: Default absolute tolerance for finite interval endpoints.  Matches the
#: historical fuzz-suite tolerance (floating-point noise from shortest-path
#: summation, far below any drift- or transit-scale signal).
DEFAULT_TOLERANCE = 1e-7


def endpoint_equal(ours: float, oracle: float, *, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """One endpoint: infinite must match exactly, finite within tolerance."""
    if math.isinf(oracle) or math.isinf(ours):
        return ours == oracle
    return abs(ours - oracle) <= tolerance


def bounds_equal(bound, expected, *, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Whether two interval estimates agree endpoint-for-endpoint."""
    return endpoint_equal(
        bound.lower, expected.lower, tolerance=tolerance
    ) and endpoint_equal(bound.upper, expected.upper, tolerance=tolerance)


def assert_bound_equal(bound, expected, *, tolerance: float = DEFAULT_TOLERANCE) -> None:
    """Assert two interval estimates agree endpoint-for-endpoint.

    Infinite endpoints must match exactly (an algorithm claiming a bound
    where the optimum has none - or vice versa - is wrong regardless of
    magnitude); finite endpoints may differ by ``tolerance``.
    """
    if not bounds_equal(bound, expected, tolerance=tolerance):
        raise AssertionError(
            f"interval mismatch: ours {bound}, oracle {expected} "
            f"(tolerance {tolerance})"
        )
