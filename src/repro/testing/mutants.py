"""Deliberately broken estimator variants for mutation smoke tests.

The conformance suite must be able to *fail*: if the differential driver
cannot distinguish a correct estimator from a subtly broken one, its
green runs mean nothing.  These mutants re-introduce realistic bugs; the
test suite asserts the driver flags each of them within the default
example budget (``tests/testing/test_differential.py``).
"""

from __future__ import annotations

from typing import List

from ..core.csa import EfficientCSA
from ..core.events import Event, EventId
from ..core.live import LiveTracker

__all__ = ["BrokenGCCSA", "broken_gc_factory"]


class _ForgetfulTracker(LiveTracker):
    """A live tracker with a GC bug: undelivered sends do not stay live.

    Definition 3.1 keeps a send alive while its message is in flight;
    this variant kills the previous point of a processor unconditionally,
    so in-flight sends are garbage-collected out of the AGDP and their
    transit constraints are lost when the receive finally arrives.
    """

    def observe(self, event: Event, *, lenient: bool = False) -> List[EventId]:
        pred = event.eid.pred()
        if pred is not None and pred in self._undelivered:
            # the bug: drop liveness of the predecessor send prematurely;
            # the base class then reports it dead like any superseded point
            del self._undelivered[pred]
        return super().observe(event, lenient=lenient)


class BrokenGCCSA(EfficientCSA):
    """The efficient CSA with the forgetful live tracker swapped in."""

    name = "broken-gc"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.live = _ForgetfulTracker()


def broken_gc_factory(proc, spec, **kwargs):
    """Estimator factory for :func:`repro.testing.differential.run_differential`."""
    return BrokenGCCSA(proc, spec, **kwargs)
