"""From-scratch reference oracles for differential testing.

Everything here is re-derived directly from the paper's definitions and
deliberately shares **no code** with the incremental production paths:

* causal pasts are recomputed by BFS over raw event attributes (no
  :class:`~repro.core.view.View`);
* the synchronization graph (Definition 2.1) is rebuilt edge-by-edge from
  the drift/transit formulas (no :mod:`repro.core.syncgraph`);
* distances use a textbook Bellman-Ford and a textbook Floyd-Warshall (no
  SPFA, no incremental AGDP updates, no
  :mod:`repro.core.distances`);
* liveness is Definition 3.1 evaluated on the raw event set (no
  :class:`~repro.core.live.LiveTracker`).

The only shared types are the dumb containers (:class:`Event`,
:class:`ClockBound`, the spec dataclasses) - they carry data, not
algorithmics - so a bug in the production code cannot silently cancel
against the same bug here.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.events import Event, EventId, ProcessorId
from ..core.intervals import ClockBound
from ..core.specs import SystemSpec

__all__ = [
    "OracleInconsistencyError",
    "oracle_all_pairs",
    "oracle_causal_past",
    "oracle_distances_from",
    "oracle_distances_to",
    "oracle_external_bounds",
    "oracle_live_points",
    "oracle_source_point",
    "oracle_sync_edges",
]

INF = math.inf


class OracleInconsistencyError(Exception):
    """The oracle's synchronization graph contains a negative cycle.

    By Theorem 2.1 this means the event set contradicts the specification
    it is being checked against - for generated-in-spec schedules this is
    itself a test failure.
    """


def _index(events) -> Dict[EventId, Event]:
    """Events as an id-indexed mapping; accepts mappings or iterables."""
    if isinstance(events, Mapping):
        return dict(events)
    return {event.eid: event for event in events}


# -- structure -----------------------------------------------------------------------


def oracle_causal_past(events, point: EventId) -> Dict[EventId, Event]:
    """All events that happen-before ``point`` (inclusive), by raw BFS.

    Parents are read straight off the event attributes: the same-processor
    predecessor ``(proc, seq - 1)`` and, for receives, the send event.
    """
    evs = _index(events)
    if point not in evs:
        raise KeyError(f"point {point} is not among the given events")
    past: Dict[EventId, Event] = {}
    stack = [point]
    while stack:
        eid = stack.pop()
        if eid in past:
            continue
        event = evs[eid]
        past[eid] = event
        if eid.seq > 0:
            stack.append(EventId(eid.proc, eid.seq - 1))
        if event.send_eid is not None:
            stack.append(event.send_eid)
    return past


def oracle_live_points(events, lost: Iterable[EventId] = ()) -> Set[EventId]:
    """Definition 3.1 liveness, evaluated from scratch.

    A point is live iff it is the last point of its processor in the event
    set, or a send whose receive is absent.  ``lost`` lists sends flagged
    lost (Sec 3.3): a flagged send stops being live unless it is still the
    last point of its processor.
    """
    evs = _index(events)
    last_seq: Dict[ProcessorId, int] = {}
    delivered: Set[EventId] = set()
    for event in evs.values():
        eid = event.eid
        if eid.seq > last_seq.get(eid.proc, -1):
            last_seq[eid.proc] = eid.seq
        if event.send_eid is not None:
            delivered.add(event.send_eid)
    live: Set[EventId] = {
        EventId(proc, seq) for proc, seq in last_seq.items()
    }
    flagged = set(lost)
    for event in evs.values():
        if event.dest is None:
            continue  # not a send
        eid = event.eid
        if eid in delivered or eid in flagged:
            continue
        live.add(eid)
    return live


def oracle_source_point(events, spec: SystemSpec) -> Optional[EventId]:
    """The latest event of the source processor in the event set, if any."""
    best: Optional[EventId] = None
    for eid in _index(events):
        if eid.proc != spec.source:
            continue
        if best is None or eid.seq > best.seq:
            best = eid
    return best


# -- the synchronization graph (Definition 2.1), rebuilt from first principles -------


def oracle_sync_edges(
    events, spec: SystemSpec
) -> List[Tuple[EventId, EventId, float]]:
    """All finite-weight synchronization-graph edges of the event set.

    For ``q`` directly followed by ``p`` at one processor with local-clock
    advance ``delta``: drift bounds give ``RT(p) - RT(q)`` in
    ``[alpha * delta, beta * delta]``, hence edges
    ``(p -> q, (beta - 1) * delta)`` and ``(q -> p, (1 - alpha) * delta)``.
    For a receive ``r`` of the message sent at ``s`` with observed
    local-time difference ``observed = LT(r) - LT(s)``: transit bounds give
    edges ``(r -> s, upper - observed)`` and ``(s -> r, observed - lower)``.
    Infinite weights (the paper's ``TOP``) carry no information and are
    omitted.
    """
    evs = _index(events)
    edges: List[Tuple[EventId, EventId, float]] = []
    for event in evs.values():
        eid = event.eid
        if eid.seq > 0:
            pred_id = EventId(eid.proc, eid.seq - 1)
            pred = evs.get(pred_id)
            if pred is not None:
                drift = spec.drift_of(eid.proc)
                delta = event.lt - pred.lt
                edges.append((eid, pred_id, (drift.beta - 1.0) * delta))
                edges.append((pred_id, eid, (1.0 - drift.alpha) * delta))
        if event.send_eid is not None:
            send = evs.get(event.send_eid)
            if send is not None:
                transit = spec.transit_of(event.send_eid.proc, eid.proc)
                observed = event.lt - send.lt
                if not math.isinf(transit.upper):
                    edges.append((eid, event.send_eid, transit.upper - observed))
                edges.append((event.send_eid, eid, observed - transit.lower))
    return edges


# -- textbook shortest paths ----------------------------------------------------------


def _bellman_ford(
    nodes: List[EventId],
    edges: List[Tuple[EventId, EventId, float]],
    source: EventId,
) -> Dict[EventId, float]:
    """Plain Bellman-Ford: |V| - 1 full relaxation rounds plus a check round."""
    dist = {node: INF for node in nodes}
    dist[source] = 0.0
    for _ in range(max(len(nodes) - 1, 1)):
        changed = False
        for u, v, w in edges:
            du = dist[u]
            if du + w < dist[v]:
                dist[v] = du + w
                changed = True
        if not changed:
            break
    else:
        for u, v, w in edges:
            if dist[u] + w < dist[v] - 1e-9:
                raise OracleInconsistencyError(
                    f"negative cycle reachable from {source} (via {u} -> {v})"
                )
    return dist


def oracle_distances_from(events, spec: SystemSpec, source: EventId) -> Dict[EventId, float]:
    """Shortest-path distances from ``source`` in the synchronization graph."""
    evs = _index(events)
    return _bellman_ford(list(evs), oracle_sync_edges(evs, spec), source)


def oracle_distances_to(events, spec: SystemSpec, sink: EventId) -> Dict[EventId, float]:
    """Shortest-path distances *to* ``sink``: Bellman-Ford on the reverse graph."""
    evs = _index(events)
    reversed_edges = [(v, u, w) for u, v, w in oracle_sync_edges(evs, spec)]
    return _bellman_ford(list(evs), reversed_edges, sink)


def oracle_all_pairs(events, spec: SystemSpec) -> Dict[EventId, Dict[EventId, float]]:
    """Textbook Floyd-Warshall over the full synchronization graph.

    Raises :class:`OracleInconsistencyError` if any diagonal entry goes
    negative (a negative cycle - the execution violates the spec).
    """
    evs = _index(events)
    nodes = sorted(evs)
    dist: Dict[EventId, Dict[EventId, float]] = {
        u: {v: (0.0 if u == v else INF) for v in nodes} for u in nodes
    }
    for u, v, w in oracle_sync_edges(evs, spec):
        if w < dist[u][v]:
            dist[u][v] = w
    for k in nodes:
        row_k = dist[k]
        for i in nodes:
            d_ik = dist[i][k]
            if math.isinf(d_ik):
                continue
            row_i = dist[i]
            for j in nodes:
                candidate = d_ik + row_k[j]
                if candidate < row_i[j]:
                    row_i[j] = candidate
    for node in nodes:
        if dist[node][node] < -1e-9:
            raise OracleInconsistencyError(
                f"negative cycle through {node} (d = {dist[node][node]})"
            )
    return dist


# -- Theorem 2.1 ----------------------------------------------------------------------


def oracle_external_bounds(events, spec: SystemSpec, point: EventId) -> ClockBound:
    """Theorem 2.1: the optimal external interval at ``point``.

    With ``sp`` the latest source point of the event set,

        ``ext_L = LT(point) - d(sp, point)``  and
        ``ext_U = LT(point) + d(point, sp)``,

    distances taken in the synchronization graph; an unreachable direction
    leaves that endpoint unbounded.  The event set should be the causal
    past of ``point`` (pass :func:`oracle_causal_past` output) to model
    what an on-line algorithm may know.
    """
    evs = _index(events)
    sp = oracle_source_point(evs, spec)
    if sp is None:
        return ClockBound.unbounded()
    point_event = evs[point]
    d_from_sp = oracle_distances_from(evs, spec, sp)[point]
    d_to_sp = oracle_distances_to(evs, spec, sp)[point]
    lower = -INF if math.isinf(d_from_sp) else point_event.lt - d_from_sp
    upper = INF if math.isinf(d_to_sp) else point_event.lt + d_to_sp
    return ClockBound(lower, upper)
