"""The differential conformance driver.

One :class:`~repro.sim.schedule.Schedule` is replayed against every
implementation path at once - :class:`~repro.core.csa.EfficientCSA`, the
:class:`~repro.core.csa_full.FullInformationCSA` reference, and the
from-scratch oracles of :mod:`repro.testing.oracle` - and every
observable they share is diffed:

* **soundness** - the estimate contains the hidden true time (always
  checkable: the harness knows the real execution);
* **optimality** - the estimate equals Theorem 2.1 evaluated by the
  independent oracle on the causal past;
* **reference** - the efficient and full-information paths agree
  interval-for-interval (the paper's experiment E1, here on adversarial
  schedules);
* **live-set** - the incremental tracker equals Definition 3.1, with the
  Sec 3.3 loss-flag adjustment on lossy schedules;
* **gc-distance** - Lemma 3.5: at end of run, every AGDP live-live
  distance equals the oracle shortest path over the *full* causal past
  (garbage collection lost nothing);
* **quarantine** - spec-satisfying honest schedules must produce zero
  quarantine diagnostics, zero validation failures, and zero evictions;
  under tampering, suspicion state must stay structurally consistent;
* **serialize** - the spec and schedule survive their JSON round-trips;
* **determinism** - two fresh replays produce bit-identical estimates,
  diagnostics, validation-failure kinds, and suspicion state.

On Byzantine schedules the driver tracks taint: a processor is tainted
once it receives (transitively) from the liar.  Tainted processors get no
soundness/optimality guarantees - a within-spec lie is indistinguishable
from an honest execution, so their intervals may legitimately exclude the
truth - but untainted processors must still pass every check.

Any divergence yields a :class:`DifferentialReport` carrying minimized
deterministic repro material; :func:`check_schedule` additionally writes a
JSON corpus entry (see ``docs/TESTING.md``) and raises with an inline
repro script.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from ..core.csa import EfficientCSA
from ..core.csa_base import SuspicionPolicy
from ..core.specs import SystemSpec
from ..sim.schedule import Schedule, ScheduleHarness, TamperSpec
from .asserts import DEFAULT_TOLERANCE, bounds_equal, endpoint_equal
from .invariants import InvariantViolation
from .oracle import (
    oracle_causal_past,
    oracle_distances_from,
    oracle_external_bounds,
    oracle_live_points,
)

__all__ = [
    "CORPUS_FORMAT",
    "Divergence",
    "DifferentialReport",
    "check_schedule",
    "default_estimator_factory",
    "load_corpus_entry",
    "minimize_schedule",
    "repro_script",
    "run_differential",
    "write_corpus_entry",
]

#: Version tag of the JSON corpus entry format (docs/TESTING.md).
CORPUS_FORMAT = 1


@dataclass(frozen=True)
class Divergence:
    """One observable disagreement between implementation paths."""

    #: which diffed property failed (see the module docstring)
    kind: str
    #: index of the schedule step after which the disagreement surfaced,
    #: -1 for end-of-run checks
    step: int
    #: the processor whose state diverged ("" for global checks)
    proc: str
    detail: str

    def __str__(self):
        where = f"step {self.step}" if self.step >= 0 else "end of run"
        return f"[{self.kind}] {where} at {self.proc or '<global>'}: {self.detail}"


@dataclass
class DifferentialReport:
    """Outcome of one differential replay."""

    schedule: Schedule
    divergences: List[Divergence] = field(default_factory=list)
    #: number of individual property checks performed
    checks: int = 0
    #: number of checkpoints (deliveries and detected drops) examined
    checkpoints: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        head = (
            f"differential run over {self.schedule.n_procs} processors, "
            f"{len(self.schedule.steps)} steps: {self.checks} checks at "
            f"{self.checkpoints} checkpoints, {len(self.divergences)} divergences"
        )
        lines = [head] + [f"  {d}" for d in self.divergences]
        return "\n".join(lines)


def default_estimator_factory(
    schedule: Schedule, *, debug_invariants: bool = False
) -> Callable[[str, SystemSpec], EfficientCSA]:
    """The estimator configuration a schedule calls for.

    Lossy schedules run in unreliable mode; tampered schedules run the
    hardened pipeline (payload screening + suspicion), since feeding lies
    to an unhardened estimator checks nothing the honest suite does not.
    Schedules containing ``corrupt`` steps arm self-healing (and
    suspicion, which the ledger corruption scope needs as a target).
    """
    reliable = not schedule.lossy
    self_heal = any(step[0] == "corrupt" for step in schedule.steps)
    suspicion = (
        SuspicionPolicy()
        if (schedule.tamper is not None or self_heal)
        else None
    )
    def factory(proc: str, spec: SystemSpec) -> EfficientCSA:
        return EfficientCSA(
            proc,
            spec,
            reliable=reliable,
            suspicion=suspicion,
            self_heal=self_heal,
            debug_checks=True if debug_invariants else None,
        )
    return factory


def run_differential(
    schedule: Schedule,
    *,
    estimator_factory: Optional[Callable[[str, SystemSpec], EfficientCSA]] = None,
    attach_full: bool = True,
    debug_invariants: bool = False,
    check_determinism: bool = True,
    check_gc_distances: bool = True,
    tolerance: float = DEFAULT_TOLERANCE,
) -> DifferentialReport:
    """Replay ``schedule`` on every path and diff all shared observables.

    ``estimator_factory`` overrides the estimator under test (it must be
    pure - the determinism check invokes it again for a second, fresh
    replay).  ``debug_invariants`` additionally arms the ``REPRO_DEBUG``
    invariant hooks on the default estimators; an
    :class:`~repro.testing.invariants.InvariantViolation` surfaces as an
    ``"invariant"`` divergence.  ``check_gc_distances=False`` skips the
    end-of-run node-set and Lemma 3.5 checks - required for estimators
    running with garbage collection disabled, whose AGDP legitimately
    retains dead points.
    """
    if estimator_factory is None:
        estimator_factory = default_estimator_factory(
            schedule, debug_invariants=debug_invariants
        )
    report = DifferentialReport(schedule=schedule)
    harness = ScheduleHarness(
        schedule, estimator_factory=estimator_factory, attach_full=attach_full
    )
    spec = harness.spec

    def checkpoint(step_index: int, proc: str) -> None:
        report.checkpoints += 1
        csa = harness.csas[proc]
        last = csa.last_local_event
        if last is None:
            return
        if proc in harness.tainted:
            return  # no honest-path guarantees past the liar's influence
        if proc in harness.dirty:
            return  # corrupted and not yet audited (a drop checkpoint can
            # land on a dirty sender before its next local event recovers it)
        bound = csa.estimate()
        report.checks += 1
        truth = harness.truth[last.eid]
        if not bound.contains(truth, tolerance=tolerance):
            report.divergences.append(
                Divergence(
                    "soundness",
                    step_index,
                    proc,
                    f"estimate {bound} excludes true time {truth:.9g} at {last.eid}",
                )
            )
        past = oracle_causal_past(harness.events, last.eid)
        known_flags = csa.history.loss_flags
        expected = oracle_external_bounds(past, spec, last.eid)
        report.checks += 1
        if not bounds_equal(bound, expected, tolerance=tolerance):
            report.divergences.append(
                Divergence(
                    "optimality",
                    step_index,
                    proc,
                    f"estimate {bound} != oracle Thm 2.1 {expected} at {last.eid}",
                )
            )
        if harness.fulls:
            reference = harness.fulls[proc].estimate()
            report.checks += 1
            if not bounds_equal(bound, reference, tolerance=tolerance):
                report.divergences.append(
                    Divergence(
                        "reference",
                        step_index,
                        proc,
                        f"efficient {bound} != full-information {reference} "
                        f"at {last.eid}",
                    )
                )
        oracle_live = oracle_live_points(past, lost=known_flags)
        report.checks += 1
        if csa.live.live_points() != oracle_live:
            ours = csa.live.live_points()
            report.divergences.append(
                Divergence(
                    "live-set",
                    step_index,
                    proc,
                    "Definition 3.1 mismatch: "
                    f"extra={sorted(map(str, ours - oracle_live))}, "
                    f"missing={sorted(map(str, oracle_live - ours))}",
                )
            )

    crashed = False
    try:
        harness.run(on_checkpoint=checkpoint)
    except InvariantViolation as exc:
        crashed = True
        report.divergences.append(
            Divergence("invariant", -1, "", f"{exc}")
        )
    except Exception as exc:  # noqa: BLE001 - any crash is a finding here
        crashed = True
        report.divergences.append(
            Divergence(
                "crash",
                -1,
                "",
                f"{type(exc).__name__}: {exc} "
                f"({traceback.format_exc(limit=3).splitlines()[-2].strip()})",
            )
        )
    if not crashed:
        _end_of_run_checks(
            report, harness, tolerance, check_gc_distances=check_gc_distances
        )
        _serialize_checks(report, harness)
        if check_determinism:
            _determinism_check(report, schedule, estimator_factory)
    return report


# -- end-of-run checks ----------------------------------------------------------------


def _end_of_run_checks(
    report: DifferentialReport,
    harness: ScheduleHarness,
    tolerance: float,
    *,
    check_gc_distances: bool = True,
) -> None:
    spec = harness.spec
    for proc in harness.names:
        csa = harness.csas[proc]
        if proc in harness.dirty:
            continue  # corrupted with no event since - nothing to certify
        if proc in harness.tainted:
            _suspicion_consistency(report, proc, csa)
            continue
        # honest, untainted estimators must never have degraded or blamed
        report.checks += 1
        if csa.diagnostics or csa.validation_failures or csa.eviction_events:
            report.divergences.append(
                Divergence(
                    "quarantine",
                    -1,
                    proc,
                    f"honest run degraded: {len(csa.diagnostics)} diagnostics, "
                    f"{len(csa.validation_failures)} validation failures, "
                    f"{len(csa.eviction_events)} eviction events",
                )
            )
            continue
        last = csa.last_local_event
        if last is None or not check_gc_distances:
            continue
        # Lemma 3.5: GC preserved every live-live distance exactly
        past = oracle_causal_past(harness.events, last.eid)
        known_flags = csa.history.loss_flags
        expected_live = oracle_live_points(past, lost=known_flags)
        nodes = csa.agdp.nodes
        report.checks += 1
        if nodes != expected_live:
            report.divergences.append(
                Divergence(
                    "live-set",
                    -1,
                    proc,
                    "final AGDP node set differs from Definition 3.1: "
                    f"extra={sorted(map(str, nodes - expected_live))}, "
                    f"missing={sorted(map(str, expected_live - nodes))}",
                )
            )
            continue
        for x in sorted(nodes):
            oracle_d = oracle_distances_from(past, spec, x)
            for y in sorted(nodes):
                report.checks += 1
                if not endpoint_equal(
                    csa.agdp.distance(x, y), oracle_d[y], tolerance=tolerance
                ):
                    report.divergences.append(
                        Divergence(
                            "gc-distance",
                            -1,
                            proc,
                            f"Lemma 3.5 violated: agdp d({x}, {y}) = "
                            f"{csa.agdp.distance(x, y)}, oracle shortest path "
                            f"= {oracle_d[y]}",
                        )
                    )


def _suspicion_consistency(
    report: DifferentialReport, proc: str, csa: EfficientCSA
) -> None:
    """Structural checks that hold even for estimators fed with lies."""
    report.checks += 1
    if csa.suspicion is None:
        return
    evicted = csa.suspicion.evicted_procs
    bad = evicted & csa.suspicion.protected
    if bad:
        report.divergences.append(
            Divergence(
                "quarantine",
                -1,
                proc,
                f"protected processors evicted: {sorted(bad)}",
            )
        )
    for eid in csa.agdp.nodes:
        if csa.suspicion.is_excluded(eid):
            report.divergences.append(
                Divergence(
                    "quarantine",
                    -1,
                    proc,
                    f"excluded event {eid} still present in the AGDP",
                )
            )
            break


# -- serialize round-trips ------------------------------------------------------------


def _serialize_checks(report: DifferentialReport, harness: ScheduleHarness) -> None:
    from ..sim.serialize import spec_from_dict, spec_to_dict

    spec = harness.spec
    report.checks += 1
    revived = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
    if (
        revived.source != spec.source
        or revived.drift != spec.drift
        or revived.transit != spec.transit
    ):
        report.divergences.append(
            Divergence(
                "serialize",
                -1,
                "",
                "SystemSpec JSON round-trip is not the identity",
            )
        )
    report.checks += 1
    if Schedule.from_json(harness.schedule.to_json()) != harness.schedule:
        report.divergences.append(
            Divergence(
                "serialize",
                -1,
                "",
                "Schedule JSON round-trip is not the identity",
            )
        )


# -- determinism ----------------------------------------------------------------------


def _capture_run(
    schedule: Schedule,
    estimator_factory: Callable[[str, SystemSpec], EfficientCSA],
) -> Tuple[List[Tuple], List[Tuple]]:
    harness = ScheduleHarness(
        schedule, estimator_factory=estimator_factory, attach_full=False
    )
    trace: List[Tuple] = []

    def checkpoint(step_index: int, proc: str) -> None:
        if proc in harness.dirty:  # corrupted state may not form an interval
            trace.append((step_index, proc, "dirty"))
            return
        bound = harness.csas[proc].estimate()
        trace.append((step_index, proc, bound.lower, bound.upper))

    harness.run(on_checkpoint=checkpoint)
    final: List[Tuple] = []
    for name in harness.names:
        csa = harness.csas[name]
        final.append(
            (
                name,
                len(csa.diagnostics),
                tuple(f.kind for f in csa.validation_failures),
                tuple(sorted(csa.suspicion.scores.items()))
                if csa.suspicion is not None
                else (),
                tuple(sorted(csa.suspicion.evicted_procs))
                if csa.suspicion is not None
                else (),
                len(csa.agdp),
            )
        )
    return trace, final


def _determinism_check(
    report: DifferentialReport,
    schedule: Schedule,
    estimator_factory: Callable[[str, SystemSpec], EfficientCSA],
) -> None:
    report.checks += 1
    try:
        first = _capture_run(schedule, estimator_factory)
        second = _capture_run(schedule, estimator_factory)
    except Exception as exc:  # noqa: BLE001 - crashes already reported above
        report.divergences.append(
            Divergence(
                "determinism",
                -1,
                "",
                f"replay crashed while checking determinism: "
                f"{type(exc).__name__}: {exc}",
            )
        )
        return
    if first != second:
        report.divergences.append(
            Divergence(
                "determinism",
                -1,
                "",
                "two fresh replays disagree (estimates, diagnostics, or "
                "suspicion state are not bit-identical)",
            )
        )


# -- minimization ---------------------------------------------------------------------


def minimize_schedule(
    schedule: Schedule,
    is_interesting: Callable[[Schedule], bool],
    *,
    max_attempts: int = 2000,
) -> Schedule:
    """Greedy delta-debugging: the smallest schedule still ``is_interesting``.

    Deliver/drop steps are no-ops when their queue is empty, so every step
    subsequence of a valid schedule is valid - the reduction loop can cut
    freely.  After step reduction it tries dropping the tamper spec and
    flattening clock rates to 1.0.  ``is_interesting`` must accept the
    original schedule.
    """
    attempts = 0

    def interesting(candidate: Schedule) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        try:
            return is_interesting(candidate)
        except Exception:  # noqa: BLE001 - a crashing candidate is not a repro
            return False

    best = schedule
    steps = list(schedule.steps)
    chunk = max(len(steps) // 2, 1)
    while chunk >= 1:
        index = 0
        while index < len(steps):
            candidate_steps = steps[:index] + steps[index + chunk :]
            candidate = dataclasses.replace(best, steps=tuple(candidate_steps))
            if interesting(candidate):
                steps = candidate_steps
                best = candidate
            else:
                index += chunk
        chunk //= 2
    if best.tamper is not None:
        candidate = dataclasses.replace(best, tamper=None)
        if interesting(candidate):
            best = candidate
    flat_rates = tuple(1.0 for _ in best.rates)
    if flat_rates != best.rates:
        candidate = dataclasses.replace(best, rates=flat_rates)
        if interesting(candidate):
            best = candidate
    return best


# -- corpus + repro emission ----------------------------------------------------------


def repro_script(schedule: Schedule) -> str:
    """A standalone deterministic reproduction script for ``schedule``."""
    payload = schedule.to_json()
    return (
        "# Deterministic repro - run with: PYTHONPATH=src python repro.py\n"
        "from repro.sim.schedule import Schedule\n"
        "from repro.testing.differential import run_differential\n"
        "\n"
        f"schedule = Schedule.from_json(r'''{payload}''')\n"
        "report = run_differential(schedule)\n"
        "print(report.describe())\n"
        "assert report.ok, 'divergence reproduced (see output above)'\n"
    )


def _entry_name(schedule: Schedule, label: str) -> str:
    digest = hashlib.sha256(schedule.to_json().encode()).hexdigest()[:10]
    return f"{label}-{digest}.json"


def write_corpus_entry(
    report: DifferentialReport,
    directory,
    *,
    label: str = "divergence",
    note: str = "",
) -> Path:
    """Persist a schedule (and what it uncovered) as a JSON corpus entry.

    Corpus entries are *regression seeds*: the replay suite re-runs every
    committed entry and asserts a clean report, so an entry written at
    discovery time stays red until the underlying bug is fixed and green
    forever after.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entry = {
        "format": CORPUS_FORMAT,
        "label": label,
        "note": note,
        "schedule": report.schedule.to_dict(),
        "divergences_at_discovery": [
            {"kind": d.kind, "step": d.step, "proc": d.proc, "detail": d.detail}
            for d in report.divergences
        ],
        "repro": repro_script(report.schedule),
    }
    path = directory / _entry_name(report.schedule, label)
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus_entry(path) -> Schedule:
    """Load the schedule of one corpus entry (format-checked)."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != CORPUS_FORMAT:
        raise ValueError(
            f"unsupported corpus entry format {data.get('format')!r} in {path}"
        )
    return Schedule.from_dict(data["schedule"])


def check_schedule(
    schedule: Schedule,
    *,
    corpus_dir=None,
    estimator_factory: Optional[Callable[[str, SystemSpec], EfficientCSA]] = None,
    **kwargs,
) -> DifferentialReport:
    """Run the differential driver; on divergence, minimize, archive, raise.

    The one-call entry point for property-based tests: a divergence is
    shrunk by :func:`minimize_schedule`, written to ``corpus_dir`` (when
    given), and raised as an :class:`AssertionError` whose message embeds
    the deterministic repro script.
    """
    report = run_differential(
        schedule, estimator_factory=estimator_factory, **kwargs
    )
    if report.ok:
        return report

    def still_diverges(candidate: Schedule) -> bool:
        return not run_differential(
            candidate, estimator_factory=estimator_factory, **kwargs
        ).ok

    minimized = minimize_schedule(schedule, still_diverges)
    minimized_report = run_differential(
        minimized, estimator_factory=estimator_factory, **kwargs
    )
    if minimized_report.ok:  # minimization raced a flaky predicate; keep original
        minimized_report = report
    if corpus_dir is not None:
        write_corpus_entry(minimized_report, corpus_dir)
    raise AssertionError(
        minimized_report.describe()
        + "\n--- deterministic repro ---\n"
        + repro_script(minimized_report.schedule)
    )
