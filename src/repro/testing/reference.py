"""Pre-optimization reference implementations, kept as differential oracles.

The hot-path optimization pass (compacted zero-copy :class:`NumpyAGDP`,
indexed :class:`HistoryModule`) must be *observationally identical* to the
code it replaced: same distances, same payload contents and order, same
Lemma 3.2 report-once and Lemma 3.3 buffer behaviour, same unreliable-mode
token semantics.  This module preserves the replaced implementations
verbatim (minus the optimization, plus nothing) so property tests can
drive old and new side by side and diff every observable surface - see
``tests/testing/test_reference_parity.py``.

These classes are frozen: do not optimise them, do not fix latent bugs in
only one copy.  They intentionally keep the old costs (full-buffer dict
rebuild per GC, full-buffer scan per send, sorted slot list plus two
fancy-indexed block copies per edge).

One known, intentional divergence: :class:`ReferenceNumpyAGDP` charges
``pair_updates`` for the full active block (``n^2`` per improving edge)
where production backends count only finite relaxation candidates - the
counter-parity bug the optimization pass fixed.  Distance surfaces are
what these oracles are for; do not compare ``pair_updates`` against them.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..core.agdp import AGDPStats
from ..core.errors import InconsistentSpecificationError, ProtocolError
from ..core.events import Event, EventId, ProcessorId
from ..core.history import HistoryPayload, HistoryStats

__all__ = ["ReferenceHistoryModule", "ReferenceNumpyAGDP"]

INF = math.inf

NodeKey = Hashable

_INITIAL_CAPACITY = 16


class ReferenceNumpyAGDP:
    """The pre-compaction dense AGDP backend (free-list slots, block copies)."""

    def __init__(self, source: Optional[NodeKey] = None, *, gc_enabled: bool = True):
        self._capacity = _INITIAL_CAPACITY
        self._matrix = np.full((self._capacity, self._capacity), np.inf)
        self._slot: Dict[NodeKey, int] = {}
        self._key_of: Dict[int, NodeKey] = {}
        self._free: List[int] = list(range(self._capacity - 1, -1, -1))
        self._source = source
        self._gc_enabled = gc_enabled
        self._dead: Set[NodeKey] = set()
        self.stats = AGDPStats()
        self.invariant_hook = None
        if source is not None:
            self.add_node(source)

    @property
    def source(self) -> Optional[NodeKey]:
        return self._source

    @property
    def gc_enabled(self) -> bool:
        return self._gc_enabled

    def __contains__(self, node: NodeKey) -> bool:
        return node in self._slot

    def __len__(self) -> int:
        return len(self._slot)

    @property
    def nodes(self) -> Set[NodeKey]:
        return set(self._slot)

    @property
    def live_nodes(self) -> Set[NodeKey]:
        return set(self._slot) - self._dead

    def _slot_of(self, node: NodeKey) -> int:
        try:
            return self._slot[node]
        except KeyError:
            raise KeyError(f"node {node!r} is not tracked by this AGDP") from None

    def distance(self, x: NodeKey, y: NodeKey) -> float:
        return float(self._matrix[self._slot_of(x), self._slot_of(y)])

    def distances_from(self, x: NodeKey) -> Dict[NodeKey, float]:
        row = self._matrix[self._slot_of(x)]
        return {key: float(row[i]) for key, i in self._slot.items()}

    def distances_to(self, y: NodeKey) -> Dict[NodeKey, float]:
        col = self._matrix[:, self._slot_of(y)]
        return {key: float(col[i]) for key, i in self._slot.items()}

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        grown = np.full((new_capacity, new_capacity), np.inf)
        grown[: self._capacity, : self._capacity] = self._matrix
        self._free.extend(range(new_capacity - 1, self._capacity - 1, -1))
        self._matrix = grown
        self._capacity = new_capacity

    def add_node(self, node: NodeKey) -> None:
        if node in self._slot:
            raise ValueError(f"node {node!r} already present")
        if not self._free:
            self._grow()
        index = self._free.pop()
        self._matrix[index, :] = np.inf
        self._matrix[:, index] = np.inf
        self._matrix[index, index] = 0.0
        self._slot[node] = index
        self._key_of[index] = node
        self.stats.nodes_added += 1
        self.stats.max_nodes = max(self.stats.max_nodes, len(self._slot))

    def insert_edge(self, x: NodeKey, y: NodeKey, weight: float) -> None:
        xi = self._slot_of(x)
        yi = self._slot_of(y)
        if math.isnan(weight):
            raise ValueError("edge weight must not be NaN")
        if math.isinf(weight):
            return
        if x == y:
            if weight < 0:
                raise InconsistentSpecificationError(f"negative self-loop at {x!r}")
            return
        self.stats.edges_inserted += 1
        back = self._matrix[yi, xi]
        if back + weight < -1e-9:
            raise InconsistentSpecificationError(
                f"inserting ({x!r} -> {y!r}, {weight}) closes a negative cycle "
                f"(d({y!r}, {x!r}) = {back})",
                edge=(x, y, weight),
            )
        if weight >= self._matrix[xi, yi]:
            return
        active = sorted(self._slot.values())
        idx = np.array(active)
        block = self._matrix[np.ix_(idx, idx)]
        to_x = self._matrix[idx, xi]
        from_y = self._matrix[yi, idx]
        candidate = to_x[:, None] + weight + from_y[None, :]
        self.stats.pair_updates += idx.size * idx.size
        np.minimum(block, candidate, out=block)
        self._matrix[np.ix_(idx, idx)] = block
        if self.invariant_hook is not None:
            self.invariant_hook(self)

    def kill(self, node: NodeKey) -> None:
        if node not in self._slot:
            raise KeyError(f"node {node!r} is not present")
        if self._source is not None and node == self._source:
            raise ValueError("the source node is live forever")
        self.stats.nodes_killed += 1
        if not self._gc_enabled:
            self._dead.add(node)
        else:
            index = self._slot.pop(node)
            del self._key_of[index]
            self._matrix[index, :] = np.inf
            self._matrix[:, index] = np.inf
            self._free.append(index)
        if self.invariant_hook is not None:
            self.invariant_hook(self)

    def step(
        self,
        node: NodeKey,
        edges: Iterable[Tuple[NodeKey, NodeKey, float]],
        kills: Iterable[NodeKey] = (),
    ) -> None:
        self.add_node(node)
        for x, y, w in edges:
            if node not in (x, y):
                raise ValueError(
                    f"AGDP step for {node!r} may only insert incident edges, got ({x!r}, {y!r})"
                )
            self.insert_edge(x, y, w)
        for victim in kills:
            self.kill(victim)

    def matrix_size(self) -> int:
        return len(self._slot) * len(self._slot)


@dataclass
class _DeliveryToken:
    token_id: int
    neighbor: ProcessorId
    marks: Dict[ProcessorId, int]
    loss_flags: Tuple[EventId, ...]
    settled: bool = False


class ReferenceHistoryModule:
    """The pre-indexing Figure 2 module (rebuild-GC, full-buffer sends)."""

    def __init__(
        self,
        proc: ProcessorId,
        neighbors: Iterable[ProcessorId],
        *,
        reliable: bool = True,
        track_reports: bool = False,
        gc_enabled: bool = True,
    ):
        self.proc = proc
        self.neighbors: Tuple[ProcessorId, ...] = tuple(sorted(set(neighbors)))
        if proc in self.neighbors:
            raise ProtocolError(f"processor {proc!r} cannot neighbor itself")
        self._buffer: Dict[EventId, Event] = {}
        self._learn_order: Dict[EventId, int] = {}
        self._learn_counter = 0
        self._watermark: Dict[ProcessorId, Dict[ProcessorId, int]] = {
            u: {} for u in self.neighbors
        }
        self._known: Dict[ProcessorId, int] = {}
        self._loss_known: Set[EventId] = set()
        self._loss_sent: Dict[ProcessorId, Set[EventId]] = {
            u: set() for u in self.neighbors
        }
        self.reliable = reliable
        self._gc_enabled = gc_enabled
        self._tokens: Dict[int, _DeliveryToken] = {}
        self._token_ids = itertools.count()
        self.stats = HistoryStats(reports={} if track_reports else None)

    def known_seq(self, proc: ProcessorId) -> int:
        return self._known.get(proc, -1)

    def knows(self, eid: EventId) -> bool:
        return eid.seq <= self.known_seq(eid.proc)

    def watermark(self, neighbor: ProcessorId, proc: ProcessorId) -> int:
        try:
            return self._watermark[neighbor].get(proc, -1)
        except KeyError:
            raise ProtocolError(f"{neighbor!r} is not a neighbor of {self.proc!r}") from None

    def buffer_size(self) -> int:
        return len(self._buffer)

    def buffered_events(self) -> List[Event]:
        return sorted(self._buffer.values(), key=lambda e: self._learn_order[e.eid])

    @property
    def loss_flags(self) -> Set[EventId]:
        return set(self._loss_known)

    def pending_tokens(self) -> int:
        return len(self._tokens)

    def record_local(self, event: Event) -> None:
        if event.proc != self.proc:
            raise ProtocolError(
                f"module of {self.proc!r} given local event of {event.proc!r}"
            )
        self._learn(event)

    def record_loss(self, send_eid: EventId) -> bool:
        if send_eid in self._loss_known:
            return False
        self._loss_known.add(send_eid)
        return True

    def _learn(self, event: Event) -> None:
        eid = event.eid
        expected = self.known_seq(eid.proc) + 1
        if eid.seq != expected:
            raise ProtocolError(
                f"{self.proc!r} learned {eid} out of order (expected seq {expected})"
            )
        self._known[eid.proc] = eid.seq
        self._learn_order[eid] = self._learn_counter
        self._learn_counter += 1
        if any(
            eid.seq > self._watermark[u].get(eid.proc, -1) for u in self.neighbors
        ):
            self._buffer[eid] = event
            self.stats.max_buffer = max(self.stats.max_buffer, len(self._buffer))

    def prepare_payload(self, neighbor: ProcessorId) -> Tuple[HistoryPayload, int]:
        if neighbor not in self._watermark:
            raise ProtocolError(f"{neighbor!r} is not a neighbor of {self.proc!r}")
        marks = self._watermark[neighbor]
        fresh = [
            event
            for eid, event in self._buffer.items()
            if eid.seq > marks.get(eid.proc, -1)
        ]
        fresh.sort(key=lambda e: self._learn_order[e.eid])
        advance: Dict[ProcessorId, int] = {}
        for event in fresh:
            if event.seq > advance.get(event.proc, -1):
                advance[event.proc] = event.seq
            if self.stats.reports is not None:
                key = (event.eid, neighbor)
                self.stats.reports[key] = self.stats.reports.get(key, 0) + 1
        flags = tuple(sorted(self._loss_known - self._loss_sent[neighbor]))
        payload = HistoryPayload(records=tuple(fresh), loss_flags=flags)
        token = _DeliveryToken(
            token_id=next(self._token_ids),
            neighbor=neighbor,
            marks=advance,
            loss_flags=flags,
        )
        self.stats.payloads_sent += 1
        self.stats.records_sent += len(fresh)
        self.stats.max_payload = max(self.stats.max_payload, payload.size)
        if self.reliable:
            self._settle(token, confirmed=True)
        else:
            self._tokens[token.token_id] = token
        return payload, token.token_id

    def confirm_delivery(self, token_id: int) -> None:
        self._settle(self._take_token(token_id), confirmed=True)

    def abort_delivery(self, token_id: int) -> None:
        self._settle(self._take_token(token_id), confirmed=False)

    def _take_token(self, token_id: int) -> _DeliveryToken:
        token = self._tokens.pop(token_id, None)
        if token is None:
            raise ProtocolError(
                f"unknown or already settled delivery token {token_id} at {self.proc!r}"
            )
        return token

    def _settle(self, token: _DeliveryToken, *, confirmed: bool) -> None:
        if token.settled:
            raise ProtocolError(f"delivery token {token.token_id} settled twice")
        token.settled = True
        if not confirmed:
            return
        marks = self._watermark[token.neighbor]
        for proc, seq in token.marks.items():
            if seq > marks.get(proc, -1):
                marks[proc] = seq
        self._loss_sent[token.neighbor].update(token.loss_flags)
        self._gc()

    def ingest_payload(
        self, neighbor: ProcessorId, payload: HistoryPayload
    ) -> Tuple[List[Event], List[EventId]]:
        if neighbor not in self._watermark:
            raise ProtocolError(f"{neighbor!r} is not a neighbor of {self.proc!r}")
        marks = self._watermark[neighbor]
        new_events: List[Event] = []
        self.stats.payloads_received += 1
        for event in payload.records:
            self.stats.records_received += 1
            w = event.proc
            if event.seq > marks.get(w, -1):
                marks[w] = event.seq
            if self.knows(event.eid):
                self.stats.duplicate_records_received += 1
                continue
            self._learn(event)
            new_events.append(event)
        new_flags = [f for f in payload.loss_flags if f not in self._loss_known]
        self._loss_known.update(new_flags)
        self._loss_sent[neighbor].update(payload.loss_flags)
        self._gc()
        return new_events, new_flags

    def _gc(self) -> None:
        if not self._gc_enabled:
            return
        keep: Dict[EventId, Event] = {}
        for eid, event in self._buffer.items():
            if any(
                eid.seq > self._watermark[u].get(eid.proc, -1)
                for u in self.neighbors
            ):
                keep[eid] = event
        self._buffer = keep
