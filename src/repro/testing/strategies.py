"""Reusable Hypothesis strategies for the conformance suite.

One library replaces the private generators that used to be copy-pasted
across the integration fuzz files: random connected topologies, hidden
clock-rate vectors, :class:`~repro.core.specs.SystemSpec`s, adversarial
:class:`~repro.sim.schedule.Schedule`s (with optional loss and
deterministic Byzantine tampering), seeded
:class:`~repro.sim.faults.FaultPlan`s, and Byzantine injections for the
simulator path.

Everything drawn here is *in specification by construction*: rates sit
inside the advertised drift band, links advertise only ``transit >= 0``,
and fault plans contain no out-of-spec excursions - so soundness and
optimality are assertable on every example (Theorem 2.1's precondition
holds).  Adversarial timing is expressed through the schedule, not the
spec.

This module is the only part of :mod:`repro.testing` that imports
``hypothesis``; access it lazily (``repro.testing`` re-exports it via
``__getattr__``) so the oracles and invariants stay importable in
environments without hypothesis installed.
"""

from __future__ import annotations

import math
from typing import List, NamedTuple, Sequence, Tuple

from hypothesis import strategies as st

from ..core.events import Event, EventId, EventKind, ProcessorId
from ..core.history import HistoryPayload
from ..core.specs import DriftSpec, SystemSpec, TransitSpec
from ..sim.faults import (
    BYZANTINE_MODES,
    CORRUPTION_SCOPES,
    ByzantineProcessor,
    CrashWindow,
    Duplication,
    FaultPlan,
    PartitionWindow,
)
from ..sim.schedule import Schedule, TamperSpec, TAMPER_MODES

__all__ = [
    "Topology",
    "byzantine_processors",
    "churn_schedules",
    "clock_rates",
    "events",
    "fault_plans",
    "history_payloads",
    "schedules",
    "system_specs",
    "tamper_specs",
    "topologies",
]


class Topology(NamedTuple):
    """A connected undirected graph over processor indices ``0..n_procs-1``."""

    n_procs: int
    edges: Tuple[Tuple[int, int], ...]

    @property
    def names(self) -> Tuple[ProcessorId, ...]:
        return tuple(f"q{i}" for i in range(self.n_procs))

    def named_links(self) -> List[Tuple[ProcessorId, ProcessorId]]:
        names = self.names
        return [(names[u], names[v]) for u, v in self.edges]


@st.composite
def topologies(
    draw, *, min_procs: int = 2, max_procs: int = 5, max_chords: int = 2
) -> Topology:
    """Connected topologies: a random spanning tree plus a few chords."""
    n = draw(st.integers(min_value=min_procs, max_value=max_procs))
    edges = [
        (draw(st.integers(min_value=0, max_value=i - 1)), i) for i in range(1, n)
    ]
    seen = {(min(u, v), max(u, v)) for u, v in edges}
    for _ in range(draw(st.integers(min_value=0, max_value=max_chords))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        key = (min(u, v), max(u, v))
        if u != v and key not in seen:
            seen.add(key)
            edges.append(key)
    return Topology(n, tuple(edges))


@st.composite
def clock_rates(
    draw, n: int, *, min_rate: float = 0.995, max_rate: float = 1.005
) -> Tuple[float, ...]:
    """Hidden affine clock rates; index 0 (the source) is pinned to 1.0."""
    rates = [1.0] + [
        draw(
            st.floats(
                min_value=min_rate,
                max_value=max_rate,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        for _ in range(n - 1)
    ]
    return tuple(rates)


@st.composite
def system_specs(
    draw,
    *,
    min_procs: int = 2,
    max_procs: int = 5,
    max_drift_ppm: float = 5000.0,
    allow_bounded_transit: bool = True,
) -> SystemSpec:
    """Standalone :class:`SystemSpec`s for unit-level property tests."""
    topo = draw(topologies(min_procs=min_procs, max_procs=max_procs))
    ppm = draw(st.floats(min_value=0.0, max_value=max_drift_ppm))
    if allow_bounded_transit and draw(st.booleans()):
        lower = draw(st.floats(min_value=0.0, max_value=0.5))
        upper = lower + draw(st.floats(min_value=0.01, max_value=5.0))
        transit = TransitSpec(lower, upper)
    else:
        transit = TransitSpec(0.0, math.inf)
    names = topo.names
    return SystemSpec.build(
        source=names[0],
        processors=list(names),
        links=topo.named_links(),
        default_drift=DriftSpec.from_ppm(ppm),
        default_transit=transit,
    )


_PROC_NAMES = tuple(f"q{i}" for i in range(6))

_FINITE_LT = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def events(draw, *, procs: Sequence[ProcessorId] = _PROC_NAMES) -> Event:
    """Arbitrary well-formed :class:`~repro.core.events.Event` records.

    Structural validity only (the dataclass invariants hold); nothing here
    promises protocol-level consistency across drawn events - exactly what
    a codec round-trip property needs.
    """
    procs = list(procs)
    proc = draw(st.sampled_from(procs))
    seq = draw(st.integers(min_value=0, max_value=10_000))
    lt = draw(_FINITE_LT)
    kind = draw(st.sampled_from(list(EventKind)))
    others = [p for p in procs if p != proc]
    if not others:
        kind = EventKind.INTERNAL
    if kind is EventKind.SEND:
        return Event(EventId(proc, seq), lt, kind, dest=draw(st.sampled_from(others)))
    if kind is EventKind.RECEIVE:
        send = EventId(
            draw(st.sampled_from(others)),
            draw(st.integers(min_value=0, max_value=10_000)),
        )
        return Event(EventId(proc, seq), lt, kind, send_eid=send)
    return Event(EventId(proc, seq), lt, kind)


@st.composite
def history_payloads(
    draw, *, procs: Sequence[ProcessorId] = _PROC_NAMES, max_records: int = 12
) -> HistoryPayload:
    """Arbitrary :class:`~repro.core.history.HistoryPayload`\\ s for codec tests.

    Record ids are deduplicated (a payload never reports one event twice);
    loss flags are arbitrary send-shaped ids.
    """
    drawn = draw(st.lists(events(procs=procs), max_size=max_records))
    seen = set()
    records = []
    for event in drawn:
        if event.eid not in seen:
            seen.add(event.eid)
            records.append(event)
    flags = draw(
        st.lists(
            st.tuples(
                st.sampled_from(list(procs)), st.integers(min_value=0, max_value=10_000)
            ),
            max_size=4,
            unique=True,
        )
    )
    return HistoryPayload(
        records=tuple(records),
        loss_flags=tuple(EventId(p, s) for p, s in flags),
    )


@st.composite
def tamper_specs(draw, n_procs: int) -> TamperSpec:
    """Deterministic Byzantine tampering over one non-source liar."""
    liar = draw(st.integers(min_value=1, max_value=n_procs - 1))
    modes = tuple(
        sorted(
            draw(
                st.sets(
                    st.sampled_from(TAMPER_MODES), min_size=1, max_size=len(TAMPER_MODES)
                )
            )
        )
    )
    magnitude = draw(st.floats(min_value=0.05, max_value=2.0, allow_nan=False))
    period = draw(st.integers(min_value=1, max_value=3))
    return TamperSpec(liar=liar, modes=modes, magnitude=magnitude, period=period)


@st.composite
def schedules(
    draw,
    *,
    min_procs: int = 2,
    max_procs: int = 5,
    min_steps: int = 5,
    max_steps: int = 40,
    lossy: bool = False,
    tamper: bool = False,
    drain: bool = True,
) -> Schedule:
    """Adversarial protocol schedules (see :class:`~repro.sim.schedule.Schedule`).

    ``lossy`` admits drop steps (and runs estimators in unreliable mode);
    ``tamper`` attaches a deterministic Byzantine tamper spec.  With
    ``drain`` a few extra delivery steps are appended per directed link so
    long-in-flight messages still tend to arrive - deliveries are where
    the differential checks run.
    """
    topo = draw(topologies(min_procs=max(min_procs, 2), max_procs=max_procs))
    n = topo.n_procs
    rates = draw(clock_rates(n))
    directed = sorted(
        {(u, v) for u, v in topo.edges} | {(v, u) for u, v in topo.edges}
    )
    ops = ("send", "send", "deliver") if not lossy else (
        "send", "send", "deliver", "deliver", "drop"
    )
    steps: List[Tuple] = []
    for _ in range(draw(st.integers(min_value=min_steps, max_value=max_steps))):
        dt = draw(st.floats(min_value=0.01, max_value=2.0, allow_nan=False))
        u, v = draw(st.sampled_from(directed))
        op = draw(st.sampled_from(ops))
        steps.append((op, u, v, dt))
    if drain:
        for u, v in directed:
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                dt = draw(st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
                steps.append(("deliver", u, v, dt))
    spec = draw(tamper_specs(n)) if tamper else None
    return Schedule(
        rates=rates,
        edges=topo.edges,
        steps=tuple(steps),
        lossy=lossy,
        tamper=spec,
    )


@st.composite
def churn_schedules(
    draw,
    *,
    min_procs: int = 3,
    max_procs: int = 6,
    min_steps: int = 10,
    max_steps: int = 45,
    corrupt: bool = True,
) -> Schedule:
    """Lossy schedules with membership churn and state corruption.

    A subset of non-source processors starts absent and is admitted via
    ``join`` handshakes; the step mix adds ``leave``/``rejoin``/``join``,
    time-varying edges (``link_down``/``link_up``) and - with ``corrupt`` -
    seeded state-corruption steps exercising the self-stabilization path.
    A restoration tail rejoins departed processors, raises every edge, and
    gives each processor fresh send events (so corrupted-but-idle
    estimators audit and recover) before a final drain - end-of-run
    oracle checks then cover everything that ever ran.  Every churn op
    no-ops when its precondition fails, so shrinking stays sound.
    """
    topo = draw(topologies(min_procs=max(min_procs, 3), max_procs=max_procs))
    n = topo.n_procs
    rates = draw(clock_rates(n))
    directed = sorted(
        {(u, v) for u, v in topo.edges} | {(v, u) for u, v in topo.edges}
    )
    neighbors = {i: sorted({v for u, v in directed if u == i}) for i in range(n)}
    late = sorted(
        draw(
            st.sets(
                st.integers(min_value=1, max_value=n - 1),
                max_size=max(n - 2, 1),
            )
        )
    )
    initial = tuple(i for i in range(n) if i not in late)

    def dt() -> float:
        return draw(st.floats(min_value=0.01, max_value=1.5, allow_nan=False))

    steps: List[Tuple] = []
    # warm up the initially-present members so sponsors have state to hand off
    for _ in range(draw(st.integers(min_value=2, max_value=6))):
        u, v = draw(st.sampled_from(directed))
        steps.append(("send", u, v, dt()))
        steps.append(("deliver", u, v, dt()))
    # admit each late joiner (a sponsor drawn absent makes this a no-op and
    # the joiner simply stays out - end-of-run checks skip eventless procs)
    for j in late:
        sponsors = [s for s in neighbors[j] if s not in late] or neighbors[j]
        steps.append(("join", j, draw(st.sampled_from(sponsors)), dt()))
    ops = [
        "send", "send", "send", "deliver", "deliver", "deliver", "drop",
        "leave", "rejoin", "join", "link_down", "link_up",
    ]
    if corrupt:
        ops.append("corrupt")
    for _ in range(draw(st.integers(min_value=min_steps, max_value=max_steps))):
        op = draw(st.sampled_from(ops))
        if op in ("send", "deliver", "drop"):
            u, v = draw(st.sampled_from(directed))
            steps.append((op, u, v, dt()))
        elif op in ("leave", "rejoin"):
            u = draw(st.integers(min_value=1, max_value=n - 1))
            steps.append((op, u, u, dt()))
        elif op == "join":
            j = draw(st.integers(min_value=1, max_value=n - 1))
            steps.append(("join", j, draw(st.sampled_from(neighbors[j])), dt()))
        elif op == "corrupt":
            u = draw(st.integers(min_value=0, max_value=n - 1))
            scope = draw(
                st.integers(min_value=0, max_value=len(CORRUPTION_SCOPES) - 1)
            )
            steps.append(("corrupt", u, scope, dt()))
        else:  # link_down / link_up
            u, v = draw(st.sampled_from(list(topo.edges)))
            steps.append((op, u, v, dt()))
    # restoration tail: everyone back, every edge up, every estimator audited
    for i in range(1, n):
        steps.append(("rejoin", i, i, dt()))
    for u, v in topo.edges:
        steps.append(("link_up", u, v, dt()))
    for u, v in directed:
        steps.append(("send", u, v, dt()))
    for u, v in directed:
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            steps.append(("deliver", u, v, dt()))
    return Schedule(
        rates=rates,
        edges=topo.edges,
        steps=tuple(steps),
        lossy=True,
        initial=initial if late else None,
    )


@st.composite
def byzantine_processors(
    draw,
    procs: Sequence[ProcessorId],
    *,
    duration: float = 60.0,
) -> ByzantineProcessor:
    """Seeded-simulator Byzantine injections (:mod:`repro.sim.faults`)."""
    proc = draw(st.sampled_from(list(procs)))
    modes = tuple(
        sorted(
            draw(st.sets(st.sampled_from(sorted(BYZANTINE_MODES)), min_size=1))
        )
    )
    start = draw(st.floats(min_value=0.0, max_value=duration / 2))
    end = start + draw(st.floats(min_value=duration / 10, max_value=duration))
    magnitude = draw(st.floats(min_value=0.05, max_value=1.0))
    rate = draw(st.floats(min_value=0.05, max_value=0.75))
    return ByzantineProcessor(
        proc=proc, modes=modes, start=start, end=end, magnitude=magnitude, rate=rate
    )


@st.composite
def fault_plans(
    draw,
    names: Sequence[ProcessorId],
    links: Sequence[Tuple[ProcessorId, ProcessorId]],
    *,
    duration: float = 60.0,
    byzantine: bool = False,
    allow_crash_source: bool = False,
) -> FaultPlan:
    """Declarative in-spec fault plans for the simulator path.

    Crash and partition windows, duplication, and (optionally) Byzantine
    injections - but never out-of-spec drift/delay excursions, so
    Theorem 2.1's preconditions hold on every generated plan.
    """
    names = list(names)
    links = list(links)
    crash_pool = names if allow_crash_source else names[1:]
    injections: List[object] = []

    def window() -> Tuple[float, float]:
        start = draw(st.floats(min_value=0.0, max_value=duration * 0.8))
        end = start + draw(st.floats(min_value=duration * 0.01, max_value=duration * 0.5))
        return start, end

    if crash_pool:
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            start, end = window()
            injections.append(CrashWindow(draw(st.sampled_from(crash_pool)), start, end))
    if links:
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            start, end = window()
            a, b = draw(st.sampled_from(links))
            injections.append(PartitionWindow(a, b, start, end))
        for _ in range(draw(st.integers(min_value=0, max_value=1))):
            a, b = draw(st.sampled_from(links))
            injections.append(
                Duplication(a, b, prob=draw(st.floats(min_value=0.05, max_value=0.5)))
            )
    if byzantine and len(names) > 1:
        injections.append(
            draw(byzantine_processors(names[1:], duration=duration))
        )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return FaultPlan(seed=seed, injections=tuple(injections))
