"""Debug-mode structural invariants for the efficient CSA and its AGDP.

These checks are *internal consistency* assertions - cheap enough to run
after every mutation in a test, far too expensive for production.  They
are wired into :class:`~repro.core.csa.EfficientCSA` and both AGDP
backends behind the ``REPRO_DEBUG=1`` environment variable (or the
explicit ``debug_checks=True`` constructor flag): every edge insertion and
every GC pass re-validates the structure it just touched.

Checked here (paper references in parentheses):

* zero self-distances and no negative cycles in the AGDP matrix
  (Theorem 2.1: a negative cycle means the accepted constraints are
  mutually inconsistent);
* the triangle inequality is closed: ``d(x, z) <= d(x, y) + d(y, z)``
  for all tracked nodes - the matrix must hold *exact* distances, not
  mere upper bounds (Lemma 3.4);
* no dead nodes post-GC: with GC enabled the AGDP tracks exactly the
  live points of the tracked view (Definition 3.1), minus excluded
  evidence in hardened mode;
* tracker/history frontier agreement and loss-flag agreement (Lemma 3.1:
  at every point the processor knows exactly its local view);
* quarantine/suspicion consistency: diagnostics only in degraded mode,
  no protected processor ever evicted, no excluded event in the graph,
  and the source anchor present and live.

This module deliberately imports nothing from :mod:`repro.core` at module
scope so the core can lazily import it without cycles.
"""

from __future__ import annotations

import math
import os
from typing import Optional

__all__ = [
    "InvariantViolation",
    "check_agdp_invariants",
    "check_csa_invariants",
    "debug_checks_enabled",
]


class InvariantViolation(AssertionError):
    """A debug-mode structural invariant does not hold."""


def debug_checks_enabled(override: Optional[bool] = None) -> bool:
    """Whether debug invariant hooks should be active.

    ``override`` (the estimator's ``debug_checks`` argument) wins when not
    None; otherwise the ``REPRO_DEBUG`` environment variable decides, with
    ``""`` and ``"0"`` meaning off.
    """
    if override is not None:
        return override
    return os.environ.get("REPRO_DEBUG", "") not in ("", "0")


def _fail(message: str) -> None:
    raise InvariantViolation(message)


def check_agdp_invariants(agdp, *, tolerance: float = 1e-6) -> None:
    """Validate one AGDP matrix: self-distances, cycles, triangle closure.

    Works against both the dict and the numpy backend (anything with
    ``nodes`` and ``distance``).  O(n^3) - debug mode only.

    A source-only solver cannot answer arbitrary pairs; for it the check
    reduces to what is observable: zero anchor self-distance, no NaN in
    the anchor row/column, and every anchor-through cycle non-negative
    (``d(anchor, x) + d(x, anchor) >= 0``, Theorem 2.1).
    """
    if getattr(agdp, "source_only", False):
        anchor = agdp.anchor
        if anchor is None:
            return
        if agdp.distance(anchor, anchor) != 0.0:
            _fail(f"anchor self-distance is {agdp.distance(anchor, anchor)}")
        for x in agdp.nodes:
            d_ax = agdp.distance(anchor, x)
            d_xa = agdp.distance(x, anchor)
            if math.isnan(d_ax) or math.isnan(d_xa):
                _fail(f"anchor distance to {x} is NaN")
            if math.isinf(d_ax) or math.isinf(d_xa):
                continue
            if d_ax + d_xa < -tolerance:
                _fail(
                    f"negative cycle through the anchor at {x}: "
                    f"{d_ax} + {d_xa}"
                )
        return
    nodes = sorted(agdp.nodes)
    dist = {x: {y: agdp.distance(x, y) for y in nodes} for x in nodes}
    for x in nodes:
        d_xx = dist[x][x]
        if d_xx != 0.0:
            _fail(f"self-distance d({x}, {x}) = {d_xx}, expected 0")
        for y in nodes:
            d_xy = dist[x][y]
            if math.isnan(d_xy):
                _fail(f"d({x}, {y}) is NaN")
            if math.isinf(d_xy):
                continue
            if d_xy + dist[y][x] < -tolerance:
                _fail(
                    f"negative cycle {x} -> {y} -> {x}: "
                    f"{d_xy} + {dist[y][x]}"
                )
    for y in nodes:
        for x in nodes:
            d_xy = dist[x][y]
            if math.isinf(d_xy):
                continue
            row = dist[x]
            for z in nodes:
                d_yz = dist[y][z]
                if math.isinf(d_yz):
                    continue
                if d_xy + d_yz < row[z] - tolerance:
                    _fail(
                        f"triangle inequality open at ({x}, {y}, {z}): "
                        f"d({x},{z}) = {row[z]} > {d_xy} + {d_yz}"
                    )


def check_csa_invariants(csa) -> None:
    """Validate an :class:`~repro.core.csa.EfficientCSA`'s composed state."""
    check_agdp_invariants(csa.agdp)
    live_points = csa.live.live_points()
    nodes = csa.agdp.nodes
    if csa.agdp.gc_enabled:
        if csa.suspicion is None:
            if nodes != live_points:
                _fail(
                    "post-GC node set differs from the live set: "
                    f"extra={sorted(map(str, nodes - live_points))}, "
                    f"missing={sorted(map(str, live_points - nodes))}"
                )
        else:
            if not nodes <= live_points:
                _fail(
                    "AGDP holds dead nodes: "
                    f"{sorted(map(str, nodes - live_points))}"
                )
            for eid in nodes:
                if csa.suspicion.is_excluded(eid):
                    _fail(f"excluded event {eid} still in the AGDP")
            for eid in live_points - nodes:
                if not csa.suspicion.is_excluded(eid):
                    _fail(f"live, non-excluded event {eid} missing from the AGDP")
    # Lemma 3.1 bookkeeping: tracker and history agree on the known frontier
    for proc in csa.live.processors:
        tracker_seq = csa.live.last_seq(proc)
        history_seq = csa.history.known_seq(proc)
        if tracker_seq != history_seq:
            _fail(
                f"frontier disagreement at {proc!r}: live tracker has seq "
                f"{tracker_seq}, history has {history_seq}"
            )
    if csa.live.lost_flags != csa.history.loss_flags:
        _fail(
            "loss-flag disagreement: tracker "
            f"{sorted(map(str, csa.live.lost_flags))} vs history "
            f"{sorted(map(str, csa.history.loss_flags))}"
        )
    # quarantine / suspicion consistency
    if csa.diagnostics and not csa.degraded_mode:
        _fail("quarantine diagnostics recorded outside degraded mode")
    if csa.suspicion is not None:
        evicted = csa.suspicion.evicted_procs
        protected = csa.suspicion.protected
        if evicted & protected:
            _fail(f"protected processor evicted: {sorted(evicted & protected)}")
    anchor = csa._source_rep
    if anchor is not None:
        if anchor.proc != csa.spec.source:
            _fail(f"source anchor {anchor} is not a source event")
        if anchor not in csa.agdp:
            _fail(f"source anchor {anchor} missing from the AGDP")
