"""repro - reproduction of Ostrovsky & Patt-Shamir (PODC 1999),
"Optimal and Efficient Clock Synchronization Under Drifting Clocks".

Layout
------
``repro.core``
    The theory (views, bounds mappings, synchronization graphs, the Clock
    Synchronization Theorem) and the algorithms: the Sec 2.3
    full-information reference and the paper's efficient optimal CSA
    (history propagation + live points + AGDP).
``repro.sim``
    A deterministic discrete-event simulator: drifting clocks, links with
    transit bounds and loss, workloads (gossip, NTP hierarchy, Cristian
    probes), execution traces with real-time oracles.
``repro.baselines``
    Practical comparators the paper discusses: drift-free optimal with a
    fudge factor, an NTP-style offset/delay filter, Cristian round-trip
    estimation.
``repro.analysis``
    Metrics, complexity accounting, and claim checkers used by the
    experiments.
``repro.experiments``
    One module per experiment in DESIGN.md (E1-E9, A1, A2), runnable via
    ``python -m repro.experiments.cli``.
``repro.testing``
    The conformance subsystem (docs/TESTING.md): from-scratch oracles,
    the differential driver with corpus replay, debug-mode invariant
    hooks, and the Hypothesis strategy library.

Quickstart
----------
>>> from repro.core import EfficientCSA
>>> from repro.sim import standard_network, run_workload, topologies
>>> from repro.sim.workloads import PeriodicGossip
>>> names, links = topologies.line(4)
>>> net = standard_network(names, links, seed=7)
>>> result = run_workload(
...     net, PeriodicGossip(period=5.0, seed=7),
...     {"efficient": lambda p, s: EfficientCSA(p, s)},
...     duration=120.0, sample_period=10.0)
>>> all(s.sound for s in result.samples)
True
"""

__version__ = "1.0.0"

__all__ = ["core", "sim", "baselines", "analysis", "experiments", "testing"]
