"""Executable claim checkers: each paper statement as a pass/fail check.

Every experiment reduces to one or more :class:`ClaimCheck` values so that
EXPERIMENTS.md (and the integration tests) can assert "the paper's claim
holds on this run" mechanically.  The checkers re-derive everything from
the omniscient trace - they never trust the estimators' own bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.csa import EfficientCSA
from ..core.csa_full import FullInformationCSA
from ..core.events import EventId
from ..core.theorem import (
    check_execution,
    external_bounds,
    extremal_execution,
    source_point,
)
from ..core.syncgraph import build_sync_graph
from ..sim.runner import RunResult

__all__ = [
    "ClaimCheck",
    "check_soundness",
    "check_optimal_equals_full",
    "check_execution_satisfies_spec",
    "check_tightness",
    "check_report_once",
]


@dataclass(frozen=True)
class ClaimCheck:
    """One verified claim: a name, a verdict, and the numbers behind it."""

    name: str
    passed: bool
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self):
        mark = "PASS" if self.passed else "FAIL"
        detail = ", ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{mark}] {self.name}: {detail}"


def check_soundness(result: RunResult, channels: Sequence[str]) -> ClaimCheck:
    """Every sampled interval of the given channels contains true time."""
    relevant = [s for s in result.samples if s.channel in channels]
    violations = [s for s in relevant if not s.sound]
    return ClaimCheck(
        name="soundness",
        passed=not violations,
        details={
            "samples": len(relevant),
            "violations": len(violations),
            "channels": ",".join(channels),
        },
    )


def check_execution_satisfies_spec(result: RunResult) -> ClaimCheck:
    """The simulated execution obeys its own advertised specification."""
    view = result.trace.global_view()
    errors = check_execution(
        view, result.sim.spec, result.trace.real_times, tolerance=1e-6
    )
    return ClaimCheck(
        name="execution-satisfies-spec",
        passed=not errors,
        details={"events": len(view), "violations": len(errors)},
    )


def check_optimal_equals_full(
    result: RunResult,
    efficient_channel: str = "efficient",
    full_channel: str = "full",
    *,
    tolerance: float = 1e-7,
) -> ClaimCheck:
    """The Sec 3 algorithm's final estimates equal the Sec 2.3 reference's.

    Compared at the last local point of every processor (where both are
    defined on the same view by Lemma 3.1).
    """
    mismatches = []
    for proc in result.sim.network.processors:
        efficient = result.sim.estimator(proc, efficient_channel)
        full = result.sim.estimator(proc, full_channel)
        if not isinstance(efficient, EfficientCSA) or not isinstance(
            full, FullInformationCSA
        ):
            raise TypeError("channels must be (EfficientCSA, FullInformationCSA)")
        e = efficient.estimate()
        f = full.estimate()
        lower_gap = abs(e.lower - f.lower)
        upper_gap = abs(e.upper - f.upper)
        if math.isinf(e.lower) and math.isinf(f.lower):
            lower_gap = 0.0
        if math.isinf(e.upper) and math.isinf(f.upper):
            upper_gap = 0.0
        if lower_gap > tolerance or upper_gap > tolerance:
            mismatches.append((proc, str(e), str(f)))
    return ClaimCheck(
        name="efficient-equals-full-information",
        passed=not mismatches,
        details={
            "processors": len(result.sim.network.processors),
            "mismatches": len(mismatches),
            "first": mismatches[0] if mismatches else "",
        },
    )


def check_tightness(
    result: RunResult,
    points: Optional[Sequence[EventId]] = None,
    *,
    tolerance: float = 1e-6,
) -> ClaimCheck:
    """Theorem 2.1 tightness: both interval endpoints are attained by legal,
    indistinguishable executions.

    For each checked point, builds the extremal real-time assignments and
    validates them against the full specification.
    """
    view = result.trace.global_view()
    spec = result.sim.spec
    sp = source_point(view, spec)
    if sp is None:
        return ClaimCheck("tightness", False, {"reason": "no source point"})
    graph = build_sync_graph(view, spec)
    if points is None:
        points = [
            view.last_event(proc).eid
            for proc in view.processors
            if proc != spec.source
        ]
    checked = 0
    failures: List[str] = []
    for p in points:
        bound = external_bounds(view, spec, p, graph)
        for endpoint, target in (("upper", bound.upper), ("lower", bound.lower)):
            if math.isinf(target):
                continue
            checked += 1
            rt = extremal_execution(view, spec, p, sp, endpoint, graph=graph)
            errors = check_execution(view, spec, rt, tolerance=tolerance)
            if errors:
                failures.append(f"{p}/{endpoint}: {errors[0]}")
                continue
            attained = rt[p]
            if abs(attained - target) > tolerance:
                failures.append(
                    f"{p}/{endpoint}: attained {attained}, bound {target}"
                )
    return ClaimCheck(
        name="tightness-endpoints-attained",
        passed=not failures,
        details={"endpoints_checked": checked, "failures": len(failures),
                 "first": failures[0] if failures else ""},
    )


def check_report_once(result: RunResult, channel: str = "efficient") -> ClaimCheck:
    """Lemma 3.2: no event is reported twice over the same link direction.

    Requires the channel's EfficientCSA instances to have been created with
    ``track_reports=True``.
    """
    worst = 0
    total_reports = 0
    for proc in result.sim.network.processors:
        estimator = result.sim.estimator(proc, channel)
        reports = estimator.history.stats.reports
        if reports is None:
            return ClaimCheck(
                "report-once", False, {"reason": "report tracking disabled"}
            )
        for count in reports.values():
            worst = max(worst, count)
            total_reports += count
    return ClaimCheck(
        name="report-once-per-link-direction",
        passed=worst <= 1,
        details={"max_reports_per_event_direction": worst, "total": total_reports},
    )
