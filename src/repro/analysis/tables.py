"""Plain-text table rendering for experiment reports.

The paper has no empirical tables; EXPERIMENTS.md records ours.  This
renderer produces aligned monospace tables (and a markdown variant for the
docs) from rows of dictionaries, deterministic in column order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_value", "render_table", "render_markdown_table"]


def format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _normalise(
    rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]]
) -> (List[str], List[List[str]]):
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    return list(columns), cells


def render_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: Optional[str] = None,
) -> str:
    """Aligned monospace table; column order inferred from first rows."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns, cells = _normalise(rows, columns)
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_markdown_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    if not rows:
        return "(no rows)"
    columns, cells = _normalise(rows, columns)
    lines = ["| " + " | ".join(columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in cells:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
