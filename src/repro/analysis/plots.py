"""Terminal plotting helpers for experiment reports and examples.

The reproduction is terminal-first (no plotting dependencies); these
helpers render the series the paper's narrative is about - interval
widths over time, scaling curves - as compact ASCII artifacts:

* :func:`sparkline` - one-line intensity strip of a series;
* :func:`ascii_plot` - a small multi-row scatter/line canvas;
* :func:`histogram` - horizontal-bar distribution summary.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["sparkline", "ascii_plot", "histogram"]

_SPARK_BLOCKS = " .:-=+*#%@"


def _finite(values: Iterable[float]) -> List[float]:
    return [v for v in values if not (math.isnan(v) or math.isinf(v))]


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """A one-line intensity strip: each cell is the max of its bucket.

    Infinite/NaN values render as the top block (they are "off scale").
    """
    if not values:
        return ""
    finite = _finite(values)
    top = max(finite) if finite else 1.0
    if top <= 0:
        top = 1.0
    step = max(1, math.ceil(len(values) / width))
    cells = []
    for start in range(0, len(values), step):
        bucket = values[start : start + step]
        worst = max(bucket)
        if math.isinf(worst) or math.isnan(worst):
            cells.append(_SPARK_BLOCKS[-1])
            continue
        level = min(int(worst / top * (len(_SPARK_BLOCKS) - 1)), len(_SPARK_BLOCKS) - 1)
        cells.append(_SPARK_BLOCKS[max(level, 0)])
    return "".join(cells)


def ascii_plot(
    points: Sequence[Tuple[float, float]],
    *,
    width: int = 64,
    height: int = 12,
    marker: str = "*",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A minimal scatter plot on a character canvas, with axis ranges."""
    finite = [
        (x, y)
        for x, y in points
        if not any(math.isnan(v) or math.isinf(v) for v in (x, y))
    ]
    if not finite:
        return "(no finite points)"
    xs = [p[0] for p in finite]
    ys = [p[1] for p in finite]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for x, y in finite:
        col = min(int((x - x_lo) / x_span * (width - 1)), width - 1)
        row = min(int((y - y_lo) / y_span * (height - 1)), height - 1)
        canvas[height - 1 - row][col] = marker
    lines = [f"{y_label}: [{y_lo:g}, {y_hi:g}]"]
    lines += ["|" + "".join(row) for row in canvas]
    lines.append("+" + "-" * width)
    lines.append(f"{x_label}: [{x_lo:g}, {x_hi:g}]")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    *,
    bins: int = 10,
    width: int = 48,
) -> str:
    """Horizontal-bar histogram of a (finite) sample."""
    finite = _finite(values)
    if not finite:
        return "(no finite values)"
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for value in finite:
        index = min(int((value - lo) / span * bins), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        left = lo + span * i / bins
        right = lo + span * (i + 1) / bins
        bar = "#" * (0 if peak == 0 else round(count / peak * width))
        lines.append(f"[{left:10.4g}, {right:10.4g})  {bar} {count}")
    return "\n".join(lines)
