"""Estimate-quality metrics over sampled runs.

These summarise :class:`~repro.sim.runner.EstimateSample` streams into the
quantities the experiments report: soundness rates, width statistics, and
pairwise dominance between estimator channels (is the optimal interval
really never wider than a sound baseline's?).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.events import ProcessorId
from ..sim.runner import EstimateSample

__all__ = [
    "WidthStats",
    "width_stats",
    "soundness_summary",
    "dominance_check",
    "convergence_time",
    "fraction_within",
    "PointErrorStats",
    "midpoint_error_stats",
]


@dataclass(frozen=True)
class WidthStats:
    """Distribution summary of interval widths (bounded samples only)."""

    count: int
    bounded: int
    mean: float
    median: float
    p95: float
    max: float

    @classmethod
    def empty(cls) -> "WidthStats":
        return cls(0, 0, math.inf, math.inf, math.inf, math.inf)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return math.inf
    index = min(int(q * (len(sorted_values) - 1) + 0.5), len(sorted_values) - 1)
    return sorted_values[index]


def width_stats(samples: Iterable[EstimateSample]) -> WidthStats:
    samples = list(samples)
    widths = sorted(s.width for s in samples if s.bound.is_bounded)
    if not widths:
        return WidthStats(len(samples), 0, math.inf, math.inf, math.inf, math.inf)
    return WidthStats(
        count=len(samples),
        bounded=len(widths),
        mean=sum(widths) / len(widths),
        median=_percentile(widths, 0.5),
        p95=_percentile(widths, 0.95),
        max=widths[-1],
    )


def soundness_summary(
    samples: Iterable[EstimateSample],
) -> Dict[str, Tuple[int, int]]:
    """Per channel: (total samples, unsound samples)."""
    out: Dict[str, List[int]] = {}
    for sample in samples:
        total, bad = out.setdefault(sample.channel, [0, 0])
        out[sample.channel][0] = total + 1
        if not sample.sound:
            out[sample.channel][1] = bad + 1
    return {ch: (t, b) for ch, (t, b) in out.items()}


@dataclass(frozen=True)
class PointErrorStats:
    """Accuracy of a point estimator (|estimate - truth|) over samples."""

    count: int
    mean_abs: float
    rms: float
    max_abs: float

    @classmethod
    def from_errors(cls, errors: Sequence[float]) -> "PointErrorStats":
        if not errors:
            return cls(0, math.inf, math.inf, math.inf)
        absolute = [abs(e) for e in errors]
        return cls(
            count=len(absolute),
            mean_abs=sum(absolute) / len(absolute),
            rms=math.sqrt(sum(e * e for e in absolute) / len(absolute)),
            max_abs=max(absolute),
        )


def midpoint_error_stats(samples: Iterable[EstimateSample]) -> PointErrorStats:
    """Accuracy of the interval *midpoint* as a point estimate of truth.

    A certified interval is more than a point estimate, but its midpoint
    is also a natural one - and for the optimal algorithm it is usually
    competitive with dedicated point estimators (NTP's filter), with the
    guarantee on top.  Unbounded samples are skipped.
    """
    errors = [
        sample.bound.midpoint - sample.truth
        for sample in samples
        if sample.bound.is_bounded
    ]
    return PointErrorStats.from_errors(errors)


def convergence_time(
    samples: Iterable[EstimateSample],
    *,
    threshold: float,
) -> Optional[float]:
    """First sampled real time at which the width is <= ``threshold``.

    ``None`` if the stream never converges.  Filter the samples to one
    (channel, processor) before calling - the function is agnostic.
    """
    best: Optional[float] = None
    for sample in samples:
        if sample.width <= threshold and (best is None or sample.rt < best):
            best = sample.rt
    return best


def fraction_within(
    samples: Iterable[EstimateSample],
    *,
    threshold: float,
) -> float:
    """Fraction of samples whose width is <= ``threshold`` (NaN-free)."""
    total = 0
    within = 0
    for sample in samples:
        total += 1
        if sample.width <= threshold:
            within += 1
    return within / total if total else 0.0


def dominance_check(
    samples: Iterable[EstimateSample],
    optimal_channel: str,
    other_channels: Sequence[str],
    *,
    tolerance: float = 1e-9,
) -> Dict[str, int]:
    """How often each other channel produced a *strictly tighter* interval
    than the optimal channel at the same (time, processor).

    For sound interval algorithms the count must be zero - that is what
    "optimal" means operationally.  (Point estimators with statistical
    budgets may score nonzero; they are not sound intervals.)
    """
    by_key: Dict[Tuple[float, ProcessorId], Dict[str, EstimateSample]] = {}
    for sample in samples:
        by_key.setdefault((sample.rt, sample.proc), {})[sample.channel] = sample
    wins = {ch: 0 for ch in other_channels}
    for grouped in by_key.values():
        optimal = grouped.get(optimal_channel)
        if optimal is None:
            continue
        for ch in other_channels:
            other = grouped.get(ch)
            if other is None or not other.bound.is_bounded:
                continue
            if other.width < optimal.width - tolerance:
                wins[ch] += 1
    return wins
