"""Complexity accounting: the quantities of Theorem 3.6 / Corollary 4.1.1.

Collects, from a finished run, the empirical values of the parameters the
paper's bounds are stated in -

* ``K1`` - relative system speed (events system-wide between consecutive
  events at one processor),
* ``K2`` - link send asymmetry,
* ``L``  - peak live points,
* ``D``  - network hop diameter,
* per-processor peaks of AGDP matrix size, history buffer, payload size -

and provides a tiny log-log regression used by the scaling experiments to
verify growth exponents (e.g. AGDP cost ~ L^2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.csa import EfficientCSA
from ..core.events import ProcessorId
from ..sim.runner import RunResult

__all__ = ["ComplexityReport", "collect_complexity", "loglog_slope"]


@dataclass(frozen=True)
class ComplexityReport:
    """Empirical complexity parameters of one run (for channel ``channel``)."""

    channel: str
    n_processors: int
    n_links: int
    diameter: int
    events_total: int
    messages_sent: int
    k1_relative_speed: int
    k1_link_send_speed: int
    k2_link_asymmetry: int
    max_live_points_oracle: int
    max_live_points_csa: int
    max_agdp_nodes: int
    max_agdp_cells: int
    max_history_buffer: int
    max_payload_records: int
    k2_bound_live_points: int

    def bounds_hold(self) -> Dict[str, bool]:
        """The paper's inequalities, instantiated with measured values."""
        k2e = max(self.k2_bound_live_points, 1)
        return {
            # Lemma 4.1: live points = O(K2 |E|); constant 4 covers the
            # additive last-point-per-processor term on sparse graphs.
            "live_le_4_k2_E": self.max_live_points_csa <= 4 * k2e + self.n_processors,
            # Lemma 3.3: |H_v| = O(K1 (D+1)), K1 in the link-send sense
            "history_le_k1_dp1": self.max_history_buffer
            <= max(1, self.k1_link_send_speed) * (self.diameter + 1)
            + self.n_processors,
            # AGDP node count tracks live points (plus the in-flight node)
            "agdp_close_to_live": self.max_agdp_nodes
            <= self.max_live_points_csa + 1,
            # Thm 3.6 message size: a report is a subset of H_v, so it is
            # bounded by the same K1*(D+1) envelope
            "payload_le_history_envelope": self.max_payload_records
            <= max(1, self.k1_link_send_speed) * (self.diameter + 1)
            + self.n_processors,
        }


def collect_complexity(result: RunResult, channel: str = "efficient") -> ComplexityReport:
    """Aggregate complexity counters from every processor's EfficientCSA."""
    network = result.sim.network
    spec = network.spec
    max_live_csa = 0
    max_agdp_nodes = 0
    max_agdp_cells = 0
    max_history = 0
    max_payload = 0
    for proc in network.processors:
        estimator = result.sim.estimator(proc, channel)
        if not isinstance(estimator, EfficientCSA):
            raise TypeError(
                f"channel {channel!r} at {proc!r} is not an EfficientCSA"
            )
        stats = estimator.stats()
        max_live_csa = max(max_live_csa, stats.max_live_points)
        max_agdp_nodes = max(max_agdp_nodes, stats.max_agdp_nodes)
        max_agdp_cells = max(max_agdp_cells, stats.max_agdp_nodes**2)
        max_history = max(max_history, stats.max_history_buffer)
        max_payload = max(max_payload, stats.max_payload_records)
    k2 = result.trace.link_asymmetry()
    n_links = len(network.links)
    return ComplexityReport(
        channel=channel,
        n_processors=len(network.processors),
        n_links=n_links,
        diameter=spec.diameter(),
        events_total=len(result.trace),
        messages_sent=result.sim.messages_sent,
        k1_relative_speed=result.trace.relative_system_speed(),
        k1_link_send_speed=result.trace.link_send_speed(),
        k2_link_asymmetry=k2,
        max_live_points_oracle=result.trace.max_live_points(),
        max_live_points_csa=max_live_csa,
        max_agdp_nodes=max_agdp_nodes,
        max_agdp_cells=max_agdp_cells,
        max_history_buffer=max_history,
        max_payload_records=max_payload,
        k2_bound_live_points=k2 * n_links,
    )


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Used by the scaling experiments: a measured cost growing like ``x^a``
    yields slope ~``a``.  Requires positive inputs and at least two points.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two or more paired positive points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log regression needs positive values")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ValueError("x values must not be all equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    return sxy / sxx
