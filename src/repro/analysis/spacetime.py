"""Space-time (Lamport) diagrams as text.

Renders an execution trace as the classical distributed-computing
space-time diagram - one column per processor, one row per event in
chronological order - with message annotations linking sends to their
receives.  Invaluable when debugging protocol behaviour or explaining a
counter-intuitive bound: the optimal interval at a point is determined
exactly by the paths visible in this picture.

Example output::

    rt        p0               p1               p2
    0.415     s#0 >p1
    0.467                      r#0 <p0#0
    0.520                      s#1 >p2
    ...
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.events import ProcessorId
from ..sim.trace import ExecutionTrace

__all__ = ["spacetime_diagram"]


def _cell(event, lost: bool) -> str:
    if event.is_send:
        suffix = " LOST" if lost else ""
        return f"s#{event.seq} >{event.dest}{suffix}"
    if event.is_receive:
        return f"r#{event.seq} <{event.send_eid}"
    return f"i#{event.seq}"


def spacetime_diagram(
    trace: ExecutionTrace,
    *,
    procs: Optional[Sequence[ProcessorId]] = None,
    start: int = 0,
    limit: Optional[int] = 40,
    column_width: int = 18,
    show_lt: bool = False,
) -> str:
    """Render ``trace`` (or a slice of it) as a text space-time diagram.

    Parameters
    ----------
    procs:
        Column order; defaults to all processors sorted.
    start, limit:
        Event-index window into the trace (``limit=None`` = to the end).
    column_width:
        Character budget per processor column.
    show_lt:
        Also print each event's local time inside its cell.
    """
    records = list(trace)[start : None if limit is None else start + limit]
    if not records:
        return "(empty trace slice)"
    if procs is None:
        procs = sorted({r.event.proc for r in trace})
    column = {proc: i for i, proc in enumerate(procs)}
    lost = trace.lost_sends
    header = "rt".ljust(10) + "".join(p.ljust(column_width) for p in procs)
    lines = [header, "-" * len(header)]
    for record in records:
        event = record.event
        if event.proc not in column:
            continue
        cell = _cell(event, event.eid in lost)
        if show_lt:
            cell += f" @{event.lt:.3f}"
        cell = cell[: column_width - 1]
        row = (
            f"{record.rt:<10.3f}"
            + " " * (column[event.proc] * column_width)
            + cell
        )
        lines.append(row)
    skipped = len(trace) - start - len(records)
    if start > 0:
        lines.insert(2, f"... ({start} earlier events)")
    if skipped > 0:
        lines.append(f"... ({skipped} later events)")
    return "\n".join(lines)
