"""Analysis utilities: metrics, complexity accounting, claim checkers, tables."""

from .claims import (
    ClaimCheck,
    check_execution_satisfies_spec,
    check_optimal_equals_full,
    check_report_once,
    check_soundness,
    check_tightness,
)
from .complexity import ComplexityReport, collect_complexity, loglog_slope
from .plots import ascii_plot, histogram, sparkline
from .spacetime import spacetime_diagram
from .metrics import (
    PointErrorStats,
    WidthStats,
    midpoint_error_stats,
    convergence_time,
    dominance_check,
    fraction_within,
    soundness_summary,
    width_stats,
)
from .tables import format_value, render_markdown_table, render_table

__all__ = [
    "ClaimCheck",
    "ComplexityReport",
    "PointErrorStats",
    "WidthStats",
    "check_execution_satisfies_spec",
    "check_optimal_equals_full",
    "check_report_once",
    "check_soundness",
    "check_tightness",
    "collect_complexity",
    "convergence_time",
    "fraction_within",
    "dominance_check",
    "format_value",
    "loglog_slope",
    "midpoint_error_stats",
    "render_markdown_table",
    "render_table",
    "ascii_plot",
    "histogram",
    "sparkline",
    "soundness_summary",
    "spacetime_diagram",
    "width_stats",
]
