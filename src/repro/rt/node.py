"""The asyncio node daemon: one live processor running an estimator.

A :class:`Node` is the runtime counterpart of one simulated processor.
It owns an :class:`~repro.core.csa_base.Estimator` (by default a
hardened, unreliable-mode :class:`~repro.core.csa.EfficientCSA`), reads
its hardware clock through a :class:`~repro.rt.clock.ClockSource`, and
drives the estimator's passive event hooks from real traffic on a
:class:`~repro.rt.transport.Transport`:

* a gossip loop emits one ``sync`` frame per neighbor every
  ``gossip_period`` seconds (jittered), calling ``on_send`` and wiring
  the returned :class:`~repro.core.history.HistoryPayload` onto the wire;
* received ``sync`` frames become receive events (``on_receive``) and are
  acknowledged; duplicates are discarded *before* the estimator but
  re-acked, giving the at-most-once delivery the event model assumes;
* ``ack`` frames confirm delivery (``on_delivery_confirmed``), cancelling
  the per-message loss timer; a timer that fires first signals
  ``on_loss_detected`` and retransmits as a *fresh* send while the
  :class:`~repro.sim.faults.RetransmitPolicy` allows - the same Sec 3.3
  recovery loop PR 1 built for the simulator, now against real timers;
* undecodable or malformed bytes never reach the estimator: they are
  counted, and when the claimed sender is a known neighbor the anomaly is
  fed to :meth:`~repro.core.csa.EfficientCSA.report_anomaly`, so
  wire-level garbage lands in the same suspicion ledger as sim-path
  tampering;
* a node configured with a ``sponsor`` asks that neighbor for a
  bootstrap while its estimator is still fresh: ``join`` frames repeat
  every gossip period until a boot-carrying ``sync`` lands, the sponsor
  snapshots *after* the answering send event (Lemma 3.1), and
  :meth:`~repro.core.csa.EfficientCSA.bootstrap_from` enforces
  at-most-once adoption - so joins, retransmits, and duplicate answers
  are all harmless over UDP, and a *restarted* node (durable state, not
  fresh) silently ignores boots and recovers from its own state instead.

Every local event is paired ``(rt, lt)`` through one shared
:class:`~repro.rt.clock.TimeBase` reading, and appended to the node's
local trace log; the cluster harness merges these logs into an
:class:`~repro.sim.trace.ExecutionTrace` that the oracles and the
serializer consume exactly as if the simulator had produced it.

Crash/restart follows PR 1's fail-stop-with-durable-state semantics:
:meth:`Node.stop` halts timers and unregisters from the transport;
:meth:`Node.start` re-registers, first flushing any transmissions that
were in flight at the crash as losses (sound - loss signals only discard
information) and resuming sequence numbers where they left off.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.csa import EfficientCSA
from ..core.csa_base import Estimator, SuspicionPolicy
from ..core.errors import SimulationError
from ..core.events import Event, EventId, EventKind, ProcessorId
from ..core.intervals import ClockBound
from ..core.specs import SystemSpec
from ..sim.faults import RetransmitPolicy
from .clock import ClockSource, MonotonicClockSource, TimeBase
from .transport import Transport
from .wire import (
    MAX_BODY_BYTES,
    WIRE_CODECS,
    WIRE_VERSION_BINARY,
    Frame,
    ack_frame,
    decode_frames,
    encode_frame,
    hello_frame,
    join_frame,
    sync_frame,
)

__all__ = [
    "LinkStats",
    "NodeConfig",
    "NodeStats",
    "Node",
]

#: smallest forward nudge of the shared real-time reading used to keep a
#: node's local-time stamps strictly increasing (see Node._next_point)
_RT_NUDGE = 1e-7


@dataclass
class LinkStats:
    """Per-neighbor traffic counters, updated live."""

    sent: int = 0
    received: int = 0
    acked: int = 0
    retransmissions: int = 0
    losses_signaled: int = 0
    duplicates: int = 0
    decode_errors: int = 0
    rejected_frames: int = 0
    #: datagrams actually written to the transport (coalescing makes this
    #: smaller than the frame count toward binary peers)
    datagrams: int = 0
    #: frames that shared a datagram with an earlier frame
    coalesced: int = 0
    #: join requests received from this peer (we acted as its sponsor)
    join_requests: int = 0
    #: highest own seq this peer has confirmed (-1: nothing acked yet)
    last_acked_seq: int = -1
    #: highest peer seq seen on this link, duplicates included
    last_seen_seq: int = -1


@dataclass(frozen=True)
class NodeConfig:
    """Static configuration of one runtime node."""

    proc: ProcessorId
    spec: SystemSpec
    gossip_period: float = 0.5
    #: fraction of the period added as uniform jitter (desynchronizes nodes)
    jitter: float = 0.1
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)
    #: suspicion policy for the default estimator; None -> unhardened
    suspicion: Optional[SuspicionPolicy] = field(default_factory=SuspicionPolicy)
    seed: int = 0
    #: build a custom estimator; default is hardened unreliable EfficientCSA
    estimator_factory: Optional[Callable[["NodeConfig"], Estimator]] = None
    #: neighbor to request a bootstrap snapshot from while still fresh
    sponsor: Optional[ProcessorId] = None
    #: how long (s) a fresh joiner holds gossip for its sponsor's boot
    #: before falling back to a cold join; irrelevant without a sponsor
    boot_patience: float = 2.0
    #: preferred wire codec: "binary" advertises and upgrades to the
    #: packed v3 bodies per peer (after the peer advertises too), "json"
    #: pins this node to v2 JSON frames and advertises nothing else
    codec: str = "binary"

    def __post_init__(self):
        if self.codec not in WIRE_CODECS:
            raise SimulationError(f"unknown wire codec {self.codec!r}")
        if self.gossip_period <= 0:
            raise SimulationError(
                f"gossip period must be positive, got {self.gossip_period}"
            )
        if self.jitter < 0:
            raise SimulationError(f"jitter must be non-negative, got {self.jitter}")
        if self.sponsor is not None and self.sponsor not in self.spec.neighbors(
            self.proc
        ):
            raise SimulationError(
                f"sponsor {self.sponsor!r} is not a neighbor of {self.proc!r}"
            )
        if self.boot_patience < 0:
            raise SimulationError(
                f"boot patience must be non-negative, got {self.boot_patience}"
            )

    def build_estimator(self) -> Estimator:
        if self.estimator_factory is not None:
            return self.estimator_factory(self)
        return EfficientCSA(
            self.proc,
            self.spec,
            reliable=False,
            degraded_mode=True,
            suspicion=self.suspicion,
        )


@dataclass(frozen=True)
class NodeStats:
    """A consistent snapshot of one node's situation, taken on demand."""

    proc: ProcessorId
    running: bool
    rt: float
    lt: float
    #: bounds advanced to the snapshot instant (estimate_now)
    bound: ClockBound
    #: bounds exactly at the last local event (what Theorem 2.1 quantifies)
    event_bound: ClockBound
    events: int
    links: Dict[ProcessorId, LinkStats]
    suspected: Tuple[ProcessorId, ...]
    #: self-stabilization recoveries the estimator has performed
    recoveries: int = 0
    #: whether this node adopted a sponsor's bootstrap snapshot
    bootstrapped: bool = False

    @property
    def converged(self) -> bool:
        return self.bound.is_bounded


class Node:
    """One live processor: estimator + clock + transport endpoint."""

    def __init__(
        self,
        config: NodeConfig,
        transport: Transport,
        clock: Optional[ClockSource] = None,
        time_base: Optional[TimeBase] = None,
    ):
        self.config = config
        self.proc = config.proc
        self.transport = transport
        self.clock = clock if clock is not None else MonotonicClockSource()
        self.time_base = time_base if time_base is not None else TimeBase()
        self.estimator = config.build_estimator()
        self.peers: Tuple[ProcessorId, ...] = config.spec.neighbors(config.proc)
        self._rng = random.Random(config.seed)
        #: durable across stop/start (fail-stop with durable state)
        self._next_seq = 0
        #: (event, rt) pairs, in local emission order; harness merges these
        self.trace_log: List[Tuple[Event, float]] = []
        #: in-flight sends awaiting ack: seq -> (dest, eid, attempt, timer)
        self._pending: Dict[int, Tuple[ProcessorId, EventId, int, asyncio.TimerHandle]] = {}
        #: per-peer seqs already delivered to the estimator (at-most-once)
        self._seen: Dict[ProcessorId, Set[int]] = {p: set() for p in self.peers}
        self.stats: Dict[ProcessorId, LinkStats] = {p: LinkStats() for p in self.peers}
        self.peer_last_seen: Dict[ProcessorId, float] = {}
        #: estimator hook exceptions swallowed on the receive path
        self.estimator_errors = 0
        #: decode errors whose claimed sender is unknown or absent
        self.unattributed_errors = 0
        #: whether a sponsor's bootstrap snapshot has been adopted
        self.boot_adopted = False
        #: bootstrap snapshots shipped to joining neighbors
        self.boot_sent = 0
        #: snapshots that exceeded the frame cap (joiner falls back cold)
        self.boot_oversized = 0
        #: plain syncs dropped (unacked) while holding out for a boot
        self.boot_deferred = 0
        #: elapsed instant after which a fresh joiner stops waiting
        self._boot_deadline: Optional[float] = None
        #: per-peer negotiated wire codec; every link starts as JSON and
        #: upgrades (never downgrades mid-stream) once the peer proves
        #: binary-capable - by advertising it in a hello/join meta or by
        #: sending a binary frame itself
        self._peer_codec: Dict[ProcessorId, str] = {p: "json" for p in self.peers}
        #: per-peer frames awaiting the next coalesced datagram flush
        self._outbox: Dict[ProcessorId, List[bytes]] = {}
        self._gossip_task: Optional[asyncio.Task] = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Register with the transport and begin gossiping."""
        if self._running:
            return
        # anything in flight at the last stop is unknowable now: flush as
        # loss before new traffic so history watermarks stay conservative
        for seq in sorted(self._pending):
            dest, eid, _attempt, timer = self._pending.pop(seq)
            timer.cancel()
            self.stats[dest].losses_signaled += 1
            self._guarded(self.estimator.on_loss_detected, eid)
        self._running = True
        self.transport.register(self.proc, self._on_datagram)
        ensure = getattr(self.transport, "ensure_endpoint", None)
        if ensure is not None:
            await ensure(self.proc)
        for peer in self.peers:
            self._send_frame(
                peer,
                encode_frame(
                    hello_frame(self.proc, peer, codecs=self._advertised()),
                    self._codec_for(peer),
                ),
            )
        if self.config.sponsor is not None and getattr(self.estimator, "is_fresh", False):
            self._boot_deadline = self.time_base.elapsed() + self.config.boot_patience
        self._request_bootstrap()
        self._gossip_task = asyncio.get_running_loop().create_task(self._gossip_loop())

    async def stop(self) -> None:
        """Fail-stop: halt gossip and timers, drop off the transport.

        Estimator state, sequence numbers, and the trace log survive; a
        later :meth:`start` resumes from them.
        """
        self._running = False
        # unflushed frames die with the process: datagram semantics, and
        # the peers' loss timers already cover the gap
        self._outbox.clear()
        self.transport.unregister(self.proc)
        if self._gossip_task is not None:
            self._gossip_task.cancel()
            try:
                await self._gossip_task
            except asyncio.CancelledError:
                pass
            self._gossip_task = None
        for _dest, _eid, _attempt, timer in self._pending.values():
            timer.cancel()
        # pending entries are kept: the next start() flushes them as losses

    @property
    def running(self) -> bool:
        return self._running

    # -- clock reads -------------------------------------------------------------

    def _now(self) -> Tuple[float, float]:
        """One atomic (rt, lt) pair off the shared time base."""
        rt = self.time_base.elapsed()
        return rt, self.clock.lt_at(rt)

    def _next_point(self) -> Tuple[float, float]:
        """An (rt, lt) pair with lt strictly after the last local event.

        When two reads land inside clock resolution, the *real-time*
        reading is nudged forward and the local time recomputed through
        the clock mapping - so the recorded pair still lies exactly on
        this clock's trajectory and the execution stays in-spec (nudging
        lt alone would implicitly claim rate 1.0).
        """
        rt, lt = self._now()
        last = self.estimator.last_local_event
        if last is not None:
            nudge = _RT_NUDGE
            while lt <= last.lt:
                rt += nudge
                lt = self.clock.lt_at(rt)
                nudge *= 2
        return rt, lt

    # -- send path ---------------------------------------------------------------

    def _advertised(self) -> Tuple[str, ...]:
        """Codecs this node offers in hello/join meta."""
        return WIRE_CODECS if self.config.codec == "binary" else ("json",)

    def _codec_for(self, peer: ProcessorId) -> str:
        """The codec for the next frame to ``peer`` (negotiated, sticky)."""
        if self.config.codec == "binary" and self._peer_codec.get(peer) == "binary":
            return "binary"
        return "json"

    def _send_frame(self, peer: ProcessorId, data: bytes) -> None:
        """Queue one encoded frame for ``peer``, coalescing when possible.

        Toward binary-negotiated peers frames gather in a per-peer outbox
        and flush on the next loop turn as concatenated datagrams under
        ``MAX_BODY_BYTES`` - a gossip round's sync plus any acks ride one
        datagram.  JSON peers get the classic frame-per-datagram path:
        their decode loop may predate :func:`decode_frames`.
        """
        if self._codec_for(peer) != "binary":
            stats = self.stats.get(peer)
            if stats is not None:
                stats.datagrams += 1
            self.transport.send(self.proc, peer, data)
            return
        box = self._outbox.setdefault(peer, [])
        box.append(data)
        if len(box) == 1:
            asyncio.get_running_loop().call_soon(self._flush_outbox, peer)

    def _flush_outbox(self, peer: ProcessorId) -> None:
        frames = self._outbox.pop(peer, None)
        if not frames:
            return
        stats = self.stats.get(peer)
        datagram = bytearray()
        packed = 0
        for chunk in frames:
            if datagram and len(datagram) + len(chunk) > MAX_BODY_BYTES:
                self.transport.send(self.proc, peer, bytes(datagram))
                if stats is not None:
                    stats.datagrams += 1
                    stats.coalesced += packed - 1
                datagram = bytearray()
                packed = 0
            datagram.extend(chunk)
            packed += 1
        if datagram:
            self.transport.send(self.proc, peer, bytes(datagram))
            if stats is not None:
                stats.datagrams += 1
                stats.coalesced += packed - 1

    async def _gossip_loop(self) -> None:
        period = self.config.gossip_period
        while self._running:
            # re-ask the sponsor while still fresh: joins are idempotent and
            # UDP may lose them, so retrying until a boot lands is free
            self._request_bootstrap()
            if not self._awaiting_boot():
                for peer in self.peers:
                    if not self._running:
                        return
                    self._send_sync(peer, attempt=0)
            await asyncio.sleep(
                period * (1.0 + self._rng.uniform(0.0, self.config.jitter))
            )

    def _awaiting_boot(self) -> bool:
        """Whether this node is still holding out for its sponsor's boot.

        While true the node neither gossips nor accepts plain syncs - any
        local event would end freshness and forfeit the bootstrap.  The
        deadline bounds the wait: past it the node joins cold, building
        its view from ordinary gossip alone (slower, equally sound).
        """
        return (
            self._boot_deadline is not None
            and self.time_base.elapsed() < self._boot_deadline
            and getattr(self.estimator, "is_fresh", False)
        )

    def _request_bootstrap(self) -> None:
        """Ask the configured sponsor for a snapshot while still fresh."""
        sponsor = self.config.sponsor
        if sponsor is None or not getattr(self.estimator, "is_fresh", False):
            return
        self._send_frame(
            sponsor,
            encode_frame(
                join_frame(self.proc, sponsor, codecs=self._advertised()),
                self._codec_for(sponsor),
            ),
        )

    def _send_sync(self, dest: ProcessorId, *, attempt: int, boot: bool = False) -> None:
        """Emit one fresh sync frame to ``dest`` and arm its loss timer.

        With ``boot`` the frame also carries a bootstrap snapshot taken
        *after* the send event - the joiner's adopted view then equals
        the sponsor's causal past at the handshake send (Lemma 3.1), so
        handshake-receive plus snapshot is information-equivalent to a
        full replay.  An oversized snapshot degrades to a plain sync: the
        joiner simply bootstraps cold off ordinary gossip.
        """
        rt, lt = self._next_point()
        event = Event(EventId(self.proc, self._next_seq), lt, EventKind.SEND, dest=dest)
        try:
            payload = self.estimator.on_send(event)
        except Exception:
            # the seq was not consumed: the local event chain stays gapless
            self.estimator_errors += 1
            return
        self._next_seq += 1
        self.trace_log.append((event, rt))
        stats = self.stats[dest]
        stats.sent += 1
        if attempt > 0:
            stats.retransmissions += 1
        codec = self._codec_for(dest)
        frame_bytes: Optional[bytes] = None
        if boot:
            take = getattr(self.estimator, "bootstrap_snapshot", None)
            if take is not None:
                try:
                    frame_bytes = encode_frame(
                        sync_frame(event, payload, boot=take()), codec
                    )
                    self.boot_sent += 1
                except Exception:
                    self.boot_oversized += 1
                    frame_bytes = None
        if frame_bytes is None:
            frame_bytes = encode_frame(sync_frame(event, payload), codec)
        self._send_frame(dest, frame_bytes)
        timer = asyncio.get_running_loop().call_later(
            self.config.retransmit.timeout_for(attempt),
            self._on_ack_timeout,
            event.eid,
            dest,
            attempt,
        )
        self._pending[event.seq] = (dest, event.eid, attempt, timer)

    def _on_ack_timeout(self, eid: EventId, dest: ProcessorId, attempt: int) -> None:
        if self._pending.pop(eid.seq, None) is None:
            return  # acked in the meantime
        self.stats[dest].losses_signaled += 1
        self._guarded(self.estimator.on_loss_detected, eid)
        if self._running and attempt < self.config.retransmit.max_retries:
            # recovery is a *new* send event: history re-reports everything
            # still unconfirmed, so the fresh message supersedes the lost one
            self._send_sync(dest, attempt=attempt + 1)

    # -- receive path ------------------------------------------------------------

    def _on_datagram(self, data: bytes) -> None:
        # one datagram may carry several coalesced frames; decode_frames
        # degrades to exactly decode_frame for the single-frame case
        for result in decode_frames(data):
            if result.error is not None:
                self._on_decode_error(result.error)
                continue
            self._on_frame(result.frame, result.version)

    def _on_frame(self, frame: Frame, version: Optional[int]) -> None:
        if frame.src not in self._seen or frame.dst != self.proc:
            # not one of our links: count it where we can, never crash
            if frame.src in self.stats:
                self.stats[frame.src].rejected_frames += 1
            return
        self._learn_codec(frame, version)
        self.peer_last_seen[frame.src] = self.time_base.elapsed()
        if frame.type == "hello":
            return
        if frame.type == "join":
            self._on_join(frame)
            return
        if frame.type == "ack":
            self._on_ack(frame)
            return
        self._on_sync(frame)

    def _learn_codec(self, frame: Frame, version: Optional[int]) -> None:
        """Upgrade the peer's negotiated codec on positive evidence only.

        A binary frame from the peer, or a hello/join whose meta
        advertises ``"binary"``, proves the peer speaks v3; nothing ever
        downgrades an upgraded link (per-peer fallback happens by never
        upgrading, not by switching mid-stream).
        """
        src = frame.src
        if self._peer_codec.get(src) == "binary":
            return
        if version == WIRE_VERSION_BINARY:
            self._peer_codec[src] = "binary"
            return
        if frame.type in ("hello", "join"):
            codecs = frame.meta.get("codecs")
            if isinstance(codecs, (list, tuple)) and "binary" in codecs:
                self._peer_codec[src] = "binary"

    def _on_join(self, frame: Frame) -> None:
        """Sponsor a joining neighbor: answer with a boot-carrying sync.

        Joins may repeat (the joiner retries while fresh, UDP duplicates
        frames); every answer is a fresh send event, and the joiner's
        :meth:`~repro.core.csa.EfficientCSA.bootstrap_from` refuses all
        but the first adopted snapshot, so repetition stays harmless.
        """
        self.stats[frame.src].join_requests += 1
        self._send_sync(frame.src, attempt=0, boot=True)

    def _on_decode_error(self, error) -> None:
        src = error.src
        if src is not None and src in self.stats:
            self.stats[src].decode_errors += 1
            report = getattr(self.estimator, "report_anomaly", None)
            if report is not None:
                _rt, lt = self._now()
                last = self.estimator.last_local_event
                if last is not None and lt < last.lt:
                    lt = last.lt
                self._guarded(report, src, "malformed", lt, f"wire: {error.code}: {error.detail}")
        else:
            self.unattributed_errors += 1

    def _on_ack(self, frame: Frame) -> None:
        entry = self._pending.pop(frame.seq, None)
        if entry is None:
            return  # late ack after timeout: the loss signal stands (sound)
        dest, eid, _attempt, timer = entry
        if dest != frame.src:
            # an ack for this seq from the wrong peer: put the entry back
            self._pending[frame.seq] = entry
            self.stats[frame.src].rejected_frames += 1
            return
        timer.cancel()
        self.stats[dest].acked += 1
        self.stats[dest].last_acked_seq = max(self.stats[dest].last_acked_seq, frame.seq)
        self._guarded(self.estimator.on_delivery_confirmed, eid)

    def _on_sync(self, frame: Frame) -> None:
        stats = self.stats[frame.src]
        stats.last_seen_seq = max(stats.last_seen_seq, frame.seq)
        if frame.seq in self._seen[frame.src]:
            # duplicate (echo, retransmit race): discard before the
            # estimator, but re-ack so the sender can settle its token
            stats.duplicates += 1
            self._ack(frame.src, frame.seq)
            return
        if frame.boot is not None:
            self._adopt_boot(frame)
        elif self._awaiting_boot():
            # a plain sync would end freshness and forfeit the bootstrap;
            # drop it unacked - the sender's loss timer covers the gap
            self.boot_deferred += 1
            return
        rt, lt = self._next_point()
        event = Event(
            EventId(self.proc, self._next_seq),
            lt,
            EventKind.RECEIVE,
            send_eid=EventId(frame.src, frame.seq),
        )
        try:
            self.estimator.on_receive(event, frame.payload)
        except Exception:
            self.estimator_errors += 1
            stats.rejected_frames += 1
            return
        self._next_seq += 1
        self._seen[frame.src].add(frame.seq)
        stats.received += 1
        self.trace_log.append((event, rt))
        self._ack(frame.src, frame.seq)

    def _adopt_boot(self, frame: Frame) -> None:
        """Adopt a sponsor snapshot riding a sync frame, at most once.

        The snapshot must name its carrier as sponsor (attribution), and
        :meth:`bootstrap_from` refuses non-fresh estimators - so a
        retransmitted or rogue boot can never overwrite live state; it
        just degrades to an ordinary sync.
        """
        adopt = getattr(self.estimator, "bootstrap_from", None)
        if adopt is None:
            return
        if frame.boot.sponsor != frame.src:
            self.stats[frame.src].rejected_frames += 1
            return
        try:
            if adopt(frame.boot):
                self.boot_adopted = True
        except Exception:
            # a structurally invalid snapshot: suspicion-worthy input
            self.estimator_errors += 1
            self.stats[frame.src].rejected_frames += 1

    def _ack(self, peer: ProcessorId, seq: int) -> None:
        self._send_frame(
            peer, encode_frame(ack_frame(self.proc, peer, seq), self._codec_for(peer))
        )

    # -- introspection -----------------------------------------------------------

    def estimate_now(self) -> ClockBound:
        """Current source-time bounds at this node's clock reading."""
        _rt, bound = self.estimate_at_now()
        return bound

    def estimate_at_now(self) -> Tuple[float, ClockBound]:
        """One atomic (rt, bound) pair: the bound holds *at* that reading.

        Soundness comparisons need the truth instant and the evaluation
        instant to be the same clock read - re-reading the time base after
        computing the bound would let the scheduling gap masquerade as an
        estimator error.
        """
        rt, lt = self._now()
        last = self.estimator.last_local_event
        if last is not None and lt < last.lt:
            lt = last.lt  # clock resolution race with an in-flight event
        return rt, self.estimator.estimate_now(lt)

    # backward-compatible alias (pre-serving-tier name)
    _estimate_at_now = estimate_at_now

    def snapshot(self) -> NodeStats:
        rt, lt = self._now()
        suspicion = getattr(self.estimator, "suspicion", None)
        suspected = tuple(suspicion.suspected()) if suspicion is not None else ()
        return NodeStats(
            proc=self.proc,
            running=self._running,
            rt=rt,
            lt=lt,
            bound=self.estimate_now(),
            event_bound=self.estimator.estimate(),
            events=len(self.trace_log),
            links={peer: LinkStats(**vars(s)) for peer, s in self.stats.items()},
            suspected=suspected,
            recoveries=getattr(self.estimator, "recoveries", 0),
            bootstrapped=self.boot_adopted,
        )

    def _guarded(self, hook, *args) -> None:
        """Call an estimator hook; a runtime node must survive its errors."""
        try:
            hook(*args)
        except Exception:
            self.estimator_errors += 1
