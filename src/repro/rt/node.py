"""The asyncio node daemon: one live processor running an estimator.

A :class:`Node` is the runtime counterpart of one simulated processor.
It owns an :class:`~repro.core.csa_base.Estimator` (by default a
hardened, unreliable-mode :class:`~repro.core.csa.EfficientCSA`), reads
its hardware clock through a :class:`~repro.rt.clock.ClockSource`, and
drives the estimator's passive event hooks from real traffic on a
:class:`~repro.rt.transport.Transport`:

* a gossip loop emits one ``sync`` frame per neighbor every
  ``gossip_period`` seconds (jittered), calling ``on_send`` and wiring
  the returned :class:`~repro.core.history.HistoryPayload` onto the wire;
* received ``sync`` frames become receive events (``on_receive``) and are
  acknowledged; duplicates are discarded *before* the estimator but
  re-acked, giving the at-most-once delivery the event model assumes;
* ``ack`` frames confirm delivery (``on_delivery_confirmed``), cancelling
  the per-message loss timer; a timer that fires first signals
  ``on_loss_detected`` and retransmits as a *fresh* send while the
  :class:`~repro.sim.faults.RetransmitPolicy` allows - the same Sec 3.3
  recovery loop PR 1 built for the simulator, now against real timers;
* undecodable or malformed bytes never reach the estimator: they are
  counted, and when the claimed sender is a known neighbor the anomaly is
  fed to :meth:`~repro.core.csa.EfficientCSA.report_anomaly`, so
  wire-level garbage lands in the same suspicion ledger as sim-path
  tampering.

Every local event is paired ``(rt, lt)`` through one shared
:class:`~repro.rt.clock.TimeBase` reading, and appended to the node's
local trace log; the cluster harness merges these logs into an
:class:`~repro.sim.trace.ExecutionTrace` that the oracles and the
serializer consume exactly as if the simulator had produced it.

Crash/restart follows PR 1's fail-stop-with-durable-state semantics:
:meth:`Node.stop` halts timers and unregisters from the transport;
:meth:`Node.start` re-registers, first flushing any transmissions that
were in flight at the crash as losses (sound - loss signals only discard
information) and resuming sequence numbers where they left off.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.csa import EfficientCSA
from ..core.csa_base import Estimator, SuspicionPolicy
from ..core.errors import SimulationError
from ..core.events import Event, EventId, EventKind, ProcessorId
from ..core.intervals import ClockBound
from ..core.specs import SystemSpec
from ..sim.faults import RetransmitPolicy
from .clock import ClockSource, MonotonicClockSource, TimeBase
from .transport import Transport
from .wire import Frame, ack_frame, decode_frame, encode_frame, hello_frame, sync_frame

__all__ = [
    "LinkStats",
    "NodeConfig",
    "NodeStats",
    "Node",
]

#: smallest forward nudge of the shared real-time reading used to keep a
#: node's local-time stamps strictly increasing (see Node._next_point)
_RT_NUDGE = 1e-7


@dataclass
class LinkStats:
    """Per-neighbor traffic counters, updated live."""

    sent: int = 0
    received: int = 0
    acked: int = 0
    retransmissions: int = 0
    losses_signaled: int = 0
    duplicates: int = 0
    decode_errors: int = 0
    rejected_frames: int = 0


@dataclass(frozen=True)
class NodeConfig:
    """Static configuration of one runtime node."""

    proc: ProcessorId
    spec: SystemSpec
    gossip_period: float = 0.5
    #: fraction of the period added as uniform jitter (desynchronizes nodes)
    jitter: float = 0.1
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)
    #: suspicion policy for the default estimator; None -> unhardened
    suspicion: Optional[SuspicionPolicy] = field(default_factory=SuspicionPolicy)
    seed: int = 0
    #: build a custom estimator; default is hardened unreliable EfficientCSA
    estimator_factory: Optional[Callable[["NodeConfig"], Estimator]] = None

    def __post_init__(self):
        if self.gossip_period <= 0:
            raise SimulationError(
                f"gossip period must be positive, got {self.gossip_period}"
            )
        if self.jitter < 0:
            raise SimulationError(f"jitter must be non-negative, got {self.jitter}")

    def build_estimator(self) -> Estimator:
        if self.estimator_factory is not None:
            return self.estimator_factory(self)
        return EfficientCSA(
            self.proc,
            self.spec,
            reliable=False,
            degraded_mode=True,
            suspicion=self.suspicion,
        )


@dataclass(frozen=True)
class NodeStats:
    """A consistent snapshot of one node's situation, taken on demand."""

    proc: ProcessorId
    running: bool
    rt: float
    lt: float
    #: bounds advanced to the snapshot instant (estimate_now)
    bound: ClockBound
    #: bounds exactly at the last local event (what Theorem 2.1 quantifies)
    event_bound: ClockBound
    events: int
    links: Dict[ProcessorId, LinkStats]
    suspected: Tuple[ProcessorId, ...]

    @property
    def converged(self) -> bool:
        return self.bound.is_bounded


class Node:
    """One live processor: estimator + clock + transport endpoint."""

    def __init__(
        self,
        config: NodeConfig,
        transport: Transport,
        clock: Optional[ClockSource] = None,
        time_base: Optional[TimeBase] = None,
    ):
        self.config = config
        self.proc = config.proc
        self.transport = transport
        self.clock = clock if clock is not None else MonotonicClockSource()
        self.time_base = time_base if time_base is not None else TimeBase()
        self.estimator = config.build_estimator()
        self.peers: Tuple[ProcessorId, ...] = config.spec.neighbors(config.proc)
        self._rng = random.Random(config.seed)
        #: durable across stop/start (fail-stop with durable state)
        self._next_seq = 0
        #: (event, rt) pairs, in local emission order; harness merges these
        self.trace_log: List[Tuple[Event, float]] = []
        #: in-flight sends awaiting ack: seq -> (dest, eid, attempt, timer)
        self._pending: Dict[int, Tuple[ProcessorId, EventId, int, asyncio.TimerHandle]] = {}
        #: per-peer seqs already delivered to the estimator (at-most-once)
        self._seen: Dict[ProcessorId, Set[int]] = {p: set() for p in self.peers}
        self.stats: Dict[ProcessorId, LinkStats] = {p: LinkStats() for p in self.peers}
        self.peer_last_seen: Dict[ProcessorId, float] = {}
        #: estimator hook exceptions swallowed on the receive path
        self.estimator_errors = 0
        #: decode errors whose claimed sender is unknown or absent
        self.unattributed_errors = 0
        self._gossip_task: Optional[asyncio.Task] = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Register with the transport and begin gossiping."""
        if self._running:
            return
        # anything in flight at the last stop is unknowable now: flush as
        # loss before new traffic so history watermarks stay conservative
        for seq in sorted(self._pending):
            dest, eid, _attempt, timer = self._pending.pop(seq)
            timer.cancel()
            self.stats[dest].losses_signaled += 1
            self._guarded(self.estimator.on_loss_detected, eid)
        self._running = True
        self.transport.register(self.proc, self._on_datagram)
        ensure = getattr(self.transport, "ensure_endpoint", None)
        if ensure is not None:
            await ensure(self.proc)
        for peer in self.peers:
            self.transport.send(
                self.proc, peer, encode_frame(hello_frame(self.proc, peer))
            )
        self._gossip_task = asyncio.get_running_loop().create_task(self._gossip_loop())

    async def stop(self) -> None:
        """Fail-stop: halt gossip and timers, drop off the transport.

        Estimator state, sequence numbers, and the trace log survive; a
        later :meth:`start` resumes from them.
        """
        self._running = False
        self.transport.unregister(self.proc)
        if self._gossip_task is not None:
            self._gossip_task.cancel()
            try:
                await self._gossip_task
            except asyncio.CancelledError:
                pass
            self._gossip_task = None
        for _dest, _eid, _attempt, timer in self._pending.values():
            timer.cancel()
        # pending entries are kept: the next start() flushes them as losses

    @property
    def running(self) -> bool:
        return self._running

    # -- clock reads -------------------------------------------------------------

    def _now(self) -> Tuple[float, float]:
        """One atomic (rt, lt) pair off the shared time base."""
        rt = self.time_base.elapsed()
        return rt, self.clock.lt_at(rt)

    def _next_point(self) -> Tuple[float, float]:
        """An (rt, lt) pair with lt strictly after the last local event.

        When two reads land inside clock resolution, the *real-time*
        reading is nudged forward and the local time recomputed through
        the clock mapping - so the recorded pair still lies exactly on
        this clock's trajectory and the execution stays in-spec (nudging
        lt alone would implicitly claim rate 1.0).
        """
        rt, lt = self._now()
        last = self.estimator.last_local_event
        if last is not None:
            nudge = _RT_NUDGE
            while lt <= last.lt:
                rt += nudge
                lt = self.clock.lt_at(rt)
                nudge *= 2
        return rt, lt

    # -- send path ---------------------------------------------------------------

    async def _gossip_loop(self) -> None:
        period = self.config.gossip_period
        while self._running:
            for peer in self.peers:
                if not self._running:
                    return
                self._send_sync(peer, attempt=0)
            await asyncio.sleep(
                period * (1.0 + self._rng.uniform(0.0, self.config.jitter))
            )

    def _send_sync(self, dest: ProcessorId, *, attempt: int) -> None:
        """Emit one fresh sync frame to ``dest`` and arm its loss timer."""
        rt, lt = self._next_point()
        event = Event(EventId(self.proc, self._next_seq), lt, EventKind.SEND, dest=dest)
        try:
            payload = self.estimator.on_send(event)
        except Exception:
            # the seq was not consumed: the local event chain stays gapless
            self.estimator_errors += 1
            return
        self._next_seq += 1
        self.trace_log.append((event, rt))
        stats = self.stats[dest]
        stats.sent += 1
        if attempt > 0:
            stats.retransmissions += 1
        self.transport.send(self.proc, dest, encode_frame(sync_frame(event, payload)))
        timer = asyncio.get_running_loop().call_later(
            self.config.retransmit.timeout_for(attempt),
            self._on_ack_timeout,
            event.eid,
            dest,
            attempt,
        )
        self._pending[event.seq] = (dest, event.eid, attempt, timer)

    def _on_ack_timeout(self, eid: EventId, dest: ProcessorId, attempt: int) -> None:
        if self._pending.pop(eid.seq, None) is None:
            return  # acked in the meantime
        self.stats[dest].losses_signaled += 1
        self._guarded(self.estimator.on_loss_detected, eid)
        if self._running and attempt < self.config.retransmit.max_retries:
            # recovery is a *new* send event: history re-reports everything
            # still unconfirmed, so the fresh message supersedes the lost one
            self._send_sync(dest, attempt=attempt + 1)

    # -- receive path ------------------------------------------------------------

    def _on_datagram(self, data: bytes) -> None:
        result = decode_frame(data)
        if result.error is not None:
            self._on_decode_error(result.error)
            return
        frame = result.frame
        if frame.src not in self._seen or frame.dst != self.proc:
            # not one of our links: count it where we can, never crash
            if frame.src in self.stats:
                self.stats[frame.src].rejected_frames += 1
            return
        self.peer_last_seen[frame.src] = self.time_base.elapsed()
        if frame.type == "hello":
            return
        if frame.type == "ack":
            self._on_ack(frame)
            return
        self._on_sync(frame)

    def _on_decode_error(self, error) -> None:
        src = error.src
        if src is not None and src in self.stats:
            self.stats[src].decode_errors += 1
            report = getattr(self.estimator, "report_anomaly", None)
            if report is not None:
                _rt, lt = self._now()
                last = self.estimator.last_local_event
                if last is not None and lt < last.lt:
                    lt = last.lt
                self._guarded(report, src, "malformed", lt, f"wire: {error.code}: {error.detail}")
        else:
            self.unattributed_errors += 1

    def _on_ack(self, frame: Frame) -> None:
        entry = self._pending.pop(frame.seq, None)
        if entry is None:
            return  # late ack after timeout: the loss signal stands (sound)
        dest, eid, _attempt, timer = entry
        if dest != frame.src:
            # an ack for this seq from the wrong peer: put the entry back
            self._pending[frame.seq] = entry
            self.stats[frame.src].rejected_frames += 1
            return
        timer.cancel()
        self.stats[dest].acked += 1
        self._guarded(self.estimator.on_delivery_confirmed, eid)

    def _on_sync(self, frame: Frame) -> None:
        stats = self.stats[frame.src]
        if frame.seq in self._seen[frame.src]:
            # duplicate (echo, retransmit race): discard before the
            # estimator, but re-ack so the sender can settle its token
            stats.duplicates += 1
            self._ack(frame.src, frame.seq)
            return
        rt, lt = self._next_point()
        event = Event(
            EventId(self.proc, self._next_seq),
            lt,
            EventKind.RECEIVE,
            send_eid=EventId(frame.src, frame.seq),
        )
        try:
            self.estimator.on_receive(event, frame.payload)
        except Exception:
            self.estimator_errors += 1
            stats.rejected_frames += 1
            return
        self._next_seq += 1
        self._seen[frame.src].add(frame.seq)
        stats.received += 1
        self.trace_log.append((event, rt))
        self._ack(frame.src, frame.seq)

    def _ack(self, peer: ProcessorId, seq: int) -> None:
        self.transport.send(self.proc, peer, encode_frame(ack_frame(self.proc, peer, seq)))

    # -- introspection -----------------------------------------------------------

    def estimate_now(self) -> ClockBound:
        """Current source-time bounds at this node's clock reading."""
        _rt, bound = self._estimate_at_now()
        return bound

    def _estimate_at_now(self) -> Tuple[float, ClockBound]:
        """One atomic (rt, bound) pair: the bound holds *at* that reading.

        Soundness comparisons need the truth instant and the evaluation
        instant to be the same clock read - re-reading the time base after
        computing the bound would let the scheduling gap masquerade as an
        estimator error.
        """
        rt, lt = self._now()
        last = self.estimator.last_local_event
        if last is not None and lt < last.lt:
            lt = last.lt  # clock resolution race with an in-flight event
        return rt, self.estimator.estimate_now(lt)

    def snapshot(self) -> NodeStats:
        rt, lt = self._now()
        suspicion = getattr(self.estimator, "suspicion", None)
        suspected = tuple(suspicion.suspected()) if suspicion is not None else ()
        return NodeStats(
            proc=self.proc,
            running=self._running,
            rt=rt,
            lt=lt,
            bound=self.estimate_now(),
            event_bound=self.estimator.estimate(),
            events=len(self.trace_log),
            links={peer: LinkStats(**vars(s)) for peer, s in self.stats.items()},
            suspected=suspected,
        )

    def _guarded(self, hook, *args) -> None:
        """Call an estimator hook; a runtime node must survive its errors."""
        try:
            hook(*args)
        except Exception:
            self.estimator_errors += 1
