"""Async load generator for the serving tier: swarm, measure, archive.

:func:`run_serve_load` stands up a :class:`~repro.rt.cluster.LiveCluster`,
attaches a :class:`~repro.rt.serve.ServeNode` to each designated server
processor (as a crash companion: the serving endpoint dies and recovers
with its host node), and unleashes a swarm of
:class:`~repro.rt.client.ServeClient` probers with rotated failover
lists.  Everything - gossip, probes, replies, sheds - rides one
transport, so a :class:`~repro.sim.faults.FaultPlan` and crash schedule
stress the serving path exactly like the protocol path.

The result document is the cluster's :mod:`repro.sim.serialize` v2
document (it loads through :func:`~repro.sim.serialize.load_run`
unchanged) with one extra ``serving`` section carrying the tier's
scorecard: offered/served queries per second, shed rate by reason,
accepted-bound soundness counts, the p99 client error bound, failover
events and per-client re-convergence times after the first crash.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from ..core.events import ProcessorId
from .client import AcceptedSample, ClientConfig, ServeClient
from .clock import ClockSource
from .cluster import ClusterConfig, LiveCluster, RtRunResult
from .serve import ServeConfig, ServeNode, serve_endpoint

__all__ = [
    "ServeLoadConfig",
    "ServeLoadResult",
    "percentile",
    "run_serve_load",
    "run_serve_load_sync",
]


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (``q`` in [0, 100]).

    Empty input yields the documented ``None`` sentinel - never an
    exception - so scorecard math stays total even when a processor or
    client produced zero samples (crashed before its first estimate,
    shed on every probe, filtered down to nothing).  Consumers must
    treat ``None`` as "no evidence", not as zero.
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


#: backwards-compatible alias for the pre-public name
_percentile = percentile


@dataclass(frozen=True)
class ServeLoadConfig:
    """One load-test scenario: a cluster, its servers, and a swarm."""

    cluster: ClusterConfig
    #: processors that run serving endpoints; default: every processor.
    #: Index 0 is every client's primary (modulo rotation).
    servers: Tuple[ProcessorId, ...] = ()
    serve: ServeConfig = field(default_factory=ServeConfig)
    #: swarm size; clients are named ``c0..cN-1``
    clients: int = 4
    #: template for every client; ``name``/``servers``/``seed`` are
    #: overridden per client, and failover lists are rotated per client
    #: so load spreads across the tier
    client_template: ClientConfig = field(
        default_factory=lambda: ClientConfig(name="c", servers=("unset",))
    )
    #: per-client hardware clocks, keyed by client name
    client_clocks: Dict[str, ClockSource] = field(default_factory=dict)
    #: seconds of cluster gossip before the swarm starts probing
    warmup: float = 0.5

    def __post_init__(self):
        if self.clients < 1:
            raise SimulationError(f"need at least one client, got {self.clients}")
        if self.warmup < 0:
            raise SimulationError(f"warmup must be non-negative, got {self.warmup}")
        for proc in self.servers:
            if proc not in self.cluster.processors:
                raise SimulationError(f"server {proc!r} is not a cluster processor")
        if len(set(self.servers)) != len(self.servers):
            raise SimulationError("duplicate server processors")
        for name in self.client_clocks:
            if name not in self.client_names:
                raise SimulationError(f"clock configured for unknown client {name!r}")

    @property
    def server_procs(self) -> Tuple[ProcessorId, ...]:
        return self.servers if self.servers else tuple(self.cluster.processors)

    @property
    def client_names(self) -> Tuple[str, ...]:
        return tuple(f"c{i}" for i in range(self.clients))

    def client_config(self, index: int) -> ClientConfig:
        """The concrete config of client ``index``: rotated failover list."""
        endpoints = [serve_endpoint(proc) for proc in self.server_procs]
        rotation = index % len(endpoints)
        rotated = tuple(endpoints[rotation:] + endpoints[:rotation])
        return replace(
            self.client_template,
            name=self.client_names[index],
            servers=rotated,
            seed=self.client_template.seed + index,
        )


@dataclass
class ServeLoadResult:
    """A finished load run: the cluster's evidence plus the tier's."""

    config: ServeLoadConfig
    cluster: RtRunResult
    servers: Dict[ProcessorId, ServeNode]
    clients: List[ServeClient]
    #: total run time on the shared time base
    elapsed: float
    aborted: bool = False

    # -- swarm-level metrics -----------------------------------------------------

    @property
    def accepted_samples(self) -> List[AcceptedSample]:
        return [sample for client in self.clients for sample in client.samples]

    @property
    def unsound_accepted(self) -> List[AcceptedSample]:
        return [s for s in self.accepted_samples if not s.sound]

    def offered_qps(self) -> float:
        probes = sum(client.stats.probes for client in self.clients)
        return probes / self.elapsed if self.elapsed > 0 else 0.0

    def served_qps(self) -> float:
        replies = sum(node.stats.replies for node in self.servers.values())
        return replies / self.elapsed if self.elapsed > 0 else 0.0

    def shed_rate(self) -> float:
        """Fraction of well-formed probes the tier answered with a shed."""
        probes = sum(node.stats.probes for node in self.servers.values())
        shed = sum(node.stats.shed_total for node in self.servers.values())
        return shed / probes if probes else 0.0

    def p99_error_bound(self) -> Optional[float]:
        """99th-percentile worst-case error over every accepted bound.

        ``None`` (the :func:`percentile` sentinel) when no client ever
        got a bound accepted - e.g. every probe shed or every server
        crashed before answering.
        """
        return percentile([s.error_bound for s in self.accepted_samples], 99.0)

    def failover_events(self) -> List[Tuple[float, str, ProcessorId, ProcessorId]]:
        events = [
            (rt, client.name, src, dst)
            for client in self.clients
            for rt, src, dst in client.failover_events
        ]
        events.sort()
        return events

    def reconvergence_times(self) -> Dict[str, float]:
        """Per client: crash -> first accepted bound afterwards (seconds).

        Measured from the first scheduled crash to each affected
        client's next accepted reply (from any server) - the outage a
        swarm member actually experienced, failover included.  ``inf``
        when a client never recovered; empty without a crash schedule.
        """
        if not self.config.cluster.crashes:
            return {}
        crash_at = min(crash.stop_at for crash in self.config.cluster.crashes)
        times: Dict[str, float] = {}
        for client in self.clients:
            after = [s.rt for s in client.samples if s.rt >= crash_at]
            times[client.name] = min(after) - crash_at if after else float("inf")
        return times

    def to_document(self) -> Dict:
        """The cluster's serialize-v2 document plus a ``serving`` section."""
        document = self.cluster.to_document()
        if self.aborted:
            document["partial"] = True
        reconv = self.reconvergence_times()
        document["serving"] = {
            "elapsed": self.elapsed,
            "clients": len(self.clients),
            "offered_qps": self.offered_qps(),
            "served_qps": self.served_qps(),
            "shed_rate": self.shed_rate(),
            "p99_error_bound": self.p99_error_bound(),
            "accepted": len(self.accepted_samples),
            "unsound_accepted": len(self.unsound_accepted),
            "failovers": [
                {"rt": rt, "client": client, "from": src, "to": dst}
                for rt, client, src, dst in self.failover_events()
            ],
            "reconvergence": {
                name: (value if math.isfinite(value) else None)
                for name, value in reconv.items()
            },
            "server_stats": {
                proc: node.stats.to_dict() for proc, node in sorted(self.servers.items())
            },
            "client_stats": {
                client.name: client.stats.to_dict() for client in self.clients
            },
        }
        return document


async def _wait_or_abort(delay: float, abort: Optional[asyncio.Event]) -> bool:
    """Sleep ``delay`` seconds; True if ``abort`` fired first."""
    if delay <= 0:
        return bool(abort is not None and abort.is_set())
    if abort is None:
        await asyncio.sleep(delay)
        return False
    try:
        await asyncio.wait_for(abort.wait(), timeout=delay)
        return True
    except asyncio.TimeoutError:
        return False


async def run_serve_load(
    config: ServeLoadConfig, *, abort: Optional[asyncio.Event] = None
) -> ServeLoadResult:
    """Run one serving-tier load test to completion (or abort).

    ``abort`` ends the run at the next period edge with whatever
    evidence exists; the document is then marked ``"partial": true``.
    """
    client_names = config.client_names
    extra_procs = tuple(serve_endpoint(p) for p in config.server_procs) + client_names
    extra_links = tuple(
        (name, serve_endpoint(proc))
        for name in client_names
        for proc in config.server_procs
    )
    live = LiveCluster(config.cluster, extra_procs=extra_procs, extra_links=extra_links)
    servers: Dict[ProcessorId, ServeNode] = {}
    for proc in config.server_procs:
        node = ServeNode(live.by_name[proc], live.transport, config.serve)
        servers[proc] = node
        live.attach_companion(proc, node)
    clients = [
        ServeClient(
            config.client_config(index),
            live.transport,
            live.time_base,
            clock=config.client_clocks.get(client_names[index]),
        )
        for index in range(config.clients)
    ]
    aborted = False
    try:
        await live.start()
        aborted = await _wait_or_abort(config.warmup, abort)
        if not aborted:
            for client in clients:
                await client.start()
            aborted = await live.run_sampling(abort)
    finally:
        for client in clients:
            await client.stop()
        # let in-flight replies drain before the books close
        await asyncio.sleep(0)
        elapsed = live.time_base.elapsed()
        await live.finish()
    return ServeLoadResult(
        config=config,
        cluster=live.result(aborted=aborted),
        servers=servers,
        clients=clients,
        elapsed=elapsed,
        aborted=aborted,
    )


def run_serve_load_sync(config: ServeLoadConfig) -> ServeLoadResult:
    """Blocking wrapper: run the load test on a fresh event loop."""
    return asyncio.run(run_serve_load(config))
