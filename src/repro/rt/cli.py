"""``repro-rt``: launch a live cluster from the command line.

Stands up an N-node cluster (loopback by default, ``--transport udp``
for real sockets on 127.0.0.1), runs it for ``--duration`` wall seconds,
prints per-node convergence, and optionally archives the run as a
:mod:`repro.sim.serialize` v2 document (``--out``) that the analysis CLI
and :func:`~repro.sim.serialize.load_run` consume like any simulated run.

``--require-converged`` makes the exit status a health check: non-zero
unless every node ends with finite two-sided bounds and every sample is
sound - the contract the CI runtime-smoke job enforces.

A live run must die cleanly: SIGINT (Ctrl-C) or ``--timeout`` expiry
aborts at the next period edge, still archives whatever evidence exists
(the document is marked ``"partial": true``), and exits non-zero -
never a traceback, never a hang.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Awaitable, Callable, List, Optional, Tuple, TypeVar

from ..core.events import ProcessorId
from ..sim.clock import PiecewiseDriftingClock
from .clock import ModelClockSource, SkewedClockSource
from .cluster import ClusterConfig, CrashSchedule, dump_rt_run, run_cluster

__all__ = ["main", "build_parser", "shape_links", "run_abortable"]

T = TypeVar("T")

#: exit status of a run cut short by SIGINT (the shell convention) or timeout
EXIT_INTERRUPTED = 130
EXIT_TIMEOUT = 124  # matches coreutils timeout(1)


def run_abortable(
    runner: Callable[[asyncio.Event], Awaitable[T]],
    timeout: Optional[float] = None,
) -> Tuple[T, Optional[str]]:
    """Run ``runner(abort)`` on a fresh loop with clean-death wiring.

    SIGINT and ``timeout`` expiry both set the abort event instead of
    tearing the loop down, so the runner winds down cooperatively and
    still returns its (partial) result.  Returns ``(result, why)`` with
    ``why`` in ``(None, "interrupt", "timeout")``.
    """
    why: List[Optional[str]] = [None]

    async def drive() -> T:
        abort = asyncio.Event()
        loop = asyncio.get_running_loop()

        def on_sigint() -> None:
            if why[0] is None:
                why[0] = "interrupt"
            abort.set()

        try:
            loop.add_signal_handler(signal.SIGINT, on_sigint)
            installed = True
        except (NotImplementedError, RuntimeError):  # non-main thread / platform
            installed = False

        async def watchdog() -> None:
            await asyncio.sleep(timeout)
            if why[0] is None:
                why[0] = "timeout"
            abort.set()

        guard = loop.create_task(watchdog()) if timeout is not None else None
        try:
            return await runner(abort)
        finally:
            if guard is not None:
                guard.cancel()
                try:
                    await guard
                except asyncio.CancelledError:
                    pass
            if installed:
                loop.remove_signal_handler(signal.SIGINT)

    return asyncio.run(drive()), why[0]


def abort_exit_code(why: Optional[str]) -> int:
    return EXIT_INTERRUPTED if why == "interrupt" else EXIT_TIMEOUT


def shape_links(
    names: List[ProcessorId], shape: str
) -> List[Tuple[ProcessorId, ProcessorId]]:
    """The link set of a named topology over ``names``."""
    n = len(names)
    if shape == "line":
        return [(names[i], names[i + 1]) for i in range(n - 1)]
    if shape == "ring":
        links = [(names[i], names[i + 1]) for i in range(n - 1)]
        if n > 2:
            links.append((names[-1], names[0]))
        return links
    if shape == "star":
        return [(names[0], names[i]) for i in range(1, n)]
    if shape == "full":
        return [(names[i], names[j]) for i in range(n) for j in range(i + 1, n)]
    if shape == "tree":
        # complete binary tree rooted at names[0]: node i hangs off (i-1)//2
        return [(names[(i - 1) // 2], names[i]) for i in range(1, n)]
    raise ValueError(f"unknown shape {shape!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rt",
        description="Run a live EfficientCSA cluster over loopback or UDP.",
    )
    parser.add_argument("--nodes", type=int, default=3, help="cluster size (default 3)")
    parser.add_argument(
        "--shape",
        choices=("line", "ring", "star", "full", "tree"),
        default="line",
        help="topology over n0..n{N-1}; n0 is the source/root (default line)",
    )
    parser.add_argument(
        "--transport",
        choices=("loopback", "udp"),
        default="loopback",
        help="in-process loopback or real UDP sockets on 127.0.0.1",
    )
    parser.add_argument("--duration", type=float, default=3.0, help="wall seconds to run")
    parser.add_argument(
        "--period", type=float, default=0.25, help="gossip period in seconds"
    )
    parser.add_argument(
        "--sample-period", type=float, default=0.25, help="estimate sampling period"
    )
    parser.add_argument(
        "--skew-ppm",
        type=float,
        default=0.0,
        help="give node i a fixed clock skew of i*this many ppm",
    )
    parser.add_argument(
        "--drifting",
        action="store_true",
        help="give non-source nodes seeded piecewise-drifting clocks instead",
    )
    parser.add_argument(
        "--drift-ppm",
        type=float,
        default=200.0,
        help="advertised drift band for --drifting clocks (default 200)",
    )
    parser.add_argument(
        "--crash",
        metavar="PROC:STOP[:RESTART]",
        action="append",
        default=[],
        help="fail-stop PROC at STOP elapsed seconds (restart at RESTART)",
    )
    parser.add_argument("--seed", type=int, default=0, help="seed for jitter and clocks")
    parser.add_argument(
        "--codec",
        choices=("binary", "json"),
        default="binary",
        help="default wire codec for every node (default binary)",
    )
    parser.add_argument(
        "--json-node",
        metavar="PROC",
        action="append",
        default=[],
        help="pin PROC to the v2 JSON codec (mixed-codec interop testing)",
    )
    parser.add_argument("--out", help="archive the run as a serialize-v2 JSON document")
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="abort cleanly after this many wall seconds (partial archive, exit 124)",
    )
    parser.add_argument(
        "--require-converged",
        action="store_true",
        help="exit non-zero unless all nodes end bounded and all samples sound",
    )
    return parser


def _parse_crash(text: str) -> CrashSchedule:
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"crash spec {text!r} is not PROC:STOP[:RESTART]")
    restart = float(parts[2]) if len(parts) == 3 else None
    return CrashSchedule(proc=parts[0], stop_at=float(parts[1]), restart_at=restart)


def _clocks(args, names: List[ProcessorId]):
    clocks = {}
    for index, name in enumerate(names):
        if index == 0:
            continue  # the source stays monotonic (it defines real time)
        if args.drifting:
            band = args.drift_ppm * 1e-6
            clocks[name] = ModelClockSource(
                PiecewiseDriftingClock(
                    args.seed + index,
                    r_min=1.0 - band,
                    r_max=1.0 + band,
                    mean_segment=1.0,
                )
            )
        elif args.skew_ppm:
            rate = 1.0 + index * args.skew_ppm * 1e-6
            clocks[name] = SkewedClockSource(rate)
    return clocks


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.nodes < 2:
        print("error: --nodes must be at least 2", file=sys.stderr)
        return 2
    names = [f"n{i}" for i in range(args.nodes)]
    try:
        crashes = tuple(_parse_crash(text) for text in args.crash)
        config = ClusterConfig(
            processors=tuple(names),
            links=tuple(shape_links(names, args.shape)),
            duration=args.duration,
            gossip_period=args.period,
            sample_period=args.sample_period,
            clocks=_clocks(args, names),
            transport=args.transport,
            crashes=crashes,
            seed=args.seed,
            codec=args.codec,
            codecs={proc: "json" for proc in args.json_node},
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2
    result, why = run_abortable(
        lambda abort: run_cluster(config, abort=abort), args.timeout
    )

    if result.aborted:
        print(f"aborted ({why}): partial evidence only", file=sys.stderr)
    print(
        f"{args.nodes}-node {args.shape} over {args.transport}: "
        f"{result.messages_sent} messages, {result.messages_lost} lost, "
        f"{len(result.trace)} events"
    )
    all_converged = True
    for proc in names:
        stats = result.nodes[proc]
        tag = "source" if proc == config.source_proc else (
            "converged" if stats.converged else "UNBOUNDED"
        )
        if proc != config.source_proc and not stats.converged:
            all_converged = False
        print(f"  {proc}: bound={stats.bound}  events={stats.events}  [{tag}]")
    violations = result.soundness_violations()
    if violations:
        print(f"  UNSOUND: {len(violations)} sample(s) exclude the truth")
    if args.out:
        dump_rt_run(result, args.out)
        print(f"  archived -> {args.out}")
    if result.aborted:
        return abort_exit_code(why)
    if args.require_converged and (violations or not all_converged):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
