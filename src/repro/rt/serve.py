"""The Cristian serving tier: stateless probe/reply service on a synced node.

The paper's Sec 4 application: lightweight clients do not join the
history/AGDP protocol at all - they probe a synced node and receive the
node's *optimal external bounds*, paying one message round trip instead
of a protocol membership.  A :class:`ServeNode` rides on an existing
:class:`~repro.rt.node.Node`: it registers its own transport endpoint
(``serve_endpoint(proc)``), answers ``probe`` frames with ``reply``
frames carrying the node's :meth:`~repro.rt.node.Node.estimate_at_now`
interval, and keeps **zero per-client state** - correlation is the
client's nonce, so millions of clients cost the server only the traffic
they generate.

A serving tier is deployable only if it stays *sound under stress*.
Three robustness mechanisms are built in:

* **Admission control + load shedding.**  A token bucket (``bucket_rate``
  sustained queries/s, ``bucket_burst`` burst) gates probes into a
  bounded request queue (``queue_limit``).  Over-rate or over-queue
  probes receive an explicit ``shed`` frame with a ``retry_after`` hint
  instead of silence - the client can distinguish an overloaded server
  (back off as told) from a dead one (fail over).  Shedding is computed
  on the fast path, before any estimator work.
* **Sound degraded responses.**  When the node's estimator state is
  stale (no event for more than ``stale_after`` local seconds) or its
  estimator has quarantined constraints (:attr:`EfficientCSA.degraded`),
  the reply is *widened* by an extra drift allowance of
  ``rho * (now - last_event)`` on both sides - ``rho`` being the serving
  clock's worst advertised deviation (or the configured override) - and
  flagged ``degraded``.  Widening a sound interval is always sound
  (Theorem 2.1: dropping information only loosens bounds), so a stressed
  server *degrades loudly instead of lying*; it never sheds precision
  silently and never fabricates tightness.
* **Never answer unbacked.**  With no finite two-sided estimate yet
  (fresh node, pre-convergence, post-eviction isolation) the server
  sheds with reason ``unsynced`` - an infinite bound is not a reply.

All serve traffic shares the node's transport, so
:class:`~repro.rt.transport.FaultMiddleware` fault plans (burst loss,
duplication, partitions) apply to the serve path exactly as to gossip,
and a crashed node's serve endpoint goes down with it.

Time hygiene: every rate/age computation reads the shared
:class:`~repro.rt.clock.TimeBase` (monotonic) and the node's
:class:`~repro.rt.clock.ClockSource`; wall-clock time is never consulted,
so a host wall-clock step cannot open the bucket or mask staleness.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from ..core.errors import SimulationError
from ..core.events import ProcessorId
from .node import Node
from .transport import Transport
from .wire import (
    WIRE_VERSION_BINARY,
    Frame,
    decode_frame,
    encode_frame,
    reply_frame,
    shed_frame,
)

__all__ = [
    "SERVE_SUFFIX",
    "serve_endpoint",
    "serve_owner",
    "TokenBucket",
    "ServeConfig",
    "ServeStats",
    "ServeNode",
]

#: appended to a node's processor id to name its serving endpoint
SERVE_SUFFIX = "!serve"


def serve_endpoint(proc: ProcessorId) -> ProcessorId:
    """The transport endpoint name of ``proc``'s serving tier."""
    return f"{proc}{SERVE_SUFFIX}"


def serve_owner(endpoint: ProcessorId) -> Optional[ProcessorId]:
    """The node behind a serving endpoint name, or ``None`` if not one."""
    if endpoint.endswith(SERVE_SUFFIX) and len(endpoint) > len(SERVE_SUFFIX):
        return endpoint[: -len(SERVE_SUFFIX)]
    return None


class TokenBucket:
    """A deterministic token bucket over an externally supplied clock.

    ``rate`` tokens/s refill up to ``burst``; :meth:`try_take` consumes
    one token if available.  The caller supplies every ``now`` reading
    (the shared monotonic time base), so the bucket itself never touches
    a clock - which keeps it testable with fake time and immune to
    wall-clock steps.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise SimulationError(
                f"token bucket needs positive rate/burst, got {rate}/{burst}"
            )
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now if self._last is None else max(self._last, now)

    def try_take(self, now: float) -> bool:
        """Consume one token at time ``now`` if the bucket allows it."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds from ``now`` until one whole token will be available."""
        self._refill(now)
        deficit = 1.0 - self._tokens
        return 0.0 if deficit <= 0 else deficit / self.rate


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving endpoint."""

    #: sustained admitted probes per second
    bucket_rate: float = 500.0
    #: instantaneous burst the bucket absorbs
    bucket_burst: float = 50.0
    #: probes queued awaiting service before shedding with reason ``queue``
    queue_limit: int = 64
    #: per-request service delay (seconds); models downstream work
    service_time: float = 0.0
    #: estimator state older than this (local s) answers as degraded
    stale_after: float = 1.0
    #: drift allowance per stale local second; None -> the serving
    #: clock's advertised worst deviation (``DriftSpec.max_deviation``)
    degraded_rho: Optional[float] = None
    #: shed retry hint while the estimator has no finite estimate
    unsynced_retry_after: float = 0.5

    def __post_init__(self):
        if self.bucket_rate <= 0 or self.bucket_burst <= 0:
            raise SimulationError("bucket rate and burst must be positive")
        if self.queue_limit < 1:
            raise SimulationError(f"queue limit must be >= 1, got {self.queue_limit}")
        if self.service_time < 0 or self.stale_after < 0:
            raise SimulationError("service_time and stale_after must be non-negative")
        if self.degraded_rho is not None and self.degraded_rho < 0:
            raise SimulationError(f"degraded_rho must be >= 0, got {self.degraded_rho}")
        if self.unsynced_retry_after < 0:
            raise SimulationError("unsynced_retry_after must be non-negative")


@dataclass
class ServeStats:
    """Live counters of one serving endpoint (shapes the run document)."""

    probes: int = 0
    replies: int = 0
    degraded_replies: int = 0
    #: shed verdicts by reason (``overload``/``queue``/``unsynced``)
    shed: Dict[str, int] = field(default_factory=dict)
    decode_errors: int = 0
    rejected_frames: int = 0
    #: probes silently dropped because the backing node was down
    dropped_down: int = 0
    max_queue_depth: int = 0

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def shed_rate(self) -> float:
        """Fraction of well-formed probes answered with a shed."""
        return self.shed_total / self.probes if self.probes else 0.0

    def to_dict(self) -> Dict:
        return {
            "probes": self.probes,
            "replies": self.replies,
            "degraded_replies": self.degraded_replies,
            "shed": dict(sorted(self.shed.items())),
            "shed_total": self.shed_total,
            "shed_rate": self.shed_rate(),
            "decode_errors": self.decode_errors,
            "rejected_frames": self.rejected_frames,
            "dropped_down": self.dropped_down,
            "max_queue_depth": self.max_queue_depth,
        }


class ServeNode:
    """One serving endpoint riding on a synced :class:`Node`.

    Lifecycle mirrors the node daemon: :meth:`start` registers the
    endpoint and spawns the queue worker, :meth:`stop` tears both down.
    The synchronous core (:meth:`handle_probe_bytes`) is separated from
    the asyncio shell so the admission/bound/encode hot path can be unit
    tested and benchmarked without an event loop.
    """

    def __init__(
        self,
        node: Node,
        transport: Optional[Transport] = None,
        config: Optional[ServeConfig] = None,
        bound_source=None,
    ):
        self.node = node
        self.transport = transport if transport is not None else node.transport
        self.config = config if config is not None else ServeConfig()
        #: optional override answering ``(bound, degraded, age)`` or None
        #: in place of the node's own estimator - e.g. a stratum border's
        #: :meth:`~repro.rt.strata.delegation.AnchorLink.composed_now`,
        #: so a downstream tier's serving endpoint hands clients
        #: federation-level source-time bounds instead of tier-local ones
        self.bound_source = bound_source
        self.endpoint = serve_endpoint(node.proc)
        self.bucket = TokenBucket(self.config.bucket_rate, self.config.bucket_burst)
        self.stats = ServeStats()
        #: admitted probes with the codec each arrived in (echoed back)
        self._queue: Deque[Tuple[Frame, str]] = deque()
        self._wakeup: Optional[asyncio.Event] = None
        self._worker: Optional[asyncio.Task] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._wakeup = asyncio.Event()
        self.transport.register(self.endpoint, self._on_datagram)
        ensure = getattr(self.transport, "ensure_endpoint", None)
        if ensure is not None:
            await ensure(self.endpoint)
        self._worker = asyncio.get_running_loop().create_task(self._serve_loop())

    async def stop(self) -> None:
        """Fail-stop with the node: drop the endpoint, abandon the queue."""
        self._running = False
        self.transport.unregister(self.endpoint)
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        # queued probes die with the server: their clients' timeouts and
        # failover machinery are exactly the recovery path for that
        self._queue.clear()

    # -- receive path ------------------------------------------------------------

    def _on_datagram(self, data: bytes) -> None:
        decoded = self._decode_probe(data)
        if decoded is None:
            return
        frame, codec = decoded
        if not self.node.running or not self._running:
            # the backing node is crashed: a dead server answers nothing
            self.stats.dropped_down += 1
            return
        shed = self._admit(frame, self.node.time_base.elapsed(), codec)
        if shed is not None:
            self.transport.send(self.endpoint, frame.src, shed)
            return
        self._queue.append((frame, codec))
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))
        if self._wakeup is not None:
            self._wakeup.set()

    async def _serve_loop(self) -> None:
        config = self.config
        while self._running:
            if not self._queue:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            frame, codec = self._queue.popleft()
            if config.service_time > 0:
                await asyncio.sleep(config.service_time)
            if not self._running or not self.node.running:
                self.stats.dropped_down += 1
                continue
            self.transport.send(self.endpoint, frame.src, self._answer(frame, codec))

    # -- synchronous core (fast path; also the benchmark surface) ----------------

    def _decode_probe(self, data: bytes) -> Optional[Tuple[Frame, str]]:
        """Untrusted bytes -> ``(probe, codec)``, or ``None`` (counted).

        The codec is whatever the probe arrived in; the serving tier is
        stateless per client, so the reply (or shed) simply echoes it.
        """
        result = decode_frame(data)
        if result.error is not None:
            self.stats.decode_errors += 1
            return None
        frame = result.frame
        if frame.type != "probe" or frame.dst != self.endpoint:
            # the serving tier speaks probe/reply/shed only; anything else
            # addressed here is a stray or hostile frame
            self.stats.rejected_frames += 1
            return None
        self.stats.probes += 1
        codec = "binary" if result.version == WIRE_VERSION_BINARY else "json"
        return frame, codec

    def _shed_bytes(
        self, frame: Frame, retry_after: float, reason: str, codec: str = "json"
    ) -> bytes:
        self.stats.shed[reason] = self.stats.shed.get(reason, 0) + 1
        return encode_frame(
            shed_frame(
                self.endpoint,
                frame.src,
                frame.nonce,
                retry_after=retry_after,
                reason=reason,
            ),
            codec,
        )

    def _admit(self, frame: Frame, now: float, codec: str = "json") -> Optional[bytes]:
        """Admission verdict: ``None`` to serve, else the shed frame bytes."""
        if not self.bucket.try_take(now):
            return self._shed_bytes(
                frame, self.bucket.retry_after(now), "overload", codec
            )
        if len(self._queue) >= self.config.queue_limit:
            # the queue's worth of work plus one bucket interval is an
            # honest drain estimate under the admitted rate
            hint = self.config.queue_limit / self.config.bucket_rate
            return self._shed_bytes(frame, hint, "queue", codec)
        return None

    def _answer(self, frame: Frame, codec: str = "json") -> bytes:
        """The reply (or unsynced shed) for one admitted probe.

        The bound is computed *here*, strictly between the probe's arrival
        and the reply's emission, which is what makes the client's
        Cristian widening sound: the interval held at an instant inside
        the client's own probe->reply window.
        """
        if self.bound_source is not None:
            sourced = self.bound_source()
            if sourced is None or not sourced[0].is_bounded:
                return self._shed_bytes(
                    frame, self.config.unsynced_retry_after, "unsynced", codec
                )
            bound, degraded, age = sourced
            if degraded:
                self.stats.degraded_replies += 1
            self.stats.replies += 1
            return encode_frame(
                reply_frame(
                    self.endpoint,
                    frame.src,
                    frame.nonce,
                    bound,
                    degraded=degraded,
                    age=age,
                ),
                codec,
            )
        rt, bound = self.node.estimate_at_now()
        if not bound.is_bounded:
            return self._shed_bytes(
                frame, self.config.unsynced_retry_after, "unsynced", codec
            )
        estimator = self.node.estimator
        last = estimator.last_local_event
        lt = self.node.clock.lt_at(rt)
        age = max(0.0, lt - last.lt) if last is not None else 0.0
        quarantined = bool(getattr(estimator, "degraded", False))
        degraded = quarantined or age > self.config.stale_after
        if degraded:
            rho = self.config.degraded_rho
            if rho is None:
                rho = self.node.clock.advertised.max_deviation
            bound = bound.widen(rho * age, rho * age)
            self.stats.degraded_replies += 1
        self.stats.replies += 1
        return encode_frame(
            reply_frame(
                self.endpoint,
                frame.src,
                frame.nonce,
                bound,
                degraded=degraded,
                age=age,
            ),
            codec,
        )

    def handle_probe_bytes(self, data: bytes) -> Optional[bytes]:
        """Decode + admit + answer one probe synchronously (no queue).

        The benchmarkable hot path: exactly the per-probe work of the
        asyncio shell minus the queue hop.  Returns the reply/shed bytes,
        or ``None`` for undecodable or non-probe input.
        """
        decoded = self._decode_probe(data)
        if decoded is None:
            return None
        frame, codec = decoded
        shed = self._admit(frame, self.node.time_base.elapsed(), codec)
        if shed is not None:
            return shed
        return self._answer(frame, codec)
