"""Real-time runtime: EfficientCSA over real sockets and wall clocks.

The simulator (:mod:`repro.sim`) owns time and delivers messages by
fiat; this package runs the *same estimators* against reality - asyncio
transports, a versioned wire protocol, hardware-clock abstractions, and
node daemons - and emits evidence in the same format, so one analysis
pipeline serves both execution engines.

Layers (bottom up):

* :mod:`repro.rt.clock` - :class:`TimeBase` and :class:`ClockSource`:
  atomic ``(rt, lt)`` reads off real monotonic time, with skewed and
  drifting synthetic clocks that advertise honest drift specs.
* :mod:`repro.rt.wire` - length-prefixed, versioned JSON frames; decode
  never raises, malformed bytes become structured :class:`WireError`\\ s
  that feed the suspicion machinery.
* :mod:`repro.rt.transport` - named-endpoint datagram service: in-process
  :class:`LoopbackTransport`, real-socket :class:`UDPTransport`, and
  :class:`FaultMiddleware` applying simulator
  :class:`~repro.sim.faults.FaultPlan`\\ s to live traffic.
* :mod:`repro.rt.node` - the asyncio daemon: gossip, ack/retransmit
  (Sec 3.3), at-most-once delivery, crash/restart with durable state.
* :mod:`repro.rt.cluster` - N-node harness producing
  :mod:`repro.sim.serialize`-compatible run documents.
* :mod:`repro.rt.serve` / :mod:`repro.rt.client` - the Cristian serving
  tier: stateless probe/reply endpoints with admission control, load
  shedding, and sound degraded bounds; swarm clients with backoff and
  accrual-style failover.
* :mod:`repro.rt.loadgen` - the serving-tier load generator and its
  run-document scorecard.
* :mod:`repro.rt.strata` - the stratum hierarchy: federated multi-tier
  clusters (optionally spanning OS processes over UDP) with anchor
  delegation, crash-driven re-election, and gradient sync metrics.
* :mod:`repro.rt.cli` / :mod:`repro.rt.serve_cli` /
  :mod:`repro.rt.strata.cli` - the ``repro-rt``, ``repro-serve``, and
  ``repro-strata`` entry points.
"""

from .client import (
    AcceptedSample,
    AccrualHealth,
    ClientConfig,
    ClientStats,
    ServeClient,
)

from .clock import (
    ClockSource,
    ModelClockSource,
    MonotonicClockSource,
    SkewedClockSource,
    TimeBase,
)
from .cluster import (
    ClusterConfig,
    CrashSchedule,
    JoinSchedule,
    LiveCluster,
    RtRunResult,
    build_spec,
    dump_rt_run,
    run_cluster,
    run_cluster_sync,
)
from .loadgen import (
    ServeLoadConfig,
    ServeLoadResult,
    run_serve_load,
    run_serve_load_sync,
)
from .node import LinkStats, Node, NodeConfig, NodeStats
from .serve import (
    ServeConfig,
    ServeNode,
    ServeStats,
    TokenBucket,
    serve_endpoint,
    serve_owner,
)
from .transport import FaultMiddleware, LoopbackTransport, Transport, UDPTransport
from .wire import (
    MAX_BODY_BYTES,
    WIRE_VERSION,
    DecodeResult,
    Frame,
    WireError,
    ack_frame,
    decode_frame,
    encode_frame,
    hello_frame,
    join_frame,
    probe_frame,
    reply_frame,
    shed_frame,
    sync_frame,
)

__all__ = [
    "ClockSource",
    "ModelClockSource",
    "MonotonicClockSource",
    "SkewedClockSource",
    "TimeBase",
    "ClusterConfig",
    "CrashSchedule",
    "JoinSchedule",
    "LiveCluster",
    "RtRunResult",
    "build_spec",
    "dump_rt_run",
    "run_cluster",
    "run_cluster_sync",
    "AcceptedSample",
    "AccrualHealth",
    "ClientConfig",
    "ClientStats",
    "ServeClient",
    "ServeConfig",
    "ServeNode",
    "ServeStats",
    "TokenBucket",
    "serve_endpoint",
    "serve_owner",
    "ServeLoadConfig",
    "ServeLoadResult",
    "run_serve_load",
    "run_serve_load_sync",
    "LinkStats",
    "Node",
    "NodeConfig",
    "NodeStats",
    "FaultMiddleware",
    "LoopbackTransport",
    "Transport",
    "UDPTransport",
    "MAX_BODY_BYTES",
    "WIRE_VERSION",
    "DecodeResult",
    "Frame",
    "WireError",
    "ack_frame",
    "decode_frame",
    "encode_frame",
    "hello_frame",
    "join_frame",
    "probe_frame",
    "reply_frame",
    "shed_frame",
    "sync_frame",
]
