"""The swarm client of the serving tier: probe, back off, fail over.

A :class:`ServeClient` is the lightweight counterpart of a
:class:`~repro.rt.serve.ServeNode`: it holds no protocol state, just a
hardware clock and a priority list of serving endpoints.  Its loop is
one Cristian round trip per ``sync_interval``:

* **Sound bound adoption.**  A probe leaves at client local time ``lt0``
  and its reply arrives at ``lt1`` carrying the server's interval
  ``[L, U]``, computed at some instant strictly inside the probe->reply
  window.  The source clock runs at real time, so at ``lt1`` the source
  value is at most ``U + beta * (lt1 - lt0)`` (``beta`` from the client
  clock's own advertised drift: the real window is at most
  ``beta * rtt`` long) and at least ``L``.  The client accepts
  ``[L, U + beta * rtt]`` anchored at ``lt1`` and advances it through
  its own drift spec afterwards - every step widens or drift-advances a
  sound interval, so every accepted bound contains the true source time.
* **Re-sync interval from ``eps_max / rho``** (the `cs171pa1` policy):
  between syncs the client's worst error growth is its drift ``rho``
  per local second, so holding a target error ``eps_max`` needs a probe
  every ``eps_max / rho`` seconds; a safety factor of two absorbs
  network delay, giving ``interval = eps_max / (2 rho)`` (clamped).
* **Backoff and shed handling.**  Timeouts back off exponentially with
  seeded jitter; an explicit ``shed`` honors the server's
  ``retry_after`` hint (never retrying earlier than told).  Sheds prove
  the server is *alive*, so they reset the failure streak without
  counting as sync progress.
* **Accrual-style failover.**  The client keeps an EWMA of observed
  reply intervals; its health score grows with consecutive timeouts and
  with silence relative to that learned cadence (a simplified
  phi-accrual detector).  Past ``failover_threshold`` - or after a long
  unbroken shed streak - the client rotates to the next server in its
  list and starts fresh.

Clock hygiene: every interval - RTT, backoff, health, staleness - is
measured on the monotonic :class:`~repro.rt.clock.TimeBase` +
:class:`~repro.rt.clock.ClockSource` path.  ``time.time()`` is never
consulted, so a wall-clock step can neither wedge the retry loop nor
corrupt an accepted bound.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import SimulationError
from ..core.events import ProcessorId
from ..core.intervals import ClockBound
from .clock import ClockSource, MonotonicClockSource, TimeBase
from .transport import Transport
from .wire import WIRE_CODECS, Frame, decode_frame, encode_frame, probe_frame

__all__ = [
    "AccrualHealth",
    "AcceptedSample",
    "ClientConfig",
    "ClientStats",
    "ServeClient",
]


class AccrualHealth:
    """A simplified phi-accrual failure detector over client local time.

    Tracks an EWMA of the intervals between successful replies; the
    score at ``now`` is the consecutive-failure count plus how many
    learned intervals of silence have passed beyond the first.  Scores
    are unitless and monotone in suspicion, like phi - a threshold of
    ``k`` roughly means "k timeouts, or silence k+1 times the learned
    cadence".
    """

    def __init__(self, *, alpha: float = 0.3, min_interval: float = 0.05):
        self.alpha = alpha
        self.min_interval = min_interval
        self.mean_interval: Optional[float] = None
        self.last_reply: Optional[float] = None
        self.failures = 0

    def on_reply(self, now: float) -> None:
        if self.last_reply is not None:
            observed = max(now - self.last_reply, 0.0)
            if self.mean_interval is None:
                self.mean_interval = observed
            else:
                self.mean_interval += self.alpha * (observed - self.mean_interval)
        self.last_reply = now
        self.failures = 0

    def on_alive(self) -> None:
        """Liveness without progress (a shed): clear the failure streak."""
        self.failures = 0

    def on_failure(self) -> None:
        self.failures += 1

    def score(self, now: float) -> float:
        value = float(self.failures)
        if self.last_reply is not None:
            cadence = max(self.mean_interval or self.min_interval, self.min_interval)
            value += max(0.0, (now - self.last_reply) / cadence - 1.0)
        return value

    def reset(self) -> None:
        self.mean_interval = None
        self.last_reply = None
        self.failures = 0


@dataclass(frozen=True)
class AcceptedSample:
    """One accepted reply, widened to its acceptance instant.

    ``rt`` is the shared time base reading at acceptance - which *is*
    the true source time in an in-process deployment - so ``sound``
    is directly checkable: the accepted interval must contain it.
    """

    rt: float
    server: ProcessorId
    bound: ClockBound
    rtt_lt: float
    degraded: bool

    @property
    def sound(self) -> bool:
        return self.bound.contains(self.rt, tolerance=1e-9)

    @property
    def error_bound(self) -> float:
        """Worst-case error of the interval midpoint (the half width)."""
        return 0.5 * self.bound.width


@dataclass(frozen=True)
class ClientConfig:
    """Static configuration of one serving-tier client."""

    name: ProcessorId
    #: serving endpoints in priority order; index 0 is the primary
    servers: Tuple[ProcessorId, ...]
    #: target worst-case error between syncs (drives the probe cadence)
    eps_max: float = 0.05
    #: drift rate for the eps_max/rho derivation; None -> the client
    #: clock's advertised worst deviation
    rho: Optional[float] = None
    min_interval: float = 0.02
    max_interval: float = 1.0
    probe_timeout: float = 0.25
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: accrual score at which the client rotates servers
    failover_threshold: float = 3.0
    #: consecutive sheds after which an overloaded server is abandoned
    shed_failover_streak: int = 8
    seed: int = 0
    #: wire codec for probes; the server echoes it in replies and sheds
    codec: str = "binary"

    def __post_init__(self):
        if self.codec not in WIRE_CODECS:
            raise SimulationError(f"unknown wire codec {self.codec!r}")
        if not self.servers:
            raise SimulationError("a client needs at least one server")
        if len(set(self.servers)) != len(self.servers):
            raise SimulationError("duplicate servers in the failover list")
        if self.eps_max <= 0:
            raise SimulationError(f"eps_max must be positive, got {self.eps_max}")
        if self.rho is not None and self.rho < 0:
            raise SimulationError(f"rho must be non-negative, got {self.rho}")
        if not (0 < self.min_interval <= self.max_interval):
            raise SimulationError("need 0 < min_interval <= max_interval")
        if self.probe_timeout <= 0:
            raise SimulationError("probe_timeout must be positive")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise SimulationError("need 0 < backoff_base <= backoff_cap")
        if self.failover_threshold <= 0:
            raise SimulationError("failover_threshold must be positive")
        if self.shed_failover_streak < 1:
            raise SimulationError("shed_failover_streak must be >= 1")

    def sync_interval(self, advertised_rho: float) -> float:
        """The `cs171pa1` cadence: ``eps_max / (2 rho)``, clamped.

        A drift-free client (``rho == 0``) would never *need* to re-sync
        for drift alone; it still probes at ``max_interval`` so failures
        are detected.
        """
        rho = self.rho if self.rho is not None else advertised_rho
        if rho <= 0:
            return self.max_interval
        return min(max(self.eps_max / (2.0 * rho), self.min_interval), self.max_interval)


@dataclass
class ClientStats:
    """Live counters of one client."""

    probes: int = 0
    replies: int = 0
    accepted: int = 0
    degraded_accepted: int = 0
    sheds: int = 0
    shed_reasons: Dict[str, int] = field(default_factory=dict)
    timeouts: int = 0
    failovers: int = 0
    #: replies with unknown/expired nonces or from the wrong server
    unmatched: int = 0
    decode_errors: int = 0

    def to_dict(self) -> Dict:
        return {
            "probes": self.probes,
            "replies": self.replies,
            "accepted": self.accepted,
            "degraded_accepted": self.degraded_accepted,
            "sheds": self.sheds,
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "timeouts": self.timeouts,
            "failovers": self.failovers,
            "unmatched": self.unmatched,
            "decode_errors": self.decode_errors,
        }


class ServeClient:
    """One lightweight client: clock + failover list + probe loop."""

    def __init__(
        self,
        config: ClientConfig,
        transport: Transport,
        time_base: TimeBase,
        clock: Optional[ClockSource] = None,
    ):
        self.config = config
        self.name = config.name
        self.transport = transport
        self.time_base = time_base
        self.clock = clock if clock is not None else MonotonicClockSource()
        self.stats = ClientStats()
        self.health = AccrualHealth()
        self.samples: List[AcceptedSample] = []
        #: (rt, from_server, to_server) per failover, in order
        self.failover_events: List[Tuple[float, ProcessorId, ProcessorId]] = []
        #: latest accepted bound and its anchor local time
        self._current: Optional[Tuple[float, ClockBound]] = None
        self._server_index = 0
        self._nonce = 0
        self._consecutive_failures = 0
        self._shed_streak = 0
        #: nonce -> (send lt, server probed, reply future)
        self._pending: Dict[int, Tuple[float, ProcessorId, asyncio.Future]] = {}
        self._rng = random.Random(config.seed)
        self._task: Optional[asyncio.Task] = None
        self._running = False

    # -- clock reads -------------------------------------------------------------

    def _now(self) -> Tuple[float, float]:
        """One atomic (rt, lt) pair off the shared monotonic time base."""
        rt = self.time_base.elapsed()
        return rt, self.clock.lt_at(rt)

    @property
    def server(self) -> ProcessorId:
        """The serving endpoint currently probed."""
        return self.config.servers[self._server_index]

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.transport.register(self.name, self._on_datagram)
        ensure = getattr(self.transport, "ensure_endpoint", None)
        if ensure is not None:
            await ensure(self.name)
        self._task = asyncio.get_running_loop().create_task(self._probe_loop())

    async def stop(self) -> None:
        self._running = False
        self.transport.unregister(self.name)
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for _lt0, _server, future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()

    @property
    def running(self) -> bool:
        return self._running

    # -- receive path ------------------------------------------------------------

    def _on_datagram(self, data: bytes) -> None:
        result = decode_frame(data)
        if result.error is not None:
            self.stats.decode_errors += 1
            return
        frame = result.frame
        if frame.type not in ("reply", "shed") or frame.dst != self.name:
            self.stats.unmatched += 1
            return
        entry = self._pending.get(frame.nonce)
        if entry is None or entry[1] != frame.src:
            # expired nonce (timeout already charged), duplicate echo, or
            # a reply claiming to come from a server this probe never
            # targeted: at-most-once, first answer wins
            self.stats.unmatched += 1
            return
        _lt0, _server, future = self._pending.pop(frame.nonce)
        if not future.done():
            future.set_result(frame)

    # -- probe loop --------------------------------------------------------------

    async def _probe_loop(self) -> None:
        while self._running:
            delay = await self._probe_once()
            await asyncio.sleep(delay)

    async def _probe_once(self) -> float:
        """One round trip; returns the local-time delay before the next."""
        _rt0, lt0 = self._now()
        nonce = self._nonce
        self._nonce += 1
        server = self.server
        future = asyncio.get_running_loop().create_future()
        self._pending[nonce] = (lt0, server, future)
        self.stats.probes += 1
        self.transport.send(
            self.name,
            server,
            encode_frame(probe_frame(self.name, server, nonce), self.config.codec),
        )
        try:
            frame = await asyncio.wait_for(future, timeout=self.config.probe_timeout)
        except asyncio.TimeoutError:
            self._pending.pop(nonce, None)
            return self._on_timeout()
        except asyncio.CancelledError:
            self._pending.pop(nonce, None)
            raise
        if frame.type == "shed":
            return self._on_shed(frame)
        return self._on_reply(frame, lt0)

    def _on_timeout(self) -> float:
        self.stats.timeouts += 1
        self._consecutive_failures += 1
        self._shed_streak = 0
        self.health.on_failure()
        self._maybe_failover()
        return self._backoff()

    def _on_shed(self, frame: Frame) -> float:
        self.stats.sheds += 1
        reason = frame.reason or "overload"
        self.stats.shed_reasons[reason] = self.stats.shed_reasons.get(reason, 0) + 1
        # a shed is liveness evidence: the server answered, it just said no
        self.health.on_alive()
        self._consecutive_failures = 0
        self._shed_streak += 1
        if self._shed_streak >= self.config.shed_failover_streak and len(self.config.servers) > 1:
            self._failover()
            return self.config.min_interval
        # never retry earlier than told; jittered so a shed storm does not
        # resynchronize the swarm into the next storm
        return max(frame.retry_after or 0.0, self._backoff(extra_attempts=self._shed_streak))

    def _on_reply(self, frame: Frame, lt0: float) -> float:
        rt1, lt1 = self._now()
        self.stats.replies += 1
        rtt_lt = max(0.0, lt1 - lt0)
        # the server's interval held at an instant inside [lt0, lt1]; the
        # source runs at real time, and at most beta * rtt real seconds
        # passed since, so only the upper endpoint needs the allowance
        beta = self.clock.advertised.beta
        accepted = ClockBound(frame.bound.lower, frame.bound.upper + beta * rtt_lt)
        sample = AcceptedSample(
            rt=rt1,
            server=frame.src,
            bound=accepted,
            rtt_lt=rtt_lt,
            degraded=frame.degraded,
        )
        self.samples.append(sample)
        self.stats.accepted += 1
        if frame.degraded:
            self.stats.degraded_accepted += 1
        self._current = (lt1, accepted)
        self.health.on_reply(lt1)
        self._consecutive_failures = 0
        self._shed_streak = 0
        return self.config.sync_interval(self.clock.advertised.max_deviation)

    # -- failover and backoff ------------------------------------------------------

    def _maybe_failover(self) -> None:
        if len(self.config.servers) < 2:
            return
        _rt, lt = self._now()
        if self.health.score(lt) >= self.config.failover_threshold:
            self._failover()

    def _failover(self) -> None:
        rt, _lt = self._now()
        previous = self.server
        self._server_index = (self._server_index + 1) % len(self.config.servers)
        self.stats.failovers += 1
        self.failover_events.append((rt, previous, self.server))
        self.health.reset()
        self._consecutive_failures = 0
        self._shed_streak = 0

    def _backoff(self, *, extra_attempts: int = 0) -> float:
        """Exponential backoff with jitter, in client local seconds."""
        attempts = max(self._consecutive_failures, extra_attempts, 1)
        raw = min(self.config.backoff_cap, self.config.backoff_base * 2.0 ** (attempts - 1))
        return raw * (0.5 + 0.5 * self._rng.random())

    # -- introspection -----------------------------------------------------------

    def current_bound(self) -> Optional[Tuple[float, ClockBound]]:
        """The latest accepted bound advanced to now: ``(rt, bound)``.

        Advancing through the client's own drift spec keeps it sound at
        the returned time-base instant; ``None`` before the first accept.
        """
        if self._current is None:
            return None
        rt, lt = self._now()
        anchor_lt, bound = self._current
        return rt, bound.advance(max(0.0, lt - anchor_lt), self.clock.advertised)

    def unsound_samples(self) -> List[AcceptedSample]:
        return [sample for sample in self.samples if not sample.sound]
