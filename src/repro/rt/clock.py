"""Wall-clock time sources for the real-time runtime.

The simulator owns time; a runtime node does not.  A :class:`ClockSource`
is the node's *hardware clock*: a strictly increasing mapping from the
host's monotonic elapsed time to the node's local time, advertising a
:class:`~repro.core.specs.DriftSpec` exactly like the simulator's
:class:`~repro.sim.clock.ClockModel` - the optimality theorems quantify
over executions satisfying their own specification, so the advertisement
is part of the contract here too.

Reading a clock is a two-step split on purpose:

* :class:`TimeBase` produces the *real* elapsed time ``rt`` (one
  ``time.monotonic()`` call shared by every node in the process - in the
  analysis-only role the simulator's global clock plays; a deployed node
  never looks at another node's readings);
* ``ClockSource.lt_at(rt)`` is a *pure* function of that reading.

Pairing ``(rt, lt)`` through a single monotonic sample keeps the recorded
execution exactly in-spec: no scheduling delay can slip between the real
time the analysis records for an event and the local time the node stamps
on it.

Sources:

* :class:`MonotonicClockSource` - local time equals elapsed monotonic
  time (the source node; defines real time for the cluster).
* :class:`SkewedClockSource` - a constant-rate skew plus offset; the
  classical fixed-skew model, useful to make multi-node runs on one host
  exhibit drift.
* :class:`ModelClockSource` - adapts any simulator
  :class:`~repro.sim.clock.ClockModel` (e.g. a seeded
  :class:`~repro.sim.clock.PiecewiseDriftingClock`), so the runtime can
  exercise genuinely *drifting* clocks while running over real sockets.
"""

from __future__ import annotations

import abc
import time
from typing import Optional

from ..core.errors import SimulationError
from ..core.specs import DriftSpec
from ..sim.clock import ClockModel

__all__ = [
    "TimeBase",
    "ClockSource",
    "MonotonicClockSource",
    "SkewedClockSource",
    "ModelClockSource",
]


class TimeBase:
    """A shared monotonic epoch; ``elapsed()`` is the cluster's real time.

    One instance is shared by every node of an in-process cluster plus the
    harness, so sampled truths and event real-times are mutually
    comparable.  The origin is captured at construction, or supplied
    explicitly: on Linux ``time.monotonic()`` is ``CLOCK_MONOTONIC``,
    which every process of one boot reads off the same axis, so a
    federation spanning OS processes ships one ``origin`` reading to its
    children and all their ``elapsed()`` readings stay mutually
    comparable (:mod:`repro.rt.strata.federation`).
    """

    def __init__(self, origin: Optional[float] = None):
        self._origin = time.monotonic() if origin is None else float(origin)

    @property
    def origin(self) -> float:
        """The raw ``time.monotonic()`` reading this base measures from."""
        return self._origin

    def elapsed(self) -> float:
        """Seconds of real time since this time base was created."""
        return time.monotonic() - self._origin


class ClockSource(abc.ABC):
    """A node's hardware clock: pure mapping from elapsed real time to LT."""

    @property
    @abc.abstractmethod
    def advertised(self) -> DriftSpec:
        """The drift specification this clock promises to satisfy."""

    @abc.abstractmethod
    def lt_at(self, rt: float) -> float:
        """Local time shown when the shared time base reads ``rt >= 0``."""


class MonotonicClockSource(ClockSource):
    """Local time is elapsed monotonic time: the perfect (source) clock."""

    @property
    def advertised(self) -> DriftSpec:
        return DriftSpec.perfect()

    def lt_at(self, rt: float) -> float:
        return rt


class SkewedClockSource(ClockSource):
    """``LT = offset + rate * elapsed`` - a constant-rate skewed clock.

    ``advertised`` defaults to the exact band ``[rate, rate]``; pass
    ``advertised_band=(r_min, r_max)`` containing ``rate`` to mirror a
    datasheet-tolerance advertisement instead.
    """

    def __init__(self, rate: float = 1.0, offset: float = 0.0, *, advertised_band=None):
        if rate <= 0:
            raise SimulationError(f"clock rate must be positive, got {rate}")
        self.rate = rate
        self.offset = offset
        if advertised_band is None:
            self._advertised = DriftSpec.from_rate_bounds(rate, rate)
        else:
            r_min, r_max = advertised_band
            if not (r_min <= rate <= r_max):
                raise SimulationError(
                    f"true rate {rate} outside advertised band [{r_min}, {r_max}]"
                )
            self._advertised = DriftSpec.from_rate_bounds(r_min, r_max)

    @property
    def advertised(self) -> DriftSpec:
        return self._advertised

    def lt_at(self, rt: float) -> float:
        return self.offset + self.rate * rt


class ModelClockSource(ClockSource):
    """Adapter: drive any simulator :class:`ClockModel` from real time.

    The model's real-time axis is identified with the shared time base's
    elapsed seconds, so e.g. a seeded
    :class:`~repro.sim.clock.PiecewiseDriftingClock` makes a runtime
    node's clock wander inside its advertised band while the node runs
    over real sockets.
    """

    def __init__(self, model: ClockModel):
        self.model = model

    @property
    def advertised(self) -> DriftSpec:
        return self.model.advertised

    def lt_at(self, rt: float) -> float:
        return self.model.lt(rt)
