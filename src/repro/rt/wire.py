"""The versioned wire protocol of the real-time runtime.

Every datagram is one *frame*:

    +-------+---------+------------------+------------ ... -+
    | magic | version | body length (u32)| JSON body        |
    | 2 B   | 1 B     | 4 B big-endian   | <= MAX_BODY bytes|
    +-------+---------+------------------+------------ ... -+

The length prefix makes truncation and trailing garbage detectable even
on datagram transports (and lets the same framing run over streams
later).  The body is strict JSON (``allow_nan=False``) extending the
conventions of :mod:`repro.sim.serialize`: history payloads travel as
``HistoryPayload.to_dict()`` documents.

Frame types:

* ``hello`` - peer liveness/discovery; carries no synchronization data.
* ``sync``  - one gossip message: the send event's ``seq``/``lt`` plus
  the piggybacked :class:`~repro.core.history.HistoryPayload` (Fig 2).
  A sync answering a ``join`` additionally carries ``boot``, the
  sponsor's :class:`~repro.core.bootstrap.BootstrapSnapshot` taken right
  after the send - the late-joiner handoff of Lemmas 3.4/3.5.
* ``ack``   - delivery confirmation for one ``sync`` frame, by ``seq``;
  drives the sender's Sec 3.3 delivery-detection hooks.
* ``join``  - a fresh node asking a sponsor neighbor for a bootstrap;
  seq-less like ``hello`` (the *answer* is an ordinary sync and rides
  the normal at-most-once machinery, so joins may repeat freely).

The *serving tier* (Sec 4's Cristian application, :mod:`repro.rt.serve`)
adds three stateless frames.  Clients never join the history/AGDP
protocol: a probe/reply pair is one Cristian round trip, correlated by a
client-chosen ``nonce`` instead of the gossip ``seq`` machinery, so the
server keeps no per-client state at all:

* ``probe`` - a lightweight client asking a serving node for external
  bounds; carries only a non-negative ``nonce`` the reply must echo.
* ``reply`` - the server's answer: finite source-time bounds
  ``[lower, upper]`` valid at the instant the server computed them,
  a ``degraded`` flag when the bounds include an extra staleness/
  quarantine drift allowance, and the server state's ``age`` (local
  seconds since its estimator's last event, informational).
* ``shed``  - explicit load-shedding refusal: the server cannot (token
  bucket or queue full) or will not (no bounded estimate yet) answer;
  carries a ``retry_after`` hint and a ``reason``.  An overloaded server
  that *says so* keeps clients honest - silence is indistinguishable
  from loss and would be retried immediately.

The *stratum hierarchy* (:mod:`repro.rt.strata`) adds one more stateless
pair with the same nonce-correlation discipline.  A downstream tier's
border node asks an upstream anchor for delegated source-time bounds:

* ``dreq``  - a delegation request; like ``probe``, it carries only the
  requesting border's nonce.
* ``deleg`` - the anchor's answer: finite source-time bounds plus
  ``hops`` (how many indirections separate the bounds from the
  answering tier's own time authority - the paper's ``K2 <= 2`` bound,
  enforced at decode: ``1`` for a core node serving its own estimator,
  ``2`` for a border re-exporting an adopted bound) and ``stratum``
  (the answering tier's depth, ``0`` = core).  Refusals reuse ``shed``
  (reason ``unsynced``), so an unsynced anchor stays loudly alive.

**Decoding never raises.**  Bytes off the wire are adversarial input:
:func:`decode_frame` returns a :class:`DecodeResult` whose ``error`` is a
structured :class:`WireError` for malformed input - short or truncated
frames, wrong magic or version, oversized bodies, broken JSON, bad frame
fields, or a payload section :meth:`HistoryPayload.from_dict` rejects.
When the envelope (src/dst/type) survives but the payload does not, the
error still carries the claimed sender, so the node daemon can feed the
anomaly into the existing suspicion machinery
(:meth:`~repro.core.csa.EfficientCSA.report_anomaly`) exactly like
sim-path tampering.
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.bootstrap import BootstrapSnapshot
from ..core.errors import ProtocolError
from ..core.events import Event, ProcessorId
from ..core.history import HistoryPayload
from ..core.intervals import ClockBound

__all__ = [
    "WIRE_VERSION",
    "WIRE_VERSION_BINARY",
    "WIRE_CODECS",
    "MAGIC",
    "MAX_BODY_BYTES",
    "FRAME_TYPES",
    "SERVE_FRAME_TYPES",
    "STRATA_FRAME_TYPES",
    "MAX_DELEGATION_HOPS",
    "Frame",
    "WireError",
    "DecodeResult",
    "encode_frame",
    "decode_frame",
    "decode_frames",
    "hello_frame",
    "sync_frame",
    "ack_frame",
    "join_frame",
    "probe_frame",
    "reply_frame",
    "shed_frame",
    "dreq_frame",
    "deleg_frame",
]

#: current JSON wire format version; bump on any incompatible body change.
#: Version 1 frames (identical JSON bodies) are still accepted on decode.
WIRE_VERSION = 2

#: the struct-packed binary body format (:mod:`repro.rt.codec`); selected
#: per *frame* by the version byte, so mixed-codec traffic coexists on
#: one socket
WIRE_VERSION_BINARY = 3

#: codec names a node may advertise in ``hello``/``join`` meta; peers fall
#: back to JSON for any peer that does not advertise ``binary``
WIRE_CODECS = ("json", "binary")

#: frame preamble - two magic bytes, so stray datagrams fail fast
MAGIC = b"RS"

_HEADER = struct.Struct(">2sBI")

#: hard cap on the JSON body; keeps frames inside one UDP datagram and
#: bounds what a hostile peer can make a node parse
MAX_BODY_BYTES = 60_000

FRAME_TYPES = ("hello", "sync", "ack", "join", "probe", "reply", "shed", "dreq", "deleg")

#: frame types of the stateless serving tier (nonce-correlated, seq-less)
SERVE_FRAME_TYPES = ("probe", "reply", "shed")

#: frame types of the stratum hierarchy's delegation channel
STRATA_FRAME_TYPES = ("dreq", "deleg")

#: the paper's ``K2``: delegated bounds may be at most this many
#: indirections from the answering tier's own time authority
MAX_DELEGATION_HOPS = 2


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    type: str
    src: ProcessorId
    dst: ProcessorId
    #: sync: the sender's send-event sequence number; ack: the confirmed one
    seq: Optional[int] = None
    #: sync only: the send event's claimed local time
    lt: Optional[float] = None
    #: sync only: the piggybacked history payload
    payload: Optional[HistoryPayload] = None
    #: sync answering a join: the sponsor's bootstrap snapshot
    boot: Optional[BootstrapSnapshot] = None
    #: probe/reply/shed: the client-chosen correlation token
    nonce: Optional[int] = None
    #: reply only: finite source-time bounds at the server's reply instant
    bound: Optional[ClockBound] = None
    #: reply only: bounds carry an extra staleness/quarantine allowance
    degraded: bool = False
    #: reply only: server local seconds since its estimator's last event
    age: Optional[float] = None
    #: shed only: suggested client wait before re-probing (seconds)
    retry_after: Optional[float] = None
    #: shed only: why the server refused (``overload``/``queue``/``unsynced``)
    reason: Optional[str] = None
    #: deleg only: indirections from the answering tier's time authority
    hops: Optional[int] = None
    #: deleg only: the answering tier's stratum depth (0 = core)
    stratum: Optional[int] = None
    #: hello extras (advertised wire version, etc.)
    meta: Dict = field(default_factory=dict)


@dataclass(frozen=True)
class WireError:
    """A structured decode rejection (never an exception).

    ``code`` is one of ``short-frame``, ``bad-magic``, ``bad-version``,
    ``oversized``, ``length-mismatch``, ``bad-json``, ``bad-frame``,
    ``bad-payload``, ``bad-boot``.  ``src`` is the *claimed* sender when the envelope
    decoded far enough to name one - attribution input for the suspicion
    ledger, not established fact.
    """

    code: str
    detail: str
    src: Optional[ProcessorId] = None


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of :func:`decode_frame`: exactly one of frame/error is set.

    ``version`` is the wire version byte of the decoded frame (when the
    header parsed far enough to read one); stateless endpoints echo their
    answer in the codec the request arrived in.
    """

    frame: Optional[Frame] = None
    error: Optional[WireError] = None
    version: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.frame is not None


# -- construction helpers --------------------------------------------------------------


def hello_frame(
    src: ProcessorId, dst: ProcessorId, *, codecs: Optional[tuple] = None
) -> Frame:
    """Peer liveness/discovery; meta advertises the sender's codec support.

    A peer that advertises ``binary`` may be sent version-3 frames; anyone
    else (including version-1 nodes, whose hello carries no ``codecs`` at
    all) is spoken to in JSON.
    """
    return Frame(
        type="hello",
        src=src,
        dst=dst,
        meta={"wire": WIRE_VERSION, "codecs": list(WIRE_CODECS if codecs is None else codecs)},
    )


def sync_frame(
    send_event: Event,
    payload: HistoryPayload,
    boot: Optional[BootstrapSnapshot] = None,
) -> Frame:
    """The gossip frame for one send event and its piggybacked payload."""
    if not send_event.is_send:
        raise ProtocolError(f"sync frames wrap send events, got {send_event.kind}")
    return Frame(
        type="sync",
        src=send_event.proc,
        dst=send_event.dest,
        seq=send_event.seq,
        lt=send_event.lt,
        payload=payload,
        boot=boot,
    )


def ack_frame(src: ProcessorId, dst: ProcessorId, seq: int) -> Frame:
    return Frame(type="ack", src=src, dst=dst, seq=seq)


def join_frame(
    src: ProcessorId, dst: ProcessorId, *, codecs: Optional[tuple] = None
) -> Frame:
    """A fresh node's bootstrap request to its sponsor neighbor."""
    return Frame(
        type="join",
        src=src,
        dst=dst,
        meta={"wire": WIRE_VERSION, "codecs": list(WIRE_CODECS if codecs is None else codecs)},
    )


def _check_nonce(nonce: int) -> int:
    if not isinstance(nonce, int) or isinstance(nonce, bool) or nonce < 0:
        raise ProtocolError(f"serve frames need a non-negative int nonce, got {nonce!r}")
    return nonce


def probe_frame(src: ProcessorId, dst: ProcessorId, nonce: int) -> Frame:
    """A lightweight client's Cristian probe to a serving endpoint."""
    return Frame(type="probe", src=src, dst=dst, nonce=_check_nonce(nonce))


def reply_frame(
    src: ProcessorId,
    dst: ProcessorId,
    nonce: int,
    bound: ClockBound,
    *,
    degraded: bool = False,
    age: float = 0.0,
) -> Frame:
    """The server's answer to one probe.

    Only *finite* bounds travel: an unsynced server must shed (with
    reason ``unsynced``) instead - an infinite endpoint is not
    strict-JSON-representable and carries no information a client could
    act on anyway.
    """
    if not bound.is_bounded:
        raise ProtocolError("reply frames carry finite bounds only; shed instead")
    if age < 0:
        raise ProtocolError(f"reply age must be non-negative, got {age}")
    return Frame(
        type="reply",
        src=src,
        dst=dst,
        nonce=_check_nonce(nonce),
        bound=bound,
        degraded=bool(degraded),
        age=float(age),
    )


def shed_frame(
    src: ProcessorId,
    dst: ProcessorId,
    nonce: int,
    *,
    retry_after: float,
    reason: str = "overload",
) -> Frame:
    """An explicit load-shedding refusal of one probe."""
    if not (retry_after >= 0) or math.isinf(retry_after):
        raise ProtocolError(
            f"retry_after must be finite and non-negative, got {retry_after!r}"
        )
    if not isinstance(reason, str) or not reason:
        raise ProtocolError(f"shed reason must be a non-empty string, got {reason!r}")
    return Frame(
        type="shed",
        src=src,
        dst=dst,
        nonce=_check_nonce(nonce),
        retry_after=float(retry_after),
        reason=reason,
    )


def dreq_frame(src: ProcessorId, dst: ProcessorId, nonce: int) -> Frame:
    """A border node's delegation request to an upstream anchor endpoint."""
    return Frame(type="dreq", src=src, dst=dst, nonce=_check_nonce(nonce))


def deleg_frame(
    src: ProcessorId,
    dst: ProcessorId,
    nonce: int,
    bound: ClockBound,
    *,
    hops: int,
    stratum: int,
    degraded: bool = False,
    age: float = 0.0,
) -> Frame:
    """An anchor's delegated source-time bounds for one ``dreq``.

    Like ``reply``, only finite bounds travel (shed ``unsynced``
    otherwise).  ``hops`` states how many indirections separate the
    bounds from the answering tier's own time authority and must respect
    the paper's ``K2`` bound: ``1`` (a core node serving its own
    estimator) or ``2`` (a border re-exporting an adopted bound).
    """
    if not bound.is_bounded:
        raise ProtocolError("deleg frames carry finite bounds only; shed instead")
    if not isinstance(hops, int) or isinstance(hops, bool) or not (
        1 <= hops <= MAX_DELEGATION_HOPS
    ):
        raise ProtocolError(
            f"deleg hops must be an int in [1, {MAX_DELEGATION_HOPS}], got {hops!r}"
        )
    if not isinstance(stratum, int) or isinstance(stratum, bool) or stratum < 0:
        raise ProtocolError(f"deleg stratum must be a non-negative int, got {stratum!r}")
    if age < 0:
        raise ProtocolError(f"deleg age must be non-negative, got {age}")
    return Frame(
        type="deleg",
        src=src,
        dst=dst,
        nonce=_check_nonce(nonce),
        bound=bound,
        degraded=bool(degraded),
        age=float(age),
        hops=hops,
        stratum=stratum,
    )


# -- encode ----------------------------------------------------------------------------


_BINARY_CODEC = None


def _binary_codec():
    """Import :mod:`repro.rt.codec` once (it imports back from this module,
    so the import must be deferred past module init) and cache it."""
    global _BINARY_CODEC
    if _BINARY_CODEC is None:
        from . import codec as _BINARY_CODEC  # noqa: F811 - rebinds the global

    return _BINARY_CODEC


def encode_frame(frame: Frame, codec: str = "json") -> bytes:
    """Serialize a frame; raises :class:`ProtocolError` on local misuse.

    ``codec`` selects the body format: ``"json"`` (wire version 2, the
    interoperable default) or ``"binary"`` (version 3, the struct-packed
    hot-path format of :mod:`repro.rt.codec`).  Encoding errors are *our*
    bugs or limits (an oversized payload), not remote input, hence the
    exception - callers on the send path treat it like a lost message.
    """
    if codec == "binary":
        binary = _binary_codec()
        return binary.encode_frame_binary(frame)
    if codec != "json":
        raise ProtocolError(f"unknown wire codec {codec!r}")
    body: Dict = {"type": frame.type, "src": frame.src, "dst": frame.dst}
    if frame.seq is not None:
        body["seq"] = frame.seq
    if frame.lt is not None:
        body["lt"] = frame.lt
    if frame.payload is not None:
        body["payload"] = frame.payload.to_dict()
    if frame.boot is not None:
        body["boot"] = frame.boot.to_dict()
    if frame.nonce is not None:
        body["nonce"] = frame.nonce
    if frame.bound is not None:
        body["lower"] = frame.bound.lower
        body["upper"] = frame.bound.upper
    if frame.degraded:
        body["degraded"] = True
    if frame.age is not None:
        body["age"] = frame.age
    if frame.retry_after is not None:
        body["retry_after"] = frame.retry_after
    if frame.reason is not None:
        body["reason"] = frame.reason
    if frame.hops is not None:
        body["hops"] = frame.hops
    if frame.stratum is not None:
        body["stratum"] = frame.stratum
    if frame.meta:
        body["meta"] = dict(frame.meta)
    try:
        encoded = json.dumps(body, separators=(",", ":"), allow_nan=False).encode()
    except ValueError as exc:
        raise ProtocolError(f"frame body is not strict-JSON-safe: {exc}") from None
    if len(encoded) > MAX_BODY_BYTES:
        raise ProtocolError(
            f"frame body of {len(encoded)} bytes exceeds the {MAX_BODY_BYTES} cap"
        )
    return _HEADER.pack(MAGIC, WIRE_VERSION, len(encoded)) + encoded


# -- decode ----------------------------------------------------------------------------


def _envelope_src(body) -> Optional[ProcessorId]:
    if isinstance(body, dict) and isinstance(body.get("src"), str) and body["src"]:
        return body["src"]
    return None


def decode_frame(data: bytes) -> DecodeResult:
    """Parse untrusted bytes into a frame or a structured error.

    The version byte selects the body decoder per frame: 1 and 2 are the
    JSON body (unchanged between those versions), 3 is the binary codec.
    """
    if len(data) < _HEADER.size:
        return DecodeResult(
            error=WireError("short-frame", f"{len(data)} bytes < {_HEADER.size}-byte header")
        )
    magic, version, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        return DecodeResult(error=WireError("bad-magic", f"preamble {magic!r}"))
    if version not in (1, WIRE_VERSION, WIRE_VERSION_BINARY):
        return DecodeResult(
            error=WireError(
                "bad-version",
                f"wire version {version}, expected <= {WIRE_VERSION_BINARY}",
            )
        )
    if length > MAX_BODY_BYTES:
        return DecodeResult(
            error=WireError("oversized", f"declared body of {length} bytes exceeds cap"),
            version=version,
        )
    body_bytes = data[_HEADER.size :]
    if len(body_bytes) != length:
        return DecodeResult(
            error=WireError(
                "length-mismatch",
                f"declared {length} body bytes, got {len(body_bytes)} (truncated or padded)",
            ),
            version=version,
        )
    if version == WIRE_VERSION_BINARY:
        return _binary_codec().decode_body_binary(body_bytes)
    try:
        body = json.loads(body_bytes)
    except (ValueError, UnicodeDecodeError) as exc:
        return DecodeResult(error=WireError("bad-json", str(exc)))
    src = _envelope_src(body)
    if not isinstance(body, dict):
        return DecodeResult(error=WireError("bad-frame", "body is not an object"))
    ftype = body.get("type")
    if ftype not in FRAME_TYPES:
        return DecodeResult(error=WireError("bad-frame", f"unknown type {ftype!r}", src=src))
    dst = body.get("dst")
    if src is None or not isinstance(dst, str) or not dst:
        return DecodeResult(
            error=WireError("bad-frame", "missing or non-string src/dst", src=src)
        )
    seq = body.get("seq")
    lt = body.get("lt")
    meta = body.get("meta", {})
    if not isinstance(meta, dict):
        return DecodeResult(error=WireError("bad-frame", "meta is not an object", src=src))
    if ftype in ("sync", "ack"):
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            return DecodeResult(
                error=WireError("bad-frame", f"{ftype} needs a non-negative seq, got {seq!r}", src=src)
            )
    nonce = None
    bound = None
    degraded = False
    age = None
    retry_after = None
    reason = None
    hops = None
    stratum = None
    if ftype in SERVE_FRAME_TYPES or ftype in STRATA_FRAME_TYPES:
        nonce = body.get("nonce")
        if not isinstance(nonce, int) or isinstance(nonce, bool) or nonce < 0:
            return DecodeResult(
                error=WireError(
                    "bad-frame", f"{ftype} needs a non-negative nonce, got {nonce!r}", src=src
                )
            )
    if ftype in ("reply", "deleg"):
        lower = body.get("lower")
        upper = body.get("upper")
        for name, value in (("lower", lower), ("upper", upper)):
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not math.isfinite(value)
            ):
                return DecodeResult(
                    error=WireError(
                        "bad-frame", f"{ftype} needs a finite {name}, got {value!r}", src=src
                    )
                )
        if lower > upper:
            return DecodeResult(
                error=WireError(
                    "bad-frame", f"{ftype} bound is empty: [{lower}, {upper}]", src=src
                )
            )
        bound = ClockBound(float(lower), float(upper))
        degraded = body.get("degraded", False)
        if not isinstance(degraded, bool):
            return DecodeResult(
                error=WireError("bad-frame", f"{ftype} degraded flag is not a bool", src=src)
            )
        age = body.get("age", 0.0)
        if (
            isinstance(age, bool)
            or not isinstance(age, (int, float))
            or not math.isfinite(age)
            or age < 0
        ):
            return DecodeResult(
                error=WireError(
                    "bad-frame", f"{ftype} needs a finite non-negative age, got {age!r}", src=src
                )
            )
        age = float(age)
    if ftype == "deleg":
        hops = body.get("hops")
        if not isinstance(hops, int) or isinstance(hops, bool) or not (
            1 <= hops <= MAX_DELEGATION_HOPS
        ):
            # the K2 <= 2 indirection bound is part of the wire contract:
            # a frame claiming deeper indirection is rejected, not widened
            return DecodeResult(
                error=WireError(
                    "bad-frame",
                    f"deleg hops must be in [1, {MAX_DELEGATION_HOPS}], got {hops!r}",
                    src=src,
                )
            )
        stratum = body.get("stratum")
        if not isinstance(stratum, int) or isinstance(stratum, bool) or stratum < 0:
            return DecodeResult(
                error=WireError(
                    "bad-frame", f"deleg needs a non-negative stratum, got {stratum!r}", src=src
                )
            )
    if ftype == "shed":
        retry_after = body.get("retry_after")
        if (
            isinstance(retry_after, bool)
            or not isinstance(retry_after, (int, float))
            or not math.isfinite(retry_after)
            or retry_after < 0
        ):
            return DecodeResult(
                error=WireError(
                    "bad-frame",
                    f"shed needs a finite non-negative retry_after, got {retry_after!r}",
                    src=src,
                )
            )
        retry_after = float(retry_after)
        reason = body.get("reason", "overload")
        if not isinstance(reason, str) or not reason:
            return DecodeResult(
                error=WireError("bad-frame", "shed reason is not a non-empty string", src=src)
            )
    payload = None
    boot = None
    if ftype == "sync":
        if isinstance(lt, bool) or not isinstance(lt, (int, float)):
            return DecodeResult(
                error=WireError("bad-frame", f"sync needs a numeric lt, got {lt!r}", src=src)
            )
        lt = float(lt)
        try:
            payload = HistoryPayload.from_dict(body.get("payload", {}))
        except ValueError as exc:
            return DecodeResult(error=WireError("bad-payload", str(exc), src=src))
        if "boot" in body:
            try:
                boot = BootstrapSnapshot.from_dict(body["boot"])
            except ValueError as exc:
                return DecodeResult(error=WireError("bad-boot", str(exc), src=src))
    return DecodeResult(
        frame=Frame(
            type=ftype,
            src=src,
            dst=dst,
            seq=seq if ftype in ("sync", "ack") else None,
            lt=lt if ftype == "sync" else None,
            payload=payload,
            boot=boot,
            nonce=nonce,
            bound=bound,
            degraded=degraded,
            age=age,
            retry_after=retry_after,
            reason=reason,
            hops=hops,
            stratum=stratum,
            meta=dict(meta),
        ),
        version=version,
    )


def decode_frames(data: bytes):
    """Iterate the frames of one datagram (coalesced-flush receive path).

    A datagram may carry several concatenated self-framed frames; each is
    decoded independently (so one bad frame does not poison its
    neighbors) and yielded as a :class:`DecodeResult`.  When the header of
    the next frame cannot be trusted to delimit it - short or truncated
    input, bad magic, an oversized declaration - the structured error is
    yielded and iteration stops: there is no sound way to find the next
    boundary.
    """
    offset = 0
    total = len(data)
    while offset < total:
        chunk = data[offset:]
        if len(chunk) < _HEADER.size:
            yield decode_frame(chunk)  # short-frame
            return
        magic, version, length = _HEADER.unpack_from(chunk)
        if magic != MAGIC or length > MAX_BODY_BYTES:
            yield decode_frame(chunk)  # bad-magic / oversized
            return
        end = _HEADER.size + length
        if len(chunk) < end:
            yield decode_frame(chunk)  # length-mismatch (truncated)
            return
        yield decode_frame(chunk[:end])
        offset += end
