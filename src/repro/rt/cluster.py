"""Cluster harness: launch, sample, crash, and archive N live nodes.

:func:`run_cluster` stands up one :class:`~repro.rt.node.Node` per
configured processor on a shared transport (in-process loopback or real
UDP sockets), lets them gossip for ``duration`` seconds of wall time,
samples every node's :meth:`~repro.rt.node.Node.estimate_now` on a fixed
period, optionally injects a :class:`~repro.sim.faults.FaultPlan` through
:class:`~repro.rt.transport.FaultMiddleware` and crash/restart schedules
through :meth:`Node.stop`/:meth:`Node.start`, and finally merges every
node's local event log into one :class:`~repro.sim.trace.ExecutionTrace`.

The result is deliberately shaped like the simulator's
:class:`~repro.sim.runner.RunResult`: same sample records, same trace
type, and :meth:`RtRunResult.to_document` emits the exact
:mod:`repro.sim.serialize` version-2 document, so an archived live run
loads through :func:`~repro.sim.serialize.load_run` and flows into the
same oracles, claim checkers, and analysis CLI as a simulated one.  That
is the parity story of this subsystem: two execution engines, one
evidence format.

The source processor's clock is pinned to
:class:`~repro.rt.clock.MonotonicClockSource` - the source *defines*
real time, so sample truths are the shared time base's elapsed reading.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from ..core.events import ProcessorId
from ..core.specs import DriftSpec, SystemSpec, TransitSpec
from ..sim.faults import FaultPlan, RetransmitPolicy
from ..sim.runner import EstimateSample
from ..sim.serialize import (
    FORMAT_VERSION,
    samples_to_dicts,
    spec_to_dict,
    trace_to_dict,
)
from ..sim.trace import ExecutionTrace
from .clock import ClockSource, MonotonicClockSource, TimeBase
from .node import Node, NodeConfig, NodeStats
from .transport import Transport
from .wire import WIRE_CODECS

__all__ = [
    "CrashSchedule",
    "JoinSchedule",
    "ClusterConfig",
    "LiveCluster",
    "RtRunResult",
    "build_spec",
    "run_cluster",
    "run_cluster_sync",
    "dump_rt_run",
]


@dataclass(frozen=True)
class CrashSchedule:
    """Fail-stop ``proc`` at ``stop_at`` (elapsed s); restart at ``restart_at``."""

    proc: ProcessorId
    stop_at: float
    restart_at: Optional[float] = None

    def __post_init__(self):
        if self.stop_at < 0:
            raise SimulationError(f"stop_at must be non-negative, got {self.stop_at}")
        if self.restart_at is not None and self.restart_at <= self.stop_at:
            raise SimulationError("restart_at must come after stop_at")


@dataclass(frozen=True)
class JoinSchedule:
    """Hold ``proc`` out of the cluster until ``at`` (elapsed s), then start
    it with ``sponsor`` as its bootstrap neighbor."""

    proc: ProcessorId
    at: float
    sponsor: ProcessorId

    def __post_init__(self):
        if self.at < 0:
            raise SimulationError(f"join time must be non-negative, got {self.at}")
        if self.sponsor == self.proc:
            raise SimulationError(f"{self.proc!r} cannot sponsor itself")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to stand up one live cluster."""

    processors: Tuple[ProcessorId, ...]
    links: Tuple[Tuple[ProcessorId, ProcessorId], ...]
    source: Optional[ProcessorId] = None  # default: first processor
    duration: float = 3.0
    gossip_period: float = 0.25
    sample_period: float = 0.25
    #: advertised per-direction transit bounds (real networks: lower 0)
    transit: TransitSpec = field(default_factory=TransitSpec)
    #: per-processor hardware clocks; missing entries get a monotonic clock
    clocks: Mapping[ProcessorId, ClockSource] = field(default_factory=dict)
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)
    transport: str = "loopback"  # or "udp"
    #: loopback-only delivery delay/jitter
    loopback_delay: float = 0.0
    loopback_jitter: float = 0.0
    #: live fault injection through FaultMiddleware
    faults: Optional[FaultPlan] = None
    crashes: Tuple[CrashSchedule, ...] = ()
    #: late joiners: held out until their join time, then sponsored in
    joins: Tuple[JoinSchedule, ...] = ()
    gossip_jitter: float = 0.1
    seed: int = 0
    #: default wire codec for every node ("binary" self-negotiates down
    #: to JSON per peer, so mixing is always safe)
    codec: str = "binary"
    #: per-processor codec overrides, e.g. one legacy JSON node in an
    #: otherwise binary cluster
    codecs: Mapping[ProcessorId, str] = field(default_factory=dict)

    def __post_init__(self):
        if self.codec not in WIRE_CODECS:
            raise SimulationError(f"unknown wire codec {self.codec!r}")
        for proc, codec in self.codecs.items():
            if proc not in self.processors:
                raise SimulationError(f"codec configured for unknown processor {proc!r}")
            if codec not in WIRE_CODECS:
                raise SimulationError(f"unknown wire codec {codec!r} for {proc!r}")
        if len(self.processors) < 2:
            raise SimulationError("a cluster needs at least two processors")
        if self.transport not in ("loopback", "udp"):
            raise SimulationError(f"unknown transport kind {self.transport!r}")
        if self.duration <= 0 or self.sample_period <= 0:
            raise SimulationError("duration and sample_period must be positive")
        src = self.source_proc
        clock = self.clocks.get(src)
        if clock is not None and not isinstance(clock, MonotonicClockSource):
            raise SimulationError(
                f"the source {src!r} defines real time; its clock must be monotonic"
            )
        for proc in self.clocks:
            if proc not in self.processors:
                raise SimulationError(f"clock configured for unknown processor {proc!r}")
        for crash in self.crashes:
            if crash.proc == src:
                raise SimulationError("crashing the source leaves truth undefined")
            if crash.proc not in self.processors:
                raise SimulationError(f"crash schedule names unknown {crash.proc!r}")
        joiners = set()
        links = {tuple(sorted(edge)) for edge in self.links}
        for join in self.joins:
            if join.proc == src:
                raise SimulationError("the source cannot be a late joiner")
            for name in (join.proc, join.sponsor):
                if name not in self.processors:
                    raise SimulationError(f"join schedule names unknown {name!r}")
            if tuple(sorted((join.proc, join.sponsor))) not in links:
                raise SimulationError(
                    f"sponsor {join.sponsor!r} is not a neighbor of {join.proc!r}"
                )
            if join.proc in joiners:
                raise SimulationError(f"{join.proc!r} has two join schedules")
            joiners.add(join.proc)

    @property
    def source_proc(self) -> ProcessorId:
        return self.source if self.source is not None else self.processors[0]

    def clock_for(self, proc: ProcessorId) -> ClockSource:
        clock = self.clocks.get(proc)
        return clock if clock is not None else MonotonicClockSource()

    def codec_for(self, proc: ProcessorId) -> str:
        return self.codecs.get(proc, self.codec)


def build_spec(config: ClusterConfig) -> SystemSpec:
    """The advertised :class:`SystemSpec` of a cluster: clocks tell the truth.

    Each processor advertises exactly its configured clock's drift band,
    so every recorded execution is in-spec by construction and
    Theorem 2.1's soundness/optimality preconditions hold.
    """
    drift: Dict[ProcessorId, DriftSpec] = {
        proc: config.clock_for(proc).advertised for proc in config.processors
    }
    return SystemSpec.build(
        source=config.source_proc,
        processors=config.processors,
        links=config.links,
        drift=drift,
        default_transit=config.transit,
    )


@dataclass
class RtRunResult:
    """A finished live run, shaped like the simulator's RunResult."""

    spec: SystemSpec
    trace: ExecutionTrace
    samples: List[EstimateSample]
    #: final per-node snapshots, keyed by processor
    nodes: Dict[ProcessorId, NodeStats]
    messages_sent: int
    messages_lost: int
    #: serialize-v2 ``links`` rows: per-directed-link sent/lost/duplicated
    link_rows: List[Dict]
    #: the run was cut short (SIGINT / --timeout); evidence is partial
    aborted: bool = False
    #: per-node configured wire codec (what each node *advertises*; actual
    #: per-link traffic is whatever negotiation settled on)
    node_codecs: Dict[ProcessorId, str] = field(default_factory=dict)

    def soundness_violations(self) -> List[EstimateSample]:
        return [s for s in self.samples if not s.sound]

    def samples_for(
        self, proc: ProcessorId, channel: Optional[str] = None
    ) -> List[EstimateSample]:
        return [
            s
            for s in self.samples
            if s.proc == proc and (channel is None or s.channel == channel)
        ]

    def recoveries(self) -> Dict[ProcessorId, int]:
        """Per node: self-stabilization recoveries its estimator performed."""
        return {
            proc: stats.recoveries
            for proc, stats in self.nodes.items()
            if stats.recoveries
        }

    def reconvergence_after(
        self, rt0: float, proc: ProcessorId, channel: Optional[str] = None
    ) -> Tuple[float, int]:
        """Re-convergence after a disruption at elapsed time ``rt0``.

        Returns ``(rt_delta, samples_examined)`` exactly like the
        simulator's :meth:`~repro.sim.runner.RunResult.reconvergence_after`:
        the lag from ``rt0`` to the first sample of ``proc`` from which
        every remaining sample is sound and bounded, or ``(inf, n)`` if
        the tail never settles.  ``channel`` restricts the verdict to one
        sample channel (e.g. ``"strata"`` for federation-level bounds).

        Edge sentinel: a processor with **zero** samples after ``rt0``
        (crashed before its first estimate, or filtered out by
        ``channel``) yields ``(inf, 0)`` - never an exception.  Treat an
        infinite lag with a zero tail as "no evidence", not "diverged".
        """
        tail = [s for s in self.samples_for(proc, channel) if s.rt >= rt0]
        settled_from: Optional[float] = None
        for sample in tail:
            good = sample.sound and sample.bound.is_bounded
            if good and settled_from is None:
                settled_from = sample.rt
            elif not good:
                settled_from = None
        if settled_from is None:
            return float("inf"), len(tail)
        return settled_from - rt0, len(tail)

    def to_document(self) -> Dict:
        """The :mod:`repro.sim.serialize` v2 document of this run."""
        document = {
            "version": FORMAT_VERSION,
            "spec": spec_to_dict(self.spec),
            "trace": trace_to_dict(self.trace),
            "samples": samples_to_dicts(self.samples),
            "messages_sent": self.messages_sent,
            "messages_lost": self.messages_lost,
            "links": self.link_rows,
        }
        if self.node_codecs:
            # extra key, passes through load_run untouched; the wire-smoke
            # gate reads it to assert the mixed-codec shape actually ran
            document["codecs"] = dict(self.node_codecs)
        if self.aborted:
            # extra keys pass through load_run untouched; readers that
            # care (CI gates) can tell a clean run from a truncated one
            document["partial"] = True
        return document


def dump_rt_run(result: RtRunResult, path: str) -> None:
    """Archive a live run; loads back via :func:`repro.sim.serialize.load_run`."""
    with open(path, "w") as handle:
        json.dump(result.to_document(), handle)


def _make_transport(
    config: ClusterConfig,
    time_base: TimeBase,
    *,
    extra_procs: Sequence[ProcessorId] = (),
    extra_links: Sequence[Tuple[ProcessorId, ProcessorId]] = (),
    directory=None,
):
    """The cluster transport, optionally extended with serve-tier endpoints.

    ``extra_procs``/``extra_links`` register non-protocol endpoints (serve
    sockets, load clients) with the UDP address book and the fault
    topology, so a :class:`FaultPlan` can target client<->server links the
    same way it targets gossip links.

    The heavy lifting lives in :mod:`repro.rt.strata.membership` now: a
    single cluster is the one-tier instantiation of the federation's
    membership layer.  Pass a pre-populated
    :class:`~repro.rt.strata.membership.PeerDirectory` to share one
    address book (and hence one UDP address space) across clusters.
    """
    # imported here, not at module top: strata rides on this module, and
    # the lazy import keeps the cluster <-> strata dependency acyclic
    from .strata.membership import PeerDirectory, build_transport

    if directory is None:
        directory = PeerDirectory()
    for name in tuple(config.processors) + tuple(extra_procs):
        if name not in directory:
            directory.register(name)
    return build_transport(
        config.transport,
        directory,
        time_base=time_base,
        links=tuple(config.links) + tuple(extra_links),
        faults=config.faults,
        source=config.source_proc,
        loopback_delay=config.loopback_delay,
        loopback_jitter=config.loopback_jitter,
        seed=config.seed,
    ), directory


def _merge_trace(nodes: Sequence[Node]) -> ExecutionTrace:
    """One chronological trace from every node's local event log.

    Entries are ordered by shared-time-base real time; at equal readings
    (clock resolution) sends sort before receives so a message never
    appears to arrive before it left.
    """
    entries = []
    for node in nodes:
        entries.extend(node.trace_log)
    entries.sort(key=lambda pair: (pair[1], pair[0].is_receive, pair[0].proc, pair[0].seq))
    trace = ExecutionTrace()
    received = set()
    for event, rt in entries:
        trace.record(event, rt)
        if event.is_receive:
            received.add(event.send_eid)
    # a send with no matching receive anywhere is a lost message
    for event, _rt in entries:
        if event.is_send and event.eid not in received:
            trace.record_lost(event.eid)
    return trace


def _link_rows(nodes: Sequence[Node]) -> List[Dict]:
    rows = []
    for node in sorted(nodes, key=lambda n: n.proc):
        for peer in node.peers:
            stats = node.stats[peer]
            rows.append(
                {
                    "src": node.proc,
                    "dest": peer,
                    "sent": stats.sent,
                    "lost": stats.losses_signaled,
                    "duplicated": stats.duplicates,
                }
            )
    return rows


class LiveCluster:
    """A live cluster as a reusable object: nodes, transport, schedules.

    :func:`run_cluster` is a thin wrapper around this class.  Exposing
    the pieces lets the serving tier (:mod:`repro.rt.loadgen`) ride the
    same harness: attach :class:`~repro.rt.serve.ServeNode` companions
    that crash and restart with their host node, register extra
    fault-injectable endpoints, and interleave its own client traffic
    with the sampling loop.

    Lifecycle: ``await start()``; then ``await run_sampling(abort)``
    (or drive sampling yourself with :meth:`sample_once`); then
    ``await finish()``; finally read :meth:`result`.  ``finish`` must
    run even after an exception - it stops the transport.
    """

    def __init__(
        self,
        config: ClusterConfig,
        *,
        extra_procs: Sequence[ProcessorId] = (),
        extra_links: Sequence[Tuple[ProcessorId, ProcessorId]] = (),
        transport: Optional[Transport] = None,
        time_base: Optional[TimeBase] = None,
        directory=None,
    ):
        self.config = config
        self.spec = build_spec(config)
        self.time_base = time_base if time_base is not None else TimeBase()
        #: whether this cluster built (and therefore starts/stops) its
        #: transport; a federation injects one shared transport into many
        #: clusters and owns its lifecycle itself
        self.owns_transport = transport is None
        if transport is None:
            self.transport, self.directory = _make_transport(
                config,
                self.time_base,
                extra_procs=extra_procs,
                extra_links=extra_links,
                directory=directory,
            )
        else:
            self.transport = transport
            self.directory = directory
        #: hooks called as ``hook(node, rt, bound)`` for every recorded
        #: sample; the strata tier runner derives federation-channel
        #: samples from the same atomic reading
        self.on_sample: List = []
        self.sponsors = {join.proc: join.sponsor for join in config.joins}
        self.nodes = [
            Node(
                NodeConfig(
                    proc=proc,
                    spec=self.spec,
                    gossip_period=config.gossip_period,
                    jitter=config.gossip_jitter,
                    retransmit=config.retransmit,
                    seed=config.seed + index,
                    sponsor=self.sponsors.get(proc),
                    codec=config.codec_for(proc),
                ),
                self.transport,
                clock=config.clock_for(proc),
                time_base=self.time_base,
            )
            for index, proc in enumerate(config.processors)
        ]
        self.by_name = {node.proc: node for node in self.nodes}
        self.samples: List[EstimateSample] = []
        #: per-processor companions (e.g. ServeNodes) started/stopped
        #: in lockstep with their host node by the crash driver
        self._companions: Dict[ProcessorId, List] = {}
        self._driver_tasks: List[asyncio.Task] = []
        self._started = False

    def attach_companion(self, proc: ProcessorId, companion) -> None:
        """Tie ``companion`` (``.start()``/``.stop()``) to ``proc``'s fate.

        When a :class:`CrashSchedule` fail-stops the host node, its
        companions stop first (a dead server answers nothing) and
        restart after the node does.  Must be called before
        :meth:`start`; started companions are stopped by
        :meth:`finish`.
        """
        if self._started:
            raise SimulationError("companions must attach before the cluster starts")
        if proc not in self.by_name:
            raise SimulationError(f"no node {proc!r} to attach a companion to")
        self._companions.setdefault(proc, []).append(companion)

    async def _crash_driver(self, crash: CrashSchedule) -> None:
        node = self.by_name[crash.proc]
        companions = self._companions.get(crash.proc, [])
        await asyncio.sleep(max(0.0, crash.stop_at - self.time_base.elapsed()))
        for companion in companions:
            await companion.stop()
        await node.stop()
        if crash.restart_at is not None:
            await asyncio.sleep(
                max(0.0, crash.restart_at - self.time_base.elapsed())
            )
            await node.start()
            for companion in companions:
                await companion.start()

    async def _join_driver(self, join: JoinSchedule) -> None:
        await asyncio.sleep(max(0.0, join.at - self.time_base.elapsed()))
        await self.by_name[join.proc].start()

    async def start(self) -> None:
        """Start transport, non-joiner nodes and companions, and drivers."""
        self._started = True
        if self.owns_transport:
            await self.transport.start()
        for node in self.nodes:
            if node.proc not in self.sponsors:
                await node.start()
        for proc, companions in self._companions.items():
            if proc not in self.sponsors:
                for companion in companions:
                    await companion.start()
        loop = asyncio.get_running_loop()
        self._driver_tasks = [
            loop.create_task(self._crash_driver(crash))
            for crash in self.config.crashes
        ] + [
            loop.create_task(self._join_driver(join)) for join in self.config.joins
        ]

    def sample_once(self) -> None:
        """Record one estimate sample from every running node."""
        for node in self.nodes:
            if not node.running:
                continue  # a crashed processor estimates nothing
            # one atomic reading serves as both sampling instant and
            # truth: the source clock defines real time
            rt, bound = node.estimate_at_now()
            self.samples.append(
                EstimateSample(rt=rt, proc=node.proc, channel="rt", bound=bound, truth=rt)
            )
            for hook in self.on_sample:
                hook(node, rt, bound)

    async def run_sampling(self, abort: Optional[asyncio.Event] = None) -> bool:
        """Sample on the configured period until ``duration`` elapses.

        Setting ``abort`` cuts the run short at the next period edge;
        returns True when that happened (the run is partial).
        """
        config = self.config
        while self.time_base.elapsed() < config.duration:
            if abort is not None and abort.is_set():
                return True
            wait = min(config.sample_period, config.duration - self.time_base.elapsed())
            if abort is None:
                await asyncio.sleep(wait)
            else:
                try:
                    await asyncio.wait_for(abort.wait(), timeout=wait)
                    return True
                except asyncio.TimeoutError:
                    pass
            self.sample_once()
        return False

    async def finish(self) -> None:
        """Cancel drivers, stop companions and nodes, stop the transport."""
        try:
            for task in self._driver_tasks:
                task.cancel()
            for task in self._driver_tasks:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            for companions in self._companions.values():
                for companion in companions:
                    await companion.stop()
            for node in self.nodes:
                await node.stop()
            # drain in-flight loopback deliveries so the trace is settled
            await asyncio.sleep(0)
        finally:
            if self.owns_transport:
                await self.transport.stop()

    def result(self, *, aborted: bool = False) -> RtRunResult:
        """Assemble the evidence collected so far into an RtRunResult."""
        trace = _merge_trace(self.nodes)
        sent = sum(s.sent for node in self.nodes for s in node.stats.values())
        return RtRunResult(
            spec=self.spec,
            trace=trace,
            samples=self.samples,
            nodes={node.proc: node.snapshot() for node in self.nodes},
            messages_sent=sent,
            messages_lost=len(trace.lost_sends),
            link_rows=_link_rows(self.nodes),
            aborted=aborted,
            node_codecs={
                node.proc: node.config.codec for node in self.nodes
            },
        )


async def run_cluster(
    config: ClusterConfig, *, abort: Optional[asyncio.Event] = None
) -> RtRunResult:
    """Run one live cluster to completion and collect the evidence.

    ``abort`` (e.g. set from a SIGINT handler or timeout watchdog) ends
    the run early; the result is then marked ``aborted`` and its
    document carries ``"partial": true``.
    """
    cluster = LiveCluster(config)
    aborted = False
    try:
        await cluster.start()
        aborted = await cluster.run_sampling(abort)
    finally:
        await cluster.finish()
    return cluster.result(aborted=aborted)


def run_cluster_sync(config: ClusterConfig) -> RtRunResult:
    """Blocking wrapper: run the cluster on a fresh event loop."""
    return asyncio.run(run_cluster(config))
