"""Async datagram transports for the real-time runtime.

A :class:`Transport` moves opaque byte frames between named endpoints
with datagram semantics: fire-and-forget, unordered, unreliable.  That
is exactly the service model the estimators were built for
(:class:`~repro.core.csa.EfficientCSA` in unreliable mode tolerates
loss, reordering, and duplication), so nothing above this layer needs to
know which implementation is underneath:

* :class:`LoopbackTransport` - in-process delivery on the running asyncio
  loop, with optional seeded delay jitter.  Deterministic enough for
  tests, fast enough for thousand-message soaks.
* :class:`FaultMiddleware` - wraps any transport and applies a
  :class:`~repro.sim.faults.FaultPlan` to live traffic, reusing the
  simulator's :class:`~repro.sim.faults.ActiveFaults` verdicts
  (crash windows, partitions, bursts, duplication with echo delay,
  delay excursions) keyed by the shared :class:`~repro.rt.clock.TimeBase`
  elapsed time.  One fault vocabulary, two execution engines.
* :class:`UDPTransport` - one datagram socket per registered endpoint;
  real kernel-level UDP on localhost or a LAN.

Handlers are synchronous callables ``(data: bytes) -> None`` invoked on
the event loop; exceptions raised by a handler are swallowed after being
counted, because a transport must never die from one bad frame.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from ..core.errors import SimulationError
from ..core.events import ProcessorId, link_id
from ..sim.faults import FaultPlan
from .clock import TimeBase

__all__ = [
    "Transport",
    "LoopbackTransport",
    "FaultMiddleware",
    "UDPTransport",
]

Handler = Callable[[bytes], None]


class Transport:
    """Named-endpoint datagram service; subclass per medium."""

    def __init__(self):
        self._handlers: Dict[ProcessorId, Handler] = {}
        #: frames a handler raised on (the frame is consumed, the loop lives)
        self.handler_errors = 0

    async def start(self) -> None:
        """Bring the medium up; registration may happen before or after."""

    async def stop(self) -> None:
        """Tear the medium down; pending deliveries may be dropped."""

    def register(self, name: ProcessorId, handler: Handler) -> None:
        """Attach ``handler`` as the receiver for endpoint ``name``."""
        self._handlers[name] = handler

    def unregister(self, name: ProcessorId) -> None:
        """Detach the endpoint; frames addressed to it are dropped."""
        self._handlers.pop(name, None)

    def send(self, src: ProcessorId, dest: ProcessorId, data: bytes) -> None:
        """Fire-and-forget: queue ``data`` for ``dest``. Never raises."""
        raise NotImplementedError

    def _dispatch(self, dest: ProcessorId, data: bytes) -> None:
        handler = self._handlers.get(dest)
        if handler is None:
            return  # endpoint gone (crashed/unregistered): datagram lost
        try:
            handler(data)
        except Exception:
            self.handler_errors += 1


class LoopbackTransport(Transport):
    """In-process delivery on the current event loop.

    With ``delay == jitter == 0`` frames are delivered via
    ``call_soon`` - ordered per sender, near-instant.  A positive delay
    or seeded jitter schedules each frame independently, which (like real
    networks) can reorder.
    """

    def __init__(self, *, delay: float = 0.0, jitter: float = 0.0, seed: int = 0):
        super().__init__()
        if delay < 0 or jitter < 0:
            raise SimulationError("loopback delay/jitter must be non-negative")
        self.delay = delay
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._running = False

    async def start(self) -> None:
        self._running = True

    async def stop(self) -> None:
        self._running = False

    def send(self, src: ProcessorId, dest: ProcessorId, data: bytes) -> None:
        if not self._running:
            return
        loop = asyncio.get_running_loop()
        lag = self.delay + (self._rng.uniform(0.0, self.jitter) if self.jitter else 0.0)
        if lag <= 0:
            loop.call_soon(self._dispatch, dest, data)
        else:
            loop.call_later(lag, self._dispatch, dest, data)


class _FaultTopology:
    """The duck-typed ``network`` object :meth:`FaultPlan.bind` validates against."""

    def __init__(
        self,
        procs: Iterable[ProcessorId],
        links: Iterable[Tuple[ProcessorId, ProcessorId]],
        source: ProcessorId,
    ):
        self.processors: Set[ProcessorId] = set(procs)
        self.links = {link_id(u, v) for u, v in links}
        self.source = source


class FaultMiddleware(Transport):
    """Apply a simulator :class:`FaultPlan` to a live transport.

    Every :meth:`send` consults the plan's :class:`ActiveFaults` at the
    current :class:`TimeBase` reading, in the same order the simulation
    engine does: sender crashed -> silently suppressed; receiver crashed
    or partition/burst verdict -> dropped in transit; otherwise delivered,
    possibly duplicated (the echo trails by a seeded fraction of the echo
    delay) and/or held back by an in-window delay excursion.

    Loss injected here is *real* loss to the protocol stack above: the
    sender's ack timer fires, retransmission kicks in, and the estimator
    sees ``on_loss_detected`` - the PR 1 machinery exercised end-to-end
    over an actual transport.
    """

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        time_base: TimeBase,
        *,
        procs: Iterable[ProcessorId],
        links: Iterable[Tuple[ProcessorId, ProcessorId]],
        source: ProcessorId,
    ):
        super().__init__()
        if plan.has_out_of_spec():
            # delay excursions are representable (they just delay frames) but
            # drift excursions act on clocks, which live above the transport
            for injection in plan.injections:
                if type(injection).__name__ == "DriftExcursion":
                    raise SimulationError(
                        "FaultMiddleware cannot apply drift excursions; "
                        "use a drifting ClockSource instead"
                    )
        self.inner = inner
        self.active = plan.bind(_FaultTopology(procs, links, source))
        self.time_base = time_base
        #: middleware verdict counters, mirroring ActiveFaults.injected
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    async def start(self) -> None:
        await self.inner.start()

    async def stop(self) -> None:
        await self.inner.stop()

    def register(self, name: ProcessorId, handler: Handler) -> None:
        self.inner.register(name, handler)

    def unregister(self, name: ProcessorId) -> None:
        self.inner.unregister(name)

    def send(self, src: ProcessorId, dest: ProcessorId, data: bytes) -> None:
        rt = self.time_base.elapsed()
        if self.active.crashed(src, rt):
            self.dropped += 1
            return  # a crashed sender emits nothing
        if self.active.crashed(dest, rt) or self.active.drop_in_transit(src, dest, rt):
            self.dropped += 1
            return
        extra = self.active.delay_excursion(src, dest, rt)
        if extra is not None:
            self.delayed += 1
            self._later(extra, src, dest, data)
        else:
            self.inner.send(src, dest, data)
        if self.active.duplicated(src, dest, rt):
            self.duplicated += 1
            self._later(self.active.echo_delay(max(extra or 0.0, 0.05)), src, dest, data)

    def _later(self, lag: float, src: ProcessorId, dest: ProcessorId, data: bytes) -> None:
        asyncio.get_running_loop().call_later(
            max(lag, 0.0), self.inner.send, src, dest, data
        )


class _DatagramReceiver(asyncio.DatagramProtocol):
    """Feed received datagrams to the transport's dispatch for one endpoint."""

    def __init__(self, transport: "UDPTransport", name: ProcessorId):
        self._owner = transport
        self._name = name

    def datagram_received(self, data: bytes, addr) -> None:
        self._owner._dispatch(self._name, data)

    def error_received(self, exc) -> None:
        self._owner.socket_errors += 1


class UDPTransport(Transport):
    """One UDP socket per endpoint, addressed through a shared name map.

    ``addresses`` maps endpoint names to ``(host, port)``.  Port 0 is
    resolved at :meth:`start` time and written back into the (shared)
    mapping, so co-located nodes discover each other's ephemeral ports
    without extra plumbing; split-host deployments pass fixed ports.
    """

    def __init__(self, addresses: Dict[ProcessorId, Tuple[str, int]]):
        super().__init__()
        self.addresses = addresses
        self._endpoints: Dict[ProcessorId, asyncio.DatagramTransport] = {}
        self.socket_errors = 0
        self._started = False

    async def start(self) -> None:
        self._started = True
        for name in list(self._handlers):
            await self._open(name)

    async def stop(self) -> None:
        self._started = False
        for transport in self._endpoints.values():
            transport.close()
        self._endpoints.clear()

    def register(self, name: ProcessorId, handler: Handler) -> None:
        if name not in self.addresses:
            raise SimulationError(f"no address configured for endpoint {name!r}")
        super().register(name, handler)

    def unregister(self, name: ProcessorId) -> None:
        super().unregister(name)
        transport = self._endpoints.pop(name, None)
        if transport is not None:
            transport.close()

    async def ensure_endpoint(self, name: ProcessorId) -> None:
        """Open (or reopen, after unregister) the socket for ``name``."""
        if self._started and name in self._handlers and name not in self._endpoints:
            await self._open(name)

    async def _open(self, name: ProcessorId) -> None:
        host, port = self.addresses[name]
        loop = asyncio.get_running_loop()
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _DatagramReceiver(self, name), local_addr=(host, port)
        )
        bound = transport.get_extra_info("sockname")
        self.addresses[name] = (host, bound[1])
        self._endpoints[name] = transport

    def send(self, src: ProcessorId, dest: ProcessorId, data: bytes) -> None:
        endpoint = self._endpoints.get(src)
        addr = self.addresses.get(dest)
        if endpoint is None or endpoint.is_closing() or addr is None:
            return  # sender not up (or peer unknown): datagram lost
        try:
            endpoint.sendto(data, addr)
        except OSError:
            self.socket_errors += 1
