"""The struct-packed binary body format (wire version 3).

The framing header (magic, version byte, u32 body length) is shared with
the JSON codec (:mod:`repro.rt.wire`); this module packs and parses the
*body* of version-3 frames.  Wire version 3 exists because the profile of
real gossip traffic is a few hot field shapes repeated thousands of
times: JSON spends most of each sync frame re-spelling key names and
decimal-printing floats, and :func:`json.loads` dominates the node's
receive path.  The binary body removes both costs:

``body := flags u8 | packed...`` where bit 0 of ``flags`` marks a
zlib-compressed remainder, and ``packed`` is::

    type u8                     index into FRAME_TYPES
    strings                     varint count, then varint-length utf8 each
    src varint, dst varint      string-table indices
    <per-type fields>           see below
    meta                        varint-length strict-JSON blob ('' = {})

Integers are unsigned LEB128 varints; signed quantities use zigzag.
Per-type fields:

* ``hello``/``join`` - nothing beyond the meta trailer.
* ``ack`` - ``seq`` varint.
* ``sync`` - ``seq`` varint, ``lt`` f64, the packed history payload, and
  a ``boot`` presence byte followed by a varint-length JSON blob of
  ``BootstrapSnapshot.to_dict()`` when present.  Bootstrap snapshots ride
  one frame per join handshake - a cold path - so they stay JSON inside
  the binary body rather than doubling the packed surface.
* ``probe``/``dreq`` - ``nonce`` varint.
* ``reply`` - ``nonce`` varint, ``lower``/``upper`` f64, ``degraded``
  u8, ``age`` f64.
* ``deleg`` - the ``reply`` fields plus ``hops`` u8 and ``stratum``
  varint.
* ``shed`` - ``nonce`` varint, ``retry_after`` f64, ``reason`` string
  index.

The history payload is where the compaction pays: records are a packed
event array with **delta-encoded** ``seq`` (zigzag varint of the running
difference) and **losslessly delta-encoded** ``lt``: the zigzag of the
difference between consecutive IEEE-754 bit patterns, emitted as one
byte when it fits in 7 bits, else as ``0x80|n`` followed by the ``n``
big-endian magnitude bytes.  Neighbouring gossip timestamps share
exponent and high mantissa bits, so the deltas are short, and
bit-pattern arithmetic makes the round trip exact; the length-prefixed
form parses in a single ``int.from_bytes`` instead of a per-byte varint
loop.  Loss flags are packed ``(proc index, seq)`` varint pairs.

Bodies larger than :data:`COMPRESS_THRESHOLD` are zlib-compressed when
that actually helps; decompression is bounded by ``MAX_BODY_BYTES`` so a
hostile peer cannot smuggle a decompression bomb past the frame cap.

**Decoding never raises** and mirrors the JSON decoder's taxonomy:
structural failures are ``bad-frame`` (with the claimed ``src`` once the
string table and envelope parsed), payload records that fail validation
are ``bad-payload``, snapshot blobs ``bad-boot``.  Encode/decode is
strictly symmetric: ``decode(encode(f)).frame == f`` for every frame the
constructors in :mod:`repro.rt.wire` can build, which the differential
fuzz suite (:mod:`tests.rt.test_codec`) enforces against the JSON round
trip.
"""

from __future__ import annotations

import json
import math
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from ..core.bootstrap import BootstrapSnapshot
from ..core.errors import ProtocolError
from ..core.events import Event, EventId, EventKind
from ..core.history import HistoryPayload
from ..core.intervals import ClockBound
from .wire import (
    FRAME_TYPES,
    MAGIC,
    MAX_BODY_BYTES,
    MAX_DELEGATION_HOPS,
    WIRE_VERSION_BINARY,
    DecodeResult,
    Frame,
    WireError,
)

__all__ = [
    "COMPRESS_THRESHOLD",
    "encode_frame_binary",
    "decode_body_binary",
]

#: bodies above this size are zlib-compressed (when compression shrinks
#: them); small frames skip the codec round trip entirely
COMPRESS_THRESHOLD = 1024

_HEADER = struct.Struct(">2sBI")
_F64 = struct.Struct(">d")
_U64 = struct.Struct(">Q")

_TYPE_INDEX = {name: i for i, name in enumerate(FRAME_TYPES)}

_KIND_CODE = {EventKind.SEND: 0, EventKind.RECEIVE: 1, EventKind.INTERNAL: 2}
_KIND_FROM_CODE = {code: kind for kind, code in _KIND_CODE.items()}

#: flags-byte bits
_FLAG_ZLIB = 0x01

_INF = math.inf
_NEG_INF = -math.inf


# -- primitives ------------------------------------------------------------------------


def _put_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _put_zigzag(out: bytearray, value: int) -> None:
    _put_varint(out, (value << 1) if value >= 0 else ((-value) << 1) - 1)


class _Truncated(Exception):
    """Internal decode failure; converted to a WireError, never escapes."""


class _Reader:
    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0
        self.end = len(data)

    def varint(self) -> int:
        data, pos, end = self.data, self.pos, self.end
        result = 0
        shift = 0
        while True:
            if pos >= end:
                raise _Truncated("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise _Truncated("varint overflow")
        self.pos = pos
        return result

    def zigzag(self) -> int:
        raw = self.varint()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

    def u8(self) -> int:
        if self.pos >= self.end:
            raise _Truncated("truncated byte")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def f64(self) -> float:
        if self.pos + 8 > self.end:
            raise _Truncated("truncated f64")
        (value,) = _F64.unpack_from(self.data, self.pos)
        self.pos += 8
        return value

    def raw(self, length: int) -> bytes:
        if length < 0 or self.pos + length > self.end:
            raise _Truncated(f"truncated field of {length} bytes")
        chunk = self.data[self.pos : self.pos + length]
        self.pos += length
        return chunk

    def blob(self) -> bytes:
        return self.raw(self.varint())

    def done(self) -> bool:
        return self.pos == self.end


# -- encode ----------------------------------------------------------------------------


class _StringTable:
    """Collects the distinct strings of a frame; emitted once, referenced

    by varint index.  Processor names repeat heavily inside payloads, so
    interning them is most of the sync-frame size win after the key-name
    removal."""

    __slots__ = ("index", "names")

    def __init__(self):
        self.index: Dict[str, int] = {}
        self.names: List[str] = []

    def add(self, name: str) -> int:
        idx = self.index.get(name)
        if idx is None:
            idx = self.index[name] = len(self.names)
            self.names.append(name)
        return idx

    def emit(self, out: bytearray) -> None:
        _put_varint(out, len(self.names))
        for name in self.names:
            encoded = name.encode("utf-8")
            _put_varint(out, len(encoded))
            out.extend(encoded)


def _pack_payload(out: bytearray, table: _StringTable, payload: HistoryPayload) -> None:
    # fully inlined: this loop runs once per record of every sync frame a
    # node emits, so varint emission is open-coded for the one-byte common
    # case instead of calling _put_varint/_put_zigzag per field, and the
    # event kind is resolved by identity (enum __hash__ is a Python-level
    # call and shows up hot under profile)
    append = out.append
    extend = out.extend
    index = table.index
    names = table.names
    f64_pack = _F64.pack
    internal_kind = EventKind.INTERNAL
    send_kind = EventKind.SEND
    _put_varint(out, len(payload.records))
    prev_seq = 0
    prev_bits = 0
    for event in payload.records:
        eid = event.eid
        ekind = event.kind
        kind = 2 if ekind is internal_kind else (0 if ekind is send_kind else 1)
        append(kind)
        proc = eid.proc
        idx = index.get(proc)
        if idx is None:
            idx = index[proc] = len(names)
            names.append(proc)
        if idx < 128:
            append(idx)
        else:
            _put_varint(out, idx)
        seq = eid.seq
        delta = seq - prev_seq
        prev_seq = seq
        zz = (delta << 1) if delta >= 0 else ((-delta) << 1) - 1
        if zz < 128:
            append(zz)
        else:
            _put_varint(out, zz)
        bits = int.from_bytes(f64_pack(event.lt), "big")
        delta = bits - prev_bits
        prev_bits = bits
        zz = (delta << 1) if delta >= 0 else ((-delta) << 1) - 1
        if zz < 128:
            append(zz)
        else:
            chunk = zz.to_bytes((zz.bit_length() + 7) >> 3, "big")
            append(0x80 | len(chunk))
            extend(chunk)
        if kind == 0:
            dest = event.dest
            idx = index.get(dest)
            if idx is None:
                idx = index[dest] = len(names)
                names.append(dest)
            _put_varint(out, idx)
        elif kind == 1:
            send_eid = event.send_eid
            sproc = send_eid.proc
            idx = index.get(sproc)
            if idx is None:
                idx = index[sproc] = len(names)
                names.append(sproc)
            _put_varint(out, idx)
            _put_varint(out, send_eid.seq)
    _put_varint(out, len(payload.loss_flags))
    for flag in payload.loss_flags:
        _put_varint(out, table.add(flag.proc))
        _put_varint(out, flag.seq)


def _json_blob(out: bytearray, document) -> None:
    try:
        encoded = json.dumps(document, separators=(",", ":"), allow_nan=False).encode()
    except ValueError as exc:
        raise ProtocolError(f"frame body is not strict-JSON-safe: {exc}") from None
    _put_varint(out, len(encoded))
    out.extend(encoded)


def encode_frame_binary(frame: Frame) -> bytes:
    """Serialize ``frame`` as a version-3 binary frame.

    Raises :class:`ProtocolError` on local misuse (an oversized body, a
    non-JSON-safe meta) exactly like the JSON encoder.
    """
    table = _StringTable()
    packed = bytearray()
    src_idx = table.add(frame.src)
    dst_idx = table.add(frame.dst)
    fields = bytearray()
    ftype = frame.type
    if ftype == "ack":
        fields_seq = frame.seq
        if fields_seq is None:
            raise ProtocolError("ack frames need a seq")
        _put_varint(fields, fields_seq)
    elif ftype == "sync":
        if frame.seq is None or frame.lt is None or frame.payload is None:
            raise ProtocolError("sync frames need seq, lt, and a payload")
        _put_varint(fields, frame.seq)
        fields.extend(_F64.pack(frame.lt))
        _pack_payload(fields, table, frame.payload)
        if frame.boot is not None:
            fields.append(1)
            _json_blob(fields, frame.boot.to_dict())
        else:
            fields.append(0)
    elif ftype in ("probe", "dreq"):
        _put_varint(fields, _require_nonce(frame))
    elif ftype in ("reply", "deleg"):
        if frame.bound is None:
            raise ProtocolError(f"{ftype} frames need a bound")
        _put_varint(fields, _require_nonce(frame))
        fields.extend(_F64.pack(frame.bound.lower))
        fields.extend(_F64.pack(frame.bound.upper))
        fields.append(1 if frame.degraded else 0)
        fields.extend(_F64.pack(frame.age if frame.age is not None else 0.0))
        if ftype == "deleg":
            if frame.hops is None or frame.stratum is None:
                raise ProtocolError("deleg frames need hops and stratum")
            fields.append(frame.hops)
            _put_varint(fields, frame.stratum)
    elif ftype == "shed":
        if frame.retry_after is None or not frame.reason:
            raise ProtocolError("shed frames need retry_after and a reason")
        _put_varint(fields, _require_nonce(frame))
        fields.extend(_F64.pack(frame.retry_after))
        _put_varint(fields, table.add(frame.reason))
    elif ftype not in ("hello", "join"):
        raise ProtocolError(f"unknown frame type {ftype!r}")
    # string table first (it is only complete once the fields packed)
    packed.append(_TYPE_INDEX[ftype])
    table.emit(packed)
    _put_varint(packed, src_idx)
    _put_varint(packed, dst_idx)
    packed.extend(fields)
    if frame.meta:
        _json_blob(packed, dict(frame.meta))
    else:
        _put_varint(packed, 0)
    body = bytes(packed)
    flags = 0
    if len(body) > COMPRESS_THRESHOLD:
        squeezed = zlib.compress(body, 6)
        if len(squeezed) < len(body):
            body = squeezed
            flags |= _FLAG_ZLIB
    body = bytes([flags]) + body
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the {MAX_BODY_BYTES} cap"
        )
    return _HEADER.pack(MAGIC, WIRE_VERSION_BINARY, len(body)) + body


def _require_nonce(frame: Frame) -> int:
    if frame.nonce is None:
        raise ProtocolError(f"{frame.type} frames need a nonce")
    return frame.nonce


# -- decode ----------------------------------------------------------------------------


def _bad(detail: str, src: Optional[str] = None) -> DecodeResult:
    return DecodeResult(
        error=WireError("bad-frame", detail, src=src), version=WIRE_VERSION_BINARY
    )


def _finite(value: float) -> bool:
    return math.isfinite(value)


#: interned :class:`EventId` values.  An event id is a pure value - the
#: pair fully determines the object - so sharing instances across decoded
#: frames is observably transparent, and gossip traffic re-reports the
#: same ids to every neighbor.  Bounded: the cache is simply dropped when
#: full (ids age out naturally as the execution advances).
_EID_CACHE: Dict[Tuple[str, int], EventId] = {}
_EID_CACHE_MAX = 1 << 16


def _intern_eid(proc: str, seq: int) -> EventId:
    cache = _EID_CACHE
    key = (proc, seq)
    eid = cache.get(key)
    if eid is None:
        if len(cache) >= _EID_CACHE_MAX:
            cache.clear()
        eid = cache[key] = EventId(proc, seq)
    return eid


#: interned decoded :class:`Event` records, keyed by their full field
#: tuple (with ``lt`` as its raw bit pattern, so a hit skips the float
#: conversion too).  An event is a frozen pure value and gossip
#: re-reports the same records to every neighbor of every hop, so in
#: steady state nearly every record of a sync frame is a hit.  Key
#: lengths disambiguate the kind: internal ``(proc, seq, bits)``, send
#: ``(proc, seq, bits, dest)``, receive
#: ``(proc, seq, bits, send_proc, send_seq)``.
_EVENT_CACHE: Dict[tuple, Event] = {}
_EVENT_CACHE_MAX = 1 << 16


def _unpack_payload(
    reader: _Reader, strings: List[str]
) -> Tuple[Optional[HistoryPayload], Optional[str]]:
    """Parse the packed payload; returns ``(payload, error_detail)``.

    The record loop is the receive hot path of every gossip node, so it
    is open-coded: varints are parsed inline against local bindings, and
    records are materialised through ``__new__`` plus a ``__dict__`` swap
    - the exact field set (including the derived ``link``) that
    :class:`Event`'s constructor would produce, with every constructor
    validation replicated inline, minus the per-field ``__setattr__``
    round trips.
    """
    data = reader.data
    pos = reader.pos
    end = reader.end
    count = reader.varint()
    pos = reader.pos
    if count > MAX_BODY_BYTES:
        return None, f"implausible record count {count}"
    records: List[Event] = []
    append = records.append
    event_new = Event.__new__
    set_raw = object.__setattr__
    event_cache = _EVENT_CACHE
    cache_get = event_cache.get
    f64_unpack = _F64.unpack
    send_kind = EventKind.SEND
    receive_kind = EventKind.RECEIVE
    internal_kind = EventKind.INTERNAL
    n_strings = len(strings)
    prev_seq = 0
    prev_bits = 0
    try:
        for _ in range(count):
            if pos >= end:
                raise _Truncated("truncated record")
            kind_code = data[pos]
            pos += 1
            # proc index varint (one byte in the common case)
            byte = data[pos]
            pos += 1
            if byte < 128:
                idx = byte
            else:
                idx = byte & 0x7F
                shift = 7
                while True:
                    byte = data[pos]
                    pos += 1
                    idx |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
            if idx >= n_strings:
                raise _Truncated(f"string index {idx} out of range")
            proc = strings[idx]
            if not proc:
                return None, "event record needs a non-empty proc"
            # seq zigzag delta
            byte = data[pos]
            pos += 1
            if byte < 128:
                raw = byte
            else:
                raw = byte & 0x7F
                shift = 7
                while True:
                    byte = data[pos]
                    pos += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
            seq = prev_seq + ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1))
            if seq < 0:
                return None, f"event record needs a non-negative seq, got {seq}"
            prev_seq = seq
            # lt bit-pattern delta: one byte, or 0x80|n then n magnitude bytes
            byte = data[pos]
            pos += 1
            if byte < 128:
                raw = byte
            else:
                n = byte & 0x7F
                nxt = pos + n
                if nxt > end:
                    raise _Truncated("truncated lt delta")
                raw = int.from_bytes(data[pos:nxt], "big")
                pos = nxt
            bits = (
                prev_bits + ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1))
            ) & 0xFFFFFFFFFFFFFFFF
            prev_bits = bits
            if kind_code == 2:
                key = (proc, seq, bits)
                event = cache_get(key)
                if event is None:
                    (lt,) = f64_unpack(bits.to_bytes(8, "big"))
                    if lt != lt or lt == _INF or lt == _NEG_INF:
                        return None, f"event local time must be finite, got {lt!r}"
                    event = event_new(Event)
                    set_raw(
                        event,
                        "__dict__",
                        {
                            "eid": _intern_eid(proc, seq),
                            "lt": lt,
                            "kind": internal_kind,
                            "dest": None,
                            "send_eid": None,
                            "link": None,
                        },
                    )
                    if len(event_cache) >= _EVENT_CACHE_MAX:
                        event_cache.clear()
                    event_cache[key] = event
            elif kind_code == 0:
                byte = data[pos]
                pos += 1
                if byte < 128:
                    idx = byte
                else:
                    idx = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        idx |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                if idx >= n_strings:
                    raise _Truncated(f"string index {idx} out of range")
                dest = strings[idx]
                key = (proc, seq, bits, dest)
                event = cache_get(key)
                if event is None:
                    (lt,) = f64_unpack(bits.to_bytes(8, "big"))
                    if lt != lt or lt == _INF or lt == _NEG_INF:
                        return None, f"event local time must be finite, got {lt!r}"
                    if not dest:
                        return None, "send record needs a non-empty dest"
                    if dest == proc:
                        return None, f"a link must join two distinct processors, got {proc!r} twice"
                    event = event_new(Event)
                    set_raw(
                        event,
                        "__dict__",
                        {
                            "eid": _intern_eid(proc, seq),
                            "lt": lt,
                            "kind": send_kind,
                            "dest": dest,
                            "send_eid": None,
                            "link": (proc, dest) if proc <= dest else (dest, proc),
                        },
                    )
                    if len(event_cache) >= _EVENT_CACHE_MAX:
                        event_cache.clear()
                    event_cache[key] = event
            elif kind_code == 1:
                byte = data[pos]
                pos += 1
                if byte < 128:
                    idx = byte
                else:
                    idx = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        idx |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                if idx >= n_strings:
                    raise _Truncated(f"string index {idx} out of range")
                send_proc = strings[idx]
                byte = data[pos]
                pos += 1
                if byte < 128:
                    send_seq = byte
                else:
                    send_seq = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        send_seq |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                key = (proc, seq, bits, send_proc, send_seq)
                event = cache_get(key)
                if event is None:
                    (lt,) = f64_unpack(bits.to_bytes(8, "big"))
                    if lt != lt or lt == _INF or lt == _NEG_INF:
                        return None, f"event local time must be finite, got {lt!r}"
                    if not send_proc:
                        return None, "receive record needs a non-empty send proc"
                    if send_proc == proc:
                        return None, (
                            f"receive event {proc}#{seq} cannot receive from its own processor"
                        )
                    event = event_new(Event)
                    set_raw(
                        event,
                        "__dict__",
                        {
                            "eid": _intern_eid(proc, seq),
                            "lt": lt,
                            "kind": receive_kind,
                            "dest": None,
                            "send_eid": _intern_eid(send_proc, send_seq),
                            "link": (proc, send_proc)
                            if proc <= send_proc
                            else (send_proc, proc),
                        },
                    )
                    if len(event_cache) >= _EVENT_CACHE_MAX:
                        event_cache.clear()
                    event_cache[key] = event
            else:
                return None, f"unknown event kind code {kind_code}"
            append(event)
    except IndexError:
        return None, "truncated record"
    except _Truncated as exc:
        return None, str(exc)
    reader.pos = pos
    flag_count = reader.varint()
    if flag_count > MAX_BODY_BYTES:
        return None, f"implausible loss-flag count {flag_count}"
    flags = []
    try:
        for _ in range(flag_count):
            proc = _string_at(strings, reader.varint())
            if not proc:
                return None, "loss flag needs a non-empty proc"
            flags.append(_intern_eid(proc, reader.varint()))
    except _Truncated as exc:
        return None, str(exc)
    return HistoryPayload(records=tuple(records), loss_flags=tuple(flags)), None


def _string_at(strings: List[str], index: int) -> Optional[str]:
    if index >= len(strings):
        raise _Truncated(f"string index {index} out of range")
    return strings[index]


def decode_body_binary(body: bytes) -> DecodeResult:
    """Parse an untrusted version-3 body into a frame or a structured error.

    Mirrors the JSON decoder's validation outcomes field for field; the
    result's ``version`` is always :data:`~repro.rt.wire.WIRE_VERSION_BINARY`
    so stateless endpoints can echo the codec.
    """
    src: Optional[str] = None
    try:
        if not body:
            return _bad("empty body")
        flags = body[0]
        rest = body[1:]
        if flags & _FLAG_ZLIB:
            try:
                # cap decompression at the frame limit: anything larger
                # could never have been encoded by a conforming peer
                rest = zlib.decompressobj().decompress(rest, MAX_BODY_BYTES + 1)
            except zlib.error as exc:
                return _bad(f"bad zlib stream: {exc}")
            if len(rest) > MAX_BODY_BYTES:
                return DecodeResult(
                    error=WireError(
                        "oversized", "decompressed body exceeds cap", src=None
                    ),
                    version=WIRE_VERSION_BINARY,
                )
        reader = _Reader(rest)
        type_code = reader.u8()
        if type_code >= len(FRAME_TYPES):
            return _bad(f"unknown type code {type_code}")
        ftype = FRAME_TYPES[type_code]
        string_count = reader.varint()
        if string_count > MAX_BODY_BYTES:
            return _bad(f"implausible string count {string_count}")
        strings: List[str] = []
        for _ in range(string_count):
            raw = reader.blob()
            try:
                strings.append(raw.decode("utf-8"))
            except UnicodeDecodeError as exc:
                return _bad(f"bad utf-8 in string table: {exc}")
        src = _string_at(strings, reader.varint())
        dst = _string_at(strings, reader.varint())
        if not src or not dst:
            return _bad("missing or non-string src/dst", src=src or None)
        seq = None
        lt = None
        payload = None
        boot = None
        nonce = None
        bound = None
        degraded = False
        age = None
        retry_after = None
        reason = None
        hops = None
        stratum = None
        if ftype == "ack":
            seq = reader.varint()
        elif ftype == "sync":
            seq = reader.varint()
            lt = reader.f64()
            payload, detail = _unpack_payload(reader, strings)
            if payload is None:
                return DecodeResult(
                    error=WireError("bad-payload", detail, src=src),
                    version=WIRE_VERSION_BINARY,
                )
            if reader.u8():
                blob = reader.blob()
                try:
                    boot = BootstrapSnapshot.from_dict(json.loads(blob))
                except (ValueError, UnicodeDecodeError) as exc:
                    return DecodeResult(
                        error=WireError("bad-boot", str(exc), src=src),
                        version=WIRE_VERSION_BINARY,
                    )
        elif ftype in ("probe", "dreq"):
            nonce = reader.varint()
        elif ftype in ("reply", "deleg"):
            nonce = reader.varint()
            lower = reader.f64()
            upper = reader.f64()
            if not _finite(lower) or not _finite(upper):
                return _bad(f"{ftype} needs finite bounds", src=src)
            if lower > upper:
                return _bad(f"{ftype} bound is empty: [{lower}, {upper}]", src=src)
            bound = ClockBound(lower, upper)
            degraded = bool(reader.u8())
            age = reader.f64()
            if not _finite(age) or age < 0:
                return _bad(f"{ftype} needs a finite non-negative age, got {age!r}", src=src)
            if ftype == "deleg":
                hops = reader.u8()
                if not (1 <= hops <= MAX_DELEGATION_HOPS):
                    # same wire contract as JSON: K2 <= 2, rejected not widened
                    return _bad(
                        f"deleg hops must be in [1, {MAX_DELEGATION_HOPS}], got {hops!r}",
                        src=src,
                    )
                stratum = reader.varint()
        elif ftype == "shed":
            nonce = reader.varint()
            retry_after = reader.f64()
            if not _finite(retry_after) or retry_after < 0:
                return _bad(
                    f"shed needs a finite non-negative retry_after, got {retry_after!r}",
                    src=src,
                )
            reason = _string_at(strings, reader.varint())
            if not reason:
                return _bad("shed reason is not a non-empty string", src=src)
        meta_blob = reader.blob()
        if meta_blob:
            try:
                meta = json.loads(meta_blob)
            except (ValueError, UnicodeDecodeError) as exc:
                return _bad(f"bad meta blob: {exc}", src=src)
            if not isinstance(meta, dict):
                return _bad("meta is not an object", src=src)
        else:
            meta = {}
        if not reader.done():
            return _bad(f"{reader.end - reader.pos} trailing bytes after body", src=src)
    except _Truncated as exc:
        return _bad(str(exc), src=src)
    return DecodeResult(
        frame=Frame(
            type=ftype,
            src=src,
            dst=dst,
            seq=seq,
            lt=lt,
            payload=payload,
            boot=boot,
            nonce=nonce,
            bound=bound,
            degraded=degraded,
            age=age,
            retry_after=retry_after,
            reason=reason,
            hops=hops,
            stratum=stratum,
            meta=meta,
        ),
        version=WIRE_VERSION_BINARY,
    )
