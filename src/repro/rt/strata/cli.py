"""``repro-strata``: launch a stratum federation from the command line.

Stands up one stratum-0 core cluster plus ``--tiers`` downstream tiers,
each anchored on the core's export nodes, and runs the whole federation
for ``--duration`` wall seconds - every tier in this process (loopback
or UDP), or with ``--procs`` each downstream tier in its own OS process
over real UDP sockets.  Prints per-tier convergence plus the gradient
scorecard and optionally archives the merged run as a serialize-v2
document (``--out``) with the ``strata`` section (tier rows, elections,
gradient).

Naming: core nodes are ``c0..c{N-1}`` (``c0`` the source); downstream
tier ``k`` is ``t{k}n0..t{k}n{M-1}`` with border ``t{k}n0``.  The core
exports are every core node but the source; they double as each tier's
ordered anchor-candidate list, so ``--crash-anchor T`` (fail-stop the
primary anchor ``c1`` at ``T`` elapsed seconds) exercises re-election.

Clean-death contract, shared with ``repro-rt``/``repro-serve``: SIGINT
or ``--timeout`` expiry winds the run down at the next period edge,
still archives partial evidence (``"partial": true``), and exits 130/124
- never a traceback, never a hang.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..cli import abort_exit_code, run_abortable, shape_links
from ..cluster import CrashSchedule
from .federation import (
    FederationConfig,
    dump_federation,
    run_federation,
    run_federation_procs,
)
from .membership import FederationSpec, TierSpec

__all__ = ["main", "build_parser", "build_federation_spec", "build_clock_plans"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-strata",
        description="Run a federated stratum hierarchy of live clusters.",
    )
    core = parser.add_argument_group("core tier (stratum 0)")
    core.add_argument(
        "--core-nodes", type=int, default=3, help="core cluster size (default 3)"
    )
    core.add_argument(
        "--core-shape",
        choices=("line", "ring", "star", "full", "tree"),
        default="full",
        help="core topology over c0..c{N-1}; c0 is the source (default full)",
    )
    down = parser.add_argument_group("downstream tiers (stratum 1)")
    down.add_argument(
        "--tiers", type=int, default=1, help="number of downstream tiers (default 1)"
    )
    down.add_argument(
        "--tier-nodes", type=int, default=2, help="nodes per downstream tier (default 2)"
    )
    down.add_argument(
        "--tier-shape",
        choices=("line", "ring", "star", "full", "tree"),
        default="line",
        help="downstream topology; t{k}n0 is the border (default line)",
    )
    parser.add_argument(
        "--transport",
        choices=("loopback", "udp"),
        default="loopback",
        help="in-process transport kind (--procs always uses udp)",
    )
    parser.add_argument(
        "--procs",
        action="store_true",
        help="run each downstream tier in its own OS process over UDP",
    )
    parser.add_argument("--duration", type=float, default=3.0, help="wall seconds to run")
    parser.add_argument(
        "--period", type=float, default=0.25, help="gossip period in seconds"
    )
    parser.add_argument(
        "--sample-period", type=float, default=0.25, help="estimate sampling period"
    )
    parser.add_argument(
        "--sync-period",
        type=float,
        default=0.2,
        help="border-to-anchor delegation cadence (default 0.2)",
    )
    parser.add_argument(
        "--max-age",
        type=float,
        default=1.5,
        help="adopted bounds older than this stop being served (default 1.5)",
    )
    parser.add_argument(
        "--skew-ppm",
        type=float,
        default=0.0,
        help="give the i-th non-border node a fixed skew of i*this many ppm",
    )
    parser.add_argument(
        "--drifting",
        action="store_true",
        help="give non-border nodes seeded piecewise-drifting clocks instead",
    )
    parser.add_argument(
        "--drift-ppm",
        type=float,
        default=200.0,
        help="advertised drift band for --drifting clocks (default 200)",
    )
    parser.add_argument(
        "--crash",
        metavar="PROC:STOP[:RESTART]",
        action="append",
        default=[],
        help="fail-stop PROC at STOP elapsed seconds (restart at RESTART)",
    )
    parser.add_argument(
        "--crash-anchor",
        type=float,
        metavar="T",
        help="fail-stop the primary anchor (c1) at T elapsed seconds",
    )
    parser.add_argument("--seed", type=int, default=0, help="seed for jitter and clocks")
    parser.add_argument("--out", help="archive the run as a serialize-v2 JSON document")
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="abort cleanly after this many wall seconds (partial archive, exit 124)",
    )
    parser.add_argument(
        "--require-sound",
        action="store_true",
        help="exit non-zero on any soundness violation or a downstream tier "
        "that never produced a bounded external estimate",
    )
    parser.add_argument(
        "--require-election",
        action="store_true",
        help="exit non-zero unless at least one anchor re-election was "
        "recorded (pair with --crash-anchor)",
    )
    return parser


def build_federation_spec(args) -> FederationSpec:
    """The c0../t{k}n0.. federation named by the CLI conventions."""
    core_names = [f"c{i}" for i in range(args.core_nodes)]
    exports = tuple(core_names[1:])  # every core node but the source
    tiers = [
        TierSpec(
            name="core",
            stratum=0,
            processors=tuple(core_names),
            links=tuple(shape_links(core_names, args.core_shape)),
            exports=exports,
        )
    ]
    for k in range(1, args.tiers + 1):
        names = [f"t{k}n{i}" for i in range(args.tier_nodes)]
        tiers.append(
            TierSpec(
                name=f"tier{k}",
                stratum=1,
                processors=tuple(names),
                links=tuple(shape_links(names, args.tier_shape)),
                border=names[0],
                anchors=exports,
            )
        )
    return FederationSpec(tiers=tuple(tiers))


def build_clock_plans(args, spec: FederationSpec) -> Dict[str, Dict]:
    """Skew/drift plans for every node that is not a tier's time anchor."""
    plans: Dict[str, Dict] = {}
    borders = {tier.border_proc for tier in spec.tiers}
    index = 0
    for proc in spec.all_processors:
        index += 1
        if proc in borders:
            continue  # tier sources (incl. c0) define their tier's local axis
        if args.drifting:
            plans[proc] = {
                "kind": "drifting",
                "seed": args.seed + index,
                "band_ppm": args.drift_ppm,
            }
        elif args.skew_ppm:
            plans[proc] = {
                "kind": "skewed",
                "rate": 1.0 + index * args.skew_ppm * 1e-6,
            }
    return plans


def _parse_crash(text: str) -> CrashSchedule:
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"crash spec {text!r} is not PROC:STOP[:RESTART]")
    restart = float(parts[2]) if len(parts) == 3 else None
    return CrashSchedule(proc=parts[0], stop_at=float(parts[1]), restart_at=restart)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.core_nodes < 3:
        print("error: --core-nodes must be at least 3 (source + 2 exports)", file=sys.stderr)
        return 2
    if args.tier_nodes < 2 or args.tiers < 1:
        print("error: need at least one downstream tier of two nodes", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2
    try:
        spec = build_federation_spec(args)
        crashes = [_parse_crash(text) for text in args.crash]
        if args.crash_anchor is not None:
            crashes.append(CrashSchedule(proc="c1", stop_at=args.crash_anchor))
        config = FederationConfig(
            spec=spec,
            duration=args.duration,
            gossip_period=args.period,
            sample_period=args.sample_period,
            transport="udp" if args.procs else args.transport,
            clock_plans=build_clock_plans(args, spec),
            crashes=tuple(crashes),
            sync_period=args.sync_period,
            max_age=args.max_age,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    runner = run_federation_procs if args.procs else run_federation
    result, why = run_abortable(
        lambda abort: runner(config, abort=abort), args.timeout
    )

    if result.aborted:
        print(f"aborted ({why}): partial evidence only", file=sys.stderr)
    mode = "OS processes" if args.procs else config.transport
    print(
        f"{args.core_nodes}-core + {args.tiers}x{args.tier_nodes} federation "
        f"over {mode}: {result.messages_sent} messages, "
        f"{result.messages_lost} lost, {len(result.elections)} election(s)"
    )
    healthy = True
    for tier in result.tiers:
        external = [s for s in tier.run.samples if s.channel == "strata"]
        bounded = sum(1 for s in external if s.bound.is_bounded)
        violations = sum(1 for s in external if not s.sound)
        tag = "ok"
        if violations:
            tag, healthy = "UNSOUND", False
        elif tier.stratum > 0 and bounded == 0:
            tag, healthy = "NEVER-BOUNDED", False
        print(
            f"  {tier.name} (stratum {tier.stratum}): "
            f"{bounded}/{len(external)} external samples bounded, "
            f"{violations} violation(s) [{tag}]"
        )
        for event in tier.elections:
            print(
                f"    election at rt={event.rt:.2f}: "
                f"{event.previous} -> {event.new}"
            )
    gradient = result.gradient()
    for hops, row in gradient["by_hops"].items():
        print(
            f"  gradient @{hops} hop(s): mean skew {row['mean_skew']:.6f}s "
            f"max {row['max_skew']:.6f}s over {row['pairs']} pair(s)"
        )
    internal_violations = len(result.soundness_violations())
    if internal_violations:
        print(f"  UNSOUND: {internal_violations} sample(s) exclude the truth")
        healthy = False
    if args.out:
        dump_federation(result, args.out)
        print(f"  archived -> {args.out}")
    failed = args.require_sound and not healthy
    if args.require_election and not result.elections:
        print("  NO-ELECTION: expected an anchor re-election", file=sys.stderr)
        failed = True
    if result.aborted:
        return abort_exit_code(why)
    if failed:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
