"""Anchor delegation: export, adopt, compose, and re-elect.

The hierarchy's one new protocol idea, built from pieces that already
exist.  A :class:`DelegationServer` rides a synced node exactly like the
Cristian serving tier (:mod:`repro.rt.serve`): its own transport
endpoint, never-raise decode, nonce correlation, zero per-client state.
It answers ``dreq`` frames with ``deleg`` frames carrying the node's
source-time bounds plus the indirection count:

* on a **core** node the bounds come from the node's own estimator and
  travel with ``hops=1`` (estimator -> consumer: one indirection);
* on a downstream **border** the bounds come from the tier's adopted
  upstream bound (a ``bound_source`` callable) and travel with
  ``hops=2`` (estimator -> border -> consumer) - the ceiling the wire
  format enforces, so the paper's ``K2 <= 2`` discipline holds *per
  tier*: every consumer is at most two indirections from the nearest
  tier's own time authority, and depth is carried honestly in
  ``stratum`` instead of hidden in an unbounded hop count.

An :class:`AnchorLink` is the border's client side: one Cristian round
trip per ``sync_period`` against the current anchor, adopting
``[L, U + beta * rtt]`` anchored at the border's receive local time
(the same widening argument as :class:`~repro.rt.client.ServeClient`).
The adopted bound *expires*: :meth:`AnchorLink.current` refuses to serve
a bound older than ``max_age`` border-local seconds, so an anchor outage
degrades the tier to unbounded external estimates instead of silently
drift-rotting ones - which is exactly what makes downstream
re-convergence measurable through ``reconvergence_after``.

Re-election reuses the existing accrual detector
(:class:`~repro.rt.client.AccrualHealth`): probe timeouts raise the
suspicion score, and past ``failover_threshold`` the link rotates to the
next candidate in its ordered list, recording an :class:`ElectionEvent`.
Sheds (an unsynced anchor saying so) count as liveness, not failure.

:func:`compose_delegated` is the soundness core: a tier-internal bound
``[l, u]`` on the *border's local time* composed with a delegated bound
anchored at border-local ``a0`` through the border clock's advertised
drift.  Every step widens or drift-advances a sound interval, so the
composed interval contains true source time whenever its inputs did.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...core.errors import SimulationError
from ...core.events import ProcessorId
from ...core.intervals import ClockBound
from ...core.specs import DriftSpec
from ..client import AccrualHealth
from ..clock import ClockSource, MonotonicClockSource, TimeBase
from ..node import Node
from ..transport import Transport
from ..wire import (
    MAX_DELEGATION_HOPS,
    WIRE_CODECS,
    WIRE_VERSION_BINARY,
    Frame,
    decode_frame,
    deleg_frame,
    dreq_frame,
    encode_frame,
    shed_frame,
)

__all__ = [
    "DELEG_SUFFIX",
    "ANCHOR_LINK_SUFFIX",
    "deleg_endpoint",
    "deleg_owner",
    "anchor_link_endpoint",
    "DelegationConfig",
    "DelegationStats",
    "DelegationServer",
    "DelegatedBound",
    "ElectionEvent",
    "AnchorLinkConfig",
    "AnchorLinkStats",
    "AnchorLink",
    "compose_delegated",
]

#: appended to a node's processor id to name its delegation endpoint
DELEG_SUFFIX = "!deleg"

#: appended to a border's processor id to name its anchor-link endpoint
ANCHOR_LINK_SUFFIX = "!anchor"


def deleg_endpoint(proc: ProcessorId) -> ProcessorId:
    """The transport endpoint name of ``proc``'s delegation server."""
    return f"{proc}{DELEG_SUFFIX}"


def deleg_owner(endpoint: ProcessorId) -> Optional[ProcessorId]:
    """The node behind a delegation endpoint name, or ``None`` if not one."""
    if endpoint.endswith(DELEG_SUFFIX) and len(endpoint) > len(DELEG_SUFFIX):
        return endpoint[: -len(DELEG_SUFFIX)]
    return None


def anchor_link_endpoint(proc: ProcessorId) -> ProcessorId:
    """The transport endpoint name of border ``proc``'s anchor link."""
    return f"{proc}{ANCHOR_LINK_SUFFIX}"


# -- server side -----------------------------------------------------------------------


@dataclass(frozen=True)
class DelegationConfig:
    """Tunables of one delegation endpoint."""

    #: estimator state older than this (local s) answers as degraded
    stale_after: float = 1.0
    #: drift allowance per stale local second; None -> the serving
    #: clock's advertised worst deviation
    degraded_rho: Optional[float] = None
    #: shed retry hint while there is nothing finite to delegate
    unsynced_retry_after: float = 0.25

    def __post_init__(self):
        if self.stale_after < 0:
            raise SimulationError("stale_after must be non-negative")
        if self.degraded_rho is not None and self.degraded_rho < 0:
            raise SimulationError("degraded_rho must be non-negative")
        if self.unsynced_retry_after < 0:
            raise SimulationError("unsynced_retry_after must be non-negative")


@dataclass
class DelegationStats:
    """Live counters of one delegation endpoint."""

    dreqs: int = 0
    replies: int = 0
    degraded_replies: int = 0
    #: shed verdicts by reason (only ``unsynced`` today)
    shed: Dict[str, int] = field(default_factory=dict)
    decode_errors: int = 0
    rejected_frames: int = 0
    #: requests silently dropped because the backing node was down
    dropped_down: int = 0

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def to_dict(self) -> Dict:
        return {
            "dreqs": self.dreqs,
            "replies": self.replies,
            "degraded_replies": self.degraded_replies,
            "shed": dict(sorted(self.shed.items())),
            "shed_total": self.shed_total,
            "decode_errors": self.decode_errors,
            "rejected_frames": self.rejected_frames,
            "dropped_down": self.dropped_down,
        }


#: a bound source answers ``(bound, degraded, age)`` or None when unsynced
BoundSource = Callable[[], Optional[Tuple[ClockBound, bool, float]]]


class DelegationServer:
    """One delegation endpoint riding a node, answering ``dreq`` frames.

    Without a ``bound_source`` the server exports the node's own
    estimator with ``hops=1`` (the core role, widened when stale or
    quarantined exactly like :class:`~repro.rt.serve.ServeNode`).  With
    one - a border re-exporting its :meth:`AnchorLink.composed_now` -
    answers carry ``hops=2``, the ``K2`` ceiling.  Delegation traffic is
    tier-to-tier and low-rate, so there is no admission control; the
    answer is computed inline on the receive path.
    """

    def __init__(
        self,
        node: Node,
        *,
        stratum: int,
        transport: Optional[Transport] = None,
        config: Optional[DelegationConfig] = None,
        bound_source: Optional[BoundSource] = None,
    ):
        if stratum < 0:
            raise SimulationError(f"stratum must be non-negative, got {stratum}")
        if stratum > 0 and bound_source is None:
            raise SimulationError(
                "a downstream delegation server re-exports an adopted bound; "
                "pass bound_source (e.g. AnchorLink.composed_now)"
            )
        self.node = node
        self.stratum = stratum
        self.transport = transport if transport is not None else node.transport
        self.config = config if config is not None else DelegationConfig()
        self.bound_source = bound_source
        self.hops = 1 if bound_source is None else MAX_DELEGATION_HOPS
        self.endpoint = deleg_endpoint(node.proc)
        self.stats = DelegationStats()
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.transport.register(self.endpoint, self._on_datagram)
        ensure = getattr(self.transport, "ensure_endpoint", None)
        if ensure is not None:
            await ensure(self.endpoint)

    async def stop(self) -> None:
        self._running = False
        self.transport.unregister(self.endpoint)

    def _on_datagram(self, data: bytes) -> None:
        answer = self.handle_dreq_bytes(data)
        if answer is not None:
            self.transport.send(self.endpoint, self._last_src, answer)

    # -- synchronous core (also the benchmark surface) ---------------------------

    def handle_dreq_bytes(self, data: bytes) -> Optional[bytes]:
        """Decode + answer one delegation request synchronously.

        Returns the ``deleg``/``shed`` bytes, or ``None`` for
        undecodable or non-dreq input (counted, never raised) and for
        requests arriving while the backing node is down.
        """
        result = decode_frame(data)
        if result.error is not None:
            self.stats.decode_errors += 1
            return None
        frame = result.frame
        if frame.type != "dreq" or frame.dst != self.endpoint:
            self.stats.rejected_frames += 1
            return None
        self.stats.dreqs += 1
        if not self.node.running or not self._running:
            self.stats.dropped_down += 1
            return None
        self._last_src = frame.src
        # stateless per border: the answer echoes the request's codec
        codec = "binary" if result.version == WIRE_VERSION_BINARY else "json"
        return self._answer(frame, codec)

    def _shed_bytes(self, frame: Frame, reason: str, codec: str = "json") -> bytes:
        self.stats.shed[reason] = self.stats.shed.get(reason, 0) + 1
        return encode_frame(
            shed_frame(
                self.endpoint,
                frame.src,
                frame.nonce,
                retry_after=self.config.unsynced_retry_after,
                reason=reason,
            ),
            codec,
        )

    def _answer(self, frame: Frame, codec: str = "json") -> bytes:
        if self.bound_source is not None:
            sourced = self.bound_source()
            if sourced is None:
                return self._shed_bytes(frame, "unsynced", codec)
            bound, degraded, age = sourced
            if not bound.is_bounded:
                return self._shed_bytes(frame, "unsynced", codec)
        else:
            rt, bound = self.node.estimate_at_now()
            if not bound.is_bounded:
                return self._shed_bytes(frame, "unsynced", codec)
            estimator = self.node.estimator
            last = estimator.last_local_event
            lt = self.node.clock.lt_at(rt)
            age = max(0.0, lt - last.lt) if last is not None else 0.0
            quarantined = bool(getattr(estimator, "degraded", False))
            degraded = quarantined or age > self.config.stale_after
            if degraded:
                rho = self.config.degraded_rho
                if rho is None:
                    rho = self.node.clock.advertised.max_deviation
                bound = bound.widen(rho * age, rho * age)
        if degraded:
            self.stats.degraded_replies += 1
        self.stats.replies += 1
        return encode_frame(
            deleg_frame(
                self.endpoint,
                frame.src,
                frame.nonce,
                bound,
                hops=self.hops,
                stratum=self.stratum,
                degraded=degraded,
                age=age,
            ),
            codec,
        )


# -- border side -----------------------------------------------------------------------


@dataclass(frozen=True)
class DelegatedBound:
    """One adopted upstream bound, anchored at the border's clock."""

    #: Cristian-widened source-time bounds, valid when the border's
    #: local time read ``anchor_lt``
    bound: ClockBound
    anchor_lt: float
    anchor_rt: float
    #: indirection count as received (1 from a core node, 2 re-exported)
    hops: int
    #: the answering tier's stratum depth
    stratum: int
    #: the upstream processor that answered
    anchor: ProcessorId
    degraded: bool


@dataclass(frozen=True)
class ElectionEvent:
    """One anchor re-election performed by a border's link."""

    rt: float
    tier: str
    border: ProcessorId
    previous: ProcessorId
    new: ProcessorId

    def to_dict(self) -> Dict:
        return {
            "rt": self.rt,
            "tier": self.tier,
            "border": self.border,
            "previous": self.previous,
            "new": self.new,
        }


@dataclass(frozen=True)
class AnchorLinkConfig:
    """Static configuration of one border's upstream link."""

    #: the border processor this link serves
    border: ProcessorId
    #: ordered upstream candidates (processor names; endpoints derived)
    anchors: Tuple[ProcessorId, ...]
    #: delegation round-trip cadence (border local seconds)
    sync_period: float = 0.25
    probe_timeout: float = 0.25
    #: accrual score at which the link elects the next candidate
    failover_threshold: float = 3.0
    #: adopted bound older than this (border local s) stops being served
    max_age: float = 2.0
    seed: int = 0
    #: wire codec for delegation requests; the anchor echoes it back
    codec: str = "binary"

    def __post_init__(self):
        if self.codec not in WIRE_CODECS:
            raise SimulationError(f"unknown wire codec {self.codec!r}")
        if not self.anchors:
            raise SimulationError("an anchor link needs at least one candidate")
        if len(set(self.anchors)) != len(self.anchors):
            raise SimulationError("duplicate anchor candidates")
        if self.border in self.anchors:
            raise SimulationError("a border cannot anchor on itself")
        if self.sync_period <= 0 or self.probe_timeout <= 0:
            raise SimulationError("sync_period and probe_timeout must be positive")
        if self.failover_threshold <= 0:
            raise SimulationError("failover_threshold must be positive")
        if self.max_age <= 0:
            raise SimulationError("max_age must be positive")


@dataclass
class AnchorLinkStats:
    """Live counters of one anchor link."""

    dreqs: int = 0
    adopted: int = 0
    degraded_adopted: int = 0
    sheds: int = 0
    timeouts: int = 0
    elections: int = 0
    #: current() calls refused because the adopted bound had expired
    stale_refusals: int = 0
    unmatched: int = 0
    decode_errors: int = 0

    def to_dict(self) -> Dict:
        return {
            "dreqs": self.dreqs,
            "adopted": self.adopted,
            "degraded_adopted": self.degraded_adopted,
            "sheds": self.sheds,
            "timeouts": self.timeouts,
            "elections": self.elections,
            "stale_refusals": self.stale_refusals,
            "unmatched": self.unmatched,
            "decode_errors": self.decode_errors,
        }


class AnchorLink:
    """A border's client of its upstream anchors: adopt, expire, re-elect.

    Runs as a companion of the border node (same ``start``/``stop``
    protocol as :class:`~repro.rt.serve.ServeNode`), so a crashed border
    takes its upstream link down with it.
    """

    def __init__(
        self,
        config: AnchorLinkConfig,
        transport: Transport,
        time_base: TimeBase,
        clock: Optional[ClockSource] = None,
        *,
        tier: str = "",
    ):
        self.config = config
        self.tier = tier
        self.transport = transport
        self.time_base = time_base
        self.clock = clock if clock is not None else MonotonicClockSource()
        self.endpoint = anchor_link_endpoint(config.border)
        self.health = AccrualHealth()
        self.stats = AnchorLinkStats()
        self.adopted: Optional[DelegatedBound] = None
        self.elections: List[ElectionEvent] = []
        self._anchor_index = 0
        self._nonce = 0
        #: nonce -> (send lt, anchor endpoint probed, reply future)
        self._pending: Dict[int, Tuple[float, ProcessorId, asyncio.Future]] = {}
        self._rng = random.Random(config.seed)
        self._task: Optional[asyncio.Task] = None
        self._running = False

    @property
    def anchor(self) -> ProcessorId:
        """The upstream processor currently anchored on."""
        return self.config.anchors[self._anchor_index]

    @property
    def running(self) -> bool:
        return self._running

    def _now(self) -> Tuple[float, float]:
        rt = self.time_base.elapsed()
        return rt, self.clock.lt_at(rt)

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.transport.register(self.endpoint, self._on_datagram)
        ensure = getattr(self.transport, "ensure_endpoint", None)
        if ensure is not None:
            await ensure(self.endpoint)
        self._task = asyncio.get_running_loop().create_task(self._sync_loop())

    async def stop(self) -> None:
        self._running = False
        self.transport.unregister(self.endpoint)
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for _lt0, _anchor, future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()

    # -- receive path ------------------------------------------------------------

    def _on_datagram(self, data: bytes) -> None:
        result = decode_frame(data)
        if result.error is not None:
            self.stats.decode_errors += 1
            return
        frame = result.frame
        if frame.type not in ("deleg", "shed") or frame.dst != self.endpoint:
            self.stats.unmatched += 1
            return
        entry = self._pending.get(frame.nonce)
        if entry is None or entry[1] != frame.src:
            # expired nonce or an answer claiming a server this request
            # never targeted: at-most-once, first matching answer wins
            self.stats.unmatched += 1
            return
        _lt0, _anchor, future = self._pending.pop(frame.nonce)
        if not future.done():
            future.set_result(frame)

    # -- sync loop ---------------------------------------------------------------

    async def _sync_loop(self) -> None:
        period = self.config.sync_period
        while self._running:
            await self._sync_once()
            # jittered so many borders never resynchronize into a storm
            await asyncio.sleep(period * (0.9 + 0.2 * self._rng.random()))

    async def _sync_once(self) -> None:
        """One delegation round trip against the current anchor."""
        _rt0, lt0 = self._now()
        nonce = self._nonce
        self._nonce += 1
        target = deleg_endpoint(self.anchor)
        future = asyncio.get_running_loop().create_future()
        self._pending[nonce] = (lt0, target, future)
        self.stats.dreqs += 1
        self.transport.send(
            self.endpoint,
            target,
            encode_frame(dreq_frame(self.endpoint, target, nonce), self.config.codec),
        )
        try:
            frame = await asyncio.wait_for(future, timeout=self.config.probe_timeout)
        except asyncio.TimeoutError:
            self._pending.pop(nonce, None)
            self._on_timeout()
            return
        except asyncio.CancelledError:
            self._pending.pop(nonce, None)
            raise
        if frame.type == "shed":
            # the anchor is alive but unsynced: liveness without progress
            self.stats.sheds += 1
            self.health.on_alive()
            return
        self._adopt(frame, lt0)

    def _adopt(self, frame: Frame, lt0: float) -> None:
        rt1, lt1 = self._now()
        rtt_lt = max(0.0, lt1 - lt0)
        # the anchor's interval held at an instant inside [lt0, lt1]; the
        # source runs at real time and at most beta * rtt real seconds
        # have passed since, so only the upper endpoint needs widening
        beta = self.clock.advertised.beta
        accepted = ClockBound(frame.bound.lower, frame.bound.upper + beta * rtt_lt)
        self.adopted = DelegatedBound(
            bound=accepted,
            anchor_lt=lt1,
            anchor_rt=rt1,
            hops=frame.hops,
            stratum=frame.stratum,
            anchor=self.anchor,
            degraded=frame.degraded,
        )
        self.stats.adopted += 1
        if frame.degraded:
            self.stats.degraded_adopted += 1
        self.health.on_reply(lt1)

    def _on_timeout(self) -> None:
        self.stats.timeouts += 1
        self.health.on_failure()
        if len(self.config.anchors) < 2:
            return
        _rt, lt = self._now()
        if self.health.score(lt) >= self.config.failover_threshold:
            self._elect()

    def _elect(self) -> None:
        """Rotate to the next candidate in the ordered succession list."""
        rt, _lt = self._now()
        previous = self.anchor
        self._anchor_index = (self._anchor_index + 1) % len(self.config.anchors)
        self.stats.elections += 1
        self.elections.append(
            ElectionEvent(
                rt=rt,
                tier=self.tier,
                border=self.config.border,
                previous=previous,
                new=self.anchor,
            )
        )
        self.health.reset()

    # -- introspection -----------------------------------------------------------

    def current(self) -> Optional[DelegatedBound]:
        """The adopted bound, or ``None`` once it has aged past ``max_age``.

        Expiry is the honesty mechanism: during an anchor outage the
        border would otherwise keep drift-advancing an ever-wider bound
        forever; refusing instead makes the tier's external estimates
        unbounded, which ``reconvergence_after`` can see and time.
        """
        if self.adopted is None:
            return None
        _rt, lt = self._now()
        if lt - self.adopted.anchor_lt > self.config.max_age:
            self.stats.stale_refusals += 1
            return None
        return self.adopted

    def composed_now(self) -> Optional[Tuple[ClockBound, bool, float]]:
        """The adopted bound advanced to now: a re-export ``bound_source``.

        Returns ``(bound, degraded, age)`` in the shape
        :class:`DelegationServer` expects, or ``None`` while nothing
        fresh is adopted.
        """
        delegated = self.current()
        if delegated is None:
            return None
        _rt, lt = self._now()
        age = max(0.0, lt - delegated.anchor_lt)
        bound = delegated.bound.advance(age, self.clock.advertised)
        return bound, delegated.degraded, age


def compose_delegated(
    internal: ClockBound,
    delegated: Optional[DelegatedBound],
    border_drift: DriftSpec,
) -> ClockBound:
    """External source-time bounds from a tier-internal estimate.

    ``internal`` bounds the *border's local time* at the sample instant
    (the border is the tier's internal source, so that is exactly what
    tier estimators produce).  ``delegated`` places true source time in
    an interval valid when the border's clock read ``anchor_lt``.
    Advancing the delegated interval from ``anchor_lt`` to each internal
    endpoint through the border clock's advertised drift - minding the
    sign, since an internal lower bound may precede the anchor instant -
    yields sound external bounds:

    if border-lt is in ``[l, u]`` and source was in ``[L, U]`` at
    border-lt ``a0``, then source is now in
    ``[L + adv_low(l - a0), U + adv_high(u - a0)]`` with
    ``adv_low(d) = alpha*d (d >= 0) | beta*d (d < 0)`` and
    ``adv_high`` the mirror image.

    Unbounded or missing inputs yield the honestly unbounded interval.
    """
    if delegated is None or not internal.is_bounded:
        return ClockBound.unbounded()
    alpha, beta = border_drift.alpha, border_drift.beta
    low_delta = internal.lower - delegated.anchor_lt
    high_delta = internal.upper - delegated.anchor_lt
    low = delegated.bound.lower + (
        alpha * low_delta if low_delta >= 0 else beta * low_delta
    )
    high = delegated.bound.upper + (
        beta * high_delta if high_delta >= 0 else alpha * high_delta
    )
    return ClockBound(low, high)
