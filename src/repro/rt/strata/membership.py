"""Topology-agnostic membership and routing, extracted from ``rt.cluster``.

:class:`~repro.rt.cluster.LiveCluster` used to build its transport from
a private helper that hard-wired "one cluster, one address book".  This
module generalizes that layer so a cluster becomes *one instantiation*
of a federation:

* :class:`PeerDirectory` - the live address book plus tier labels.  Its
  ``addresses`` dict is shared **by identity** with
  :class:`~repro.rt.transport.UDPTransport`, which reads it on every
  send and writes resolved port-0 bindings back - so an address learned
  late (another OS process's handshake) immediately routes in-flight
  traffic, with no transport restart.
* :class:`TierSpec` - one tier's static shape: processors, intra-tier
  links, stratum depth, which nodes export delegated bounds, and (for
  downstream tiers) the border node plus its ordered upstream anchor
  candidates.
* :class:`FederationSpec` - the whole hierarchy, validating the
  inter-tier link policy: exactly one stratum-0 core, anchors must be
  exports of the tier one stratum up, downstream tiers re-export only
  through their border (which keeps every tier inside the paper's
  ``K2 <= 2`` indirection bound), and hop distances over the union
  graph for the gradient scorecard.
* :func:`build_transport` - the transport factory
  :func:`~repro.rt.cluster._make_transport` now delegates to: any set
  of directory-registered endpoints over loopback or UDP, optionally
  wrapped in :class:`~repro.rt.transport.FaultMiddleware`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ...core.errors import SimulationError
from ...core.events import ProcessorId
from ...sim.faults import FaultPlan
from ..clock import TimeBase
from ..transport import (
    FaultMiddleware,
    LoopbackTransport,
    Transport,
    UDPTransport,
)
from ..wire import MAX_DELEGATION_HOPS

__all__ = [
    "K2_MAX_HOPS",
    "PeerDirectory",
    "TierSpec",
    "FederationSpec",
    "build_transport",
]

#: the paper's Sec 4 indirection bound, re-exported for the hierarchy
K2_MAX_HOPS = MAX_DELEGATION_HOPS


class PeerDirectory:
    """The federation's live address book and tier-label registry.

    Every transport endpoint - protocol nodes, serve/delegation/anchor
    endpoints, load clients - registers here exactly once.  The
    ``addresses`` mapping is handed to :class:`UDPTransport` unchanged
    (same object), which is the whole routing trick: the transport
    resolves its own port-0 binds into it at socket-open time, and
    :meth:`update_address` feeds in addresses learned from other OS
    processes' handshakes; both are visible to the very next ``send``.
    """

    def __init__(self, *, host: str = "127.0.0.1"):
        self.host = host
        #: endpoint -> (host, port); shared by identity with UDPTransport
        self.addresses: Dict[ProcessorId, Tuple[str, int]] = {}
        self._tiers: Dict[ProcessorId, Optional[str]] = {}

    def register(
        self,
        name: ProcessorId,
        *,
        tier: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
    ) -> None:
        """Add one endpoint; port 0 means "resolve at socket-open time"."""
        if name in self._tiers:
            raise SimulationError(f"endpoint {name!r} registered twice")
        self.addresses[name] = (host if host is not None else self.host, port)
        self._tiers[name] = tier

    def update_address(self, name: ProcessorId, host: str, port: int) -> None:
        """Adopt an address learned later (a peer process's handshake)."""
        if name not in self._tiers:
            raise SimulationError(f"address update for unknown endpoint {name!r}")
        self.addresses[name] = (host, int(port))

    def tier_of(self, name: ProcessorId) -> Optional[str]:
        return self._tiers.get(name)

    def endpoints(self) -> Tuple[ProcessorId, ...]:
        return tuple(self._tiers)

    def members(self, tier: str) -> Tuple[ProcessorId, ...]:
        return tuple(name for name, label in self._tiers.items() if label == tier)

    def address_of(self, name: ProcessorId) -> Tuple[str, int]:
        try:
            return self.addresses[name]
        except KeyError:
            raise SimulationError(f"no address for endpoint {name!r}") from None

    def __contains__(self, name: ProcessorId) -> bool:
        return name in self._tiers

    def __len__(self) -> int:
        return len(self._tiers)

    def to_dict(self) -> Dict:
        """JSON shape for shipping the book to another OS process."""
        return {
            "host": self.host,
            "endpoints": [
                {
                    "name": name,
                    "tier": self._tiers[name],
                    "host": self.addresses[name][0],
                    "port": self.addresses[name][1],
                }
                for name in self._tiers
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PeerDirectory":
        directory = cls(host=data.get("host", "127.0.0.1"))
        for entry in data["endpoints"]:
            directory.register(
                entry["name"],
                tier=entry.get("tier"),
                host=entry["host"],
                port=int(entry["port"]),
            )
        return directory


@dataclass(frozen=True)
class TierSpec:
    """One tier of the hierarchy: a cluster plus its stratum role."""

    name: str
    #: depth in the hierarchy; 0 is the fully-synced core
    stratum: int
    processors: Tuple[ProcessorId, ...]
    links: Tuple[Tuple[ProcessorId, ProcessorId], ...]
    #: nodes running delegation servers for the tier below
    exports: Tuple[ProcessorId, ...] = ()
    #: stratum > 0: the node that adopts upstream bounds and acts as the
    #: tier's internal time source; defaults to the first processor
    border: Optional[ProcessorId] = None
    #: stratum > 0: ordered upstream anchor candidates (processors of
    #: the parent tier); index 0 is the primary, the rest are the
    #: re-election line of succession
    anchors: Tuple[ProcessorId, ...] = ()

    def __post_init__(self):
        if not self.name:
            raise SimulationError("a tier needs a non-empty name")
        if self.stratum < 0:
            raise SimulationError(f"stratum must be non-negative, got {self.stratum}")
        if len(self.processors) < 2:
            raise SimulationError(f"tier {self.name!r} needs at least two processors")
        if len(set(self.processors)) != len(self.processors):
            raise SimulationError(f"tier {self.name!r} has duplicate processors")
        procs = set(self.processors)
        for edge in self.links:
            if edge[0] not in procs or edge[1] not in procs:
                raise SimulationError(
                    f"tier {self.name!r} link {edge!r} names a non-member"
                )
        for proc in self.exports:
            if proc not in procs:
                raise SimulationError(
                    f"tier {self.name!r} export {proc!r} is not a member"
                )
        if len(set(self.exports)) != len(self.exports):
            raise SimulationError(f"tier {self.name!r} has duplicate exports")
        if len(set(self.anchors)) != len(self.anchors):
            raise SimulationError(f"tier {self.name!r} has duplicate anchors")
        if self.border is not None and self.border not in procs:
            raise SimulationError(
                f"tier {self.name!r} border {self.border!r} is not a member"
            )
        if self.stratum == 0:
            if self.anchors:
                raise SimulationError("the stratum-0 core has no upstream anchors")
        else:
            if not self.anchors:
                raise SimulationError(
                    f"downstream tier {self.name!r} needs at least one anchor"
                )
            # only the border holds an adopted upstream bound, so only the
            # border may re-export: anything else would serve third-hand
            # bounds and break the per-tier K2 <= 2 discipline
            for proc in self.exports:
                if proc != self.border_proc:
                    raise SimulationError(
                        f"downstream tier {self.name!r} may re-export only "
                        f"through its border {self.border_proc!r}, not {proc!r}"
                    )

    @property
    def border_proc(self) -> ProcessorId:
        """The tier's internal time source (stratum > 0) / first member."""
        return self.border if self.border is not None else self.processors[0]


@dataclass(frozen=True)
class FederationSpec:
    """The whole hierarchy: ordered tiers plus the inter-tier link policy."""

    tiers: Tuple[TierSpec, ...]
    #: hard cap on delegated-bound indirection, the paper's K2
    max_hops: int = K2_MAX_HOPS

    def __post_init__(self):
        if not self.tiers:
            raise SimulationError("a federation needs at least one tier")
        names = [tier.name for tier in self.tiers]
        if len(set(names)) != len(names):
            raise SimulationError("duplicate tier names in the federation")
        cores = [tier for tier in self.tiers if tier.stratum == 0]
        if len(cores) != 1:
            raise SimulationError(
                f"a federation needs exactly one stratum-0 core, got {len(cores)}"
            )
        if self.tiers[0].stratum != 0:
            raise SimulationError("the core tier must come first")
        seen: Dict[ProcessorId, str] = {}
        for tier in self.tiers:
            for proc in tier.processors:
                if proc in seen:
                    raise SimulationError(
                        f"processor {proc!r} is in tiers {seen[proc]!r} and {tier.name!r}"
                    )
                seen[proc] = tier.name
        by_stratum: Dict[int, list] = {}
        for tier in self.tiers:
            by_stratum.setdefault(tier.stratum, []).append(tier)
        for tier in self.tiers:
            if tier.stratum == 0:
                continue
            parents = by_stratum.get(tier.stratum - 1, [])
            if not parents:
                raise SimulationError(
                    f"tier {tier.name!r} at stratum {tier.stratum} has no "
                    f"stratum-{tier.stratum - 1} tier to anchor on"
                )
            exported = {
                proc for parent in parents for proc in parent.exports
            }
            for anchor in tier.anchors:
                if anchor not in exported:
                    raise SimulationError(
                        f"tier {tier.name!r} anchor {anchor!r} is not an export "
                        f"of any stratum-{tier.stratum - 1} tier"
                    )

    @property
    def core(self) -> TierSpec:
        return self.tiers[0]

    @property
    def all_processors(self) -> Tuple[ProcessorId, ...]:
        return tuple(proc for tier in self.tiers for proc in tier.processors)

    def tier(self, name: str) -> TierSpec:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise SimulationError(f"no tier named {name!r}")

    def tier_of(self, proc: ProcessorId) -> TierSpec:
        for tier in self.tiers:
            if proc in tier.processors:
                return tier
        raise SimulationError(f"processor {proc!r} is in no tier")

    def cross_links(self) -> Tuple[Tuple[ProcessorId, ProcessorId], ...]:
        """Border <-> anchor-candidate edges (delegation may ride any)."""
        return tuple(
            (tier.border_proc, anchor)
            for tier in self.tiers
            if tier.stratum > 0
            for anchor in tier.anchors
        )

    def union_links(self) -> Tuple[Tuple[ProcessorId, ProcessorId], ...]:
        """Every intra-tier link plus every cross-tier candidate edge."""
        return tuple(
            edge for tier in self.tiers for edge in tier.links
        ) + self.cross_links()

    def hop_distance(self, a: ProcessorId, b: ProcessorId) -> Optional[int]:
        """BFS hops between two processors over the union graph.

        The axis of the gradient scorecard: intra-tier gossip links and
        border<->candidate delegation edges all count as one hop.
        ``None`` when no path exists (a mis-specified federation).
        """
        if a == b:
            return 0
        adjacency: Dict[ProcessorId, set] = {}
        for u, v in self.union_links():
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        frontier = deque([(a, 0)])
        visited = {a}
        while frontier:
            node, dist = frontier.popleft()
            for neighbor in adjacency.get(node, ()):
                if neighbor == b:
                    return dist + 1
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append((neighbor, dist + 1))
        return None

    def to_dict(self) -> Dict:
        """JSON shape for shipping tier specs to child processes."""
        return {
            "max_hops": self.max_hops,
            "tiers": [
                {
                    "name": tier.name,
                    "stratum": tier.stratum,
                    "processors": list(tier.processors),
                    "links": [list(edge) for edge in tier.links],
                    "exports": list(tier.exports),
                    "border": tier.border,
                    "anchors": list(tier.anchors),
                }
                for tier in self.tiers
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FederationSpec":
        return cls(
            tiers=tuple(
                TierSpec(
                    name=entry["name"],
                    stratum=int(entry["stratum"]),
                    processors=tuple(entry["processors"]),
                    links=tuple((u, v) for u, v in entry["links"]),
                    exports=tuple(entry.get("exports", ())),
                    border=entry.get("border"),
                    anchors=tuple(entry.get("anchors", ())),
                )
                for entry in data["tiers"]
            ),
            max_hops=int(data.get("max_hops", K2_MAX_HOPS)),
        )


def build_transport(
    kind: str,
    directory: PeerDirectory,
    *,
    time_base: TimeBase,
    links: Sequence[Tuple[ProcessorId, ProcessorId]] = (),
    faults: Optional[FaultPlan] = None,
    source: Optional[ProcessorId] = None,
    loopback_delay: float = 0.0,
    loopback_jitter: float = 0.0,
    seed: int = 0,
) -> Transport:
    """One transport over every directory-registered endpoint.

    ``kind`` is ``loopback`` or ``udp``.  UDP shares the directory's
    ``addresses`` dict by identity (see :class:`PeerDirectory`).  With a
    non-noop ``faults`` plan the transport is wrapped in
    :class:`FaultMiddleware` over the given ``links`` topology, keyed by
    ``time_base``; ``source`` names the processor whose crash a plan may
    never schedule.
    """
    if kind == "udp":
        inner: Transport = UDPTransport(directory.addresses)
    elif kind == "loopback":
        inner = LoopbackTransport(
            delay=loopback_delay, jitter=loopback_jitter, seed=seed
        )
    else:
        raise SimulationError(f"unknown transport kind {kind!r}")
    if faults is None or faults.is_noop:
        return inner
    if source is None:
        raise SimulationError("fault injection needs the source processor named")
    return FaultMiddleware(
        inner,
        faults,
        time_base,
        procs=directory.endpoints(),
        links=tuple(links),
        source=source,
    )
