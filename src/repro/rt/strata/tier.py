"""One tier of the hierarchy: a live cluster wearing its stratum role.

A :class:`TierRunner` wraps a :class:`~repro.rt.cluster.LiveCluster`
(with the federation's shared transport, time base, and address book
injected) and attaches the stratum machinery as ordinary crash-coupled
companions:

* every ``exports`` node gets a
  :class:`~repro.rt.strata.delegation.DelegationServer` - core nodes
  export their own estimator (``hops=1``), a downstream border
  re-exports its adopted bound (``hops=2``);
* a downstream tier's border gets an
  :class:`~repro.rt.strata.delegation.AnchorLink` holding the adopted
  upstream bound and running re-election.

The tier's *internal* protocol is completely unchanged: the border is
simply the tier's internal source (its clock must be monotonic, which
over a shared :class:`~repro.rt.clock.TimeBase` makes border local time
equal federation real time - so intra-tier ``"rt"`` samples remain
truthful as-is).  What the stratum adds is a second sample channel:
for every internal sample the runner derives an **external** estimate on
channel ``"strata"`` by composing the internal bound (which bounds
border local time) with the border's adopted upstream bound through
:func:`~repro.rt.strata.delegation.compose_delegated`.  On the core the
external estimate *is* the internal one - stratum 0 holds the source.
Both channels land in the same sample list with ``truth=rt``, so the
standard soundness accounting applies unchanged to federation-level
claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import asyncio

from ...core.errors import SimulationError
from ...core.events import ProcessorId
from ...core.intervals import ClockBound
from ...core.specs import TransitSpec
from ...sim.serialize import _num
from ...sim.faults import RetransmitPolicy
from ...sim.runner import EstimateSample
from ..clock import ClockSource, TimeBase
from ..cluster import ClusterConfig, CrashSchedule, LiveCluster, RtRunResult
from ..node import Node
from ..transport import Transport
from .delegation import (
    AnchorLink,
    AnchorLinkConfig,
    AnchorLinkStats,
    DelegatedBound,
    DelegationConfig,
    DelegationServer,
    DelegationStats,
    ElectionEvent,
    anchor_link_endpoint,
    compose_delegated,
    deleg_endpoint,
)
from .membership import TierSpec

__all__ = ["TierConfig", "TierResult", "TierRunner"]

#: sample channel carrying federation-level (external) estimates
STRATA_CHANNEL = "strata"


@dataclass(frozen=True)
class TierConfig:
    """Everything needed to run one tier inside a federation."""

    tier: TierSpec
    #: deadline in *shared time-base elapsed seconds* (federation time)
    duration: float = 3.0
    gossip_period: float = 0.25
    sample_period: float = 0.25
    transit: TransitSpec = field(default_factory=TransitSpec)
    #: per-processor hardware clocks; the border's must stay monotonic
    clocks: Mapping[ProcessorId, ClockSource] = field(default_factory=dict)
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)
    crashes: Tuple[CrashSchedule, ...] = ()
    delegation: DelegationConfig = field(default_factory=DelegationConfig)
    #: anchor-link knobs (stratum > 0 tiers)
    sync_period: float = 0.25
    probe_timeout: float = 0.25
    failover_threshold: float = 3.0
    max_age: float = 2.0
    gossip_jitter: float = 0.1
    seed: int = 0
    #: recorded in the cluster config; the actual transport is injected
    transport_kind: str = "loopback"

    def cluster_config(self) -> ClusterConfig:
        """The tier as a plain cluster: border = internal source."""
        return ClusterConfig(
            processors=self.tier.processors,
            links=self.tier.links,
            source=self.tier.border_proc,
            duration=self.duration,
            gossip_period=self.gossip_period,
            sample_period=self.sample_period,
            transit=self.transit,
            clocks=self.clocks,
            retransmit=self.retransmit,
            transport=self.transport_kind,
            crashes=self.crashes,
            gossip_jitter=self.gossip_jitter,
            seed=self.seed,
        )


@dataclass
class TierResult:
    """One tier's evidence: the cluster run plus the stratum story."""

    name: str
    stratum: int
    border: ProcessorId
    run: RtRunResult
    elections: List[ElectionEvent]
    anchor_stats: Optional[AnchorLinkStats]
    delegation_stats: Dict[ProcessorId, DelegationStats]
    #: each node's final event-anchored bound - survives the trip through
    #: a child process's STRATA-DOC, so Theorem 2.1 oracle parity can be
    #: checked against the merged evidence in the parent
    final_bounds: Dict[ProcessorId, ClockBound] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """The tier's row in a run document's ``strata`` section."""
        external = [
            s for s in self.run.samples if s.channel == STRATA_CHANNEL
        ]
        return {
            "name": self.name,
            "stratum": self.stratum,
            "border": self.border,
            "processors": list(self.run.spec.processors),
            "external_samples": len(external),
            "external_bounded": sum(1 for s in external if s.bound.is_bounded),
            "external_violations": sum(1 for s in external if not s.sound),
            "elections": [event.to_dict() for event in self.elections],
            "final_bounds": {
                proc: [_num(bound.lower), _num(bound.upper)]
                for proc, bound in sorted(self.final_bounds.items())
            },
            "anchor": self.anchor_stats.to_dict() if self.anchor_stats else None,
            "delegation": {
                proc: stats.to_dict()
                for proc, stats in sorted(self.delegation_stats.items())
            },
        }


class TierRunner:
    """Run one tier over a federation's shared transport and time base."""

    def __init__(
        self,
        config: TierConfig,
        *,
        transport: Transport,
        time_base: TimeBase,
        directory=None,
    ):
        self.config = config
        self.tier = config.tier
        self.cluster = LiveCluster(
            config.cluster_config(),
            transport=transport,
            time_base=time_base,
            directory=directory,
        )
        self.anchor_link: Optional[AnchorLink] = None
        if self.tier.stratum > 0:
            border = self.tier.border_proc
            self.anchor_link = AnchorLink(
                AnchorLinkConfig(
                    border=border,
                    anchors=self.tier.anchors,
                    sync_period=config.sync_period,
                    probe_timeout=config.probe_timeout,
                    failover_threshold=config.failover_threshold,
                    max_age=config.max_age,
                    seed=config.seed,
                ),
                transport,
                time_base,
                self.cluster.by_name[border].clock,
                tier=self.tier.name,
            )
            self.cluster.attach_companion(border, self.anchor_link)
        self.deleg_servers: Dict[ProcessorId, DelegationServer] = {}
        for proc in self.tier.exports:
            node = self.cluster.by_name[proc]
            bound_source = (
                self.anchor_link.composed_now if self.anchor_link is not None else None
            )
            server = DelegationServer(
                node,
                stratum=self.tier.stratum,
                transport=transport,
                config=config.delegation,
                bound_source=bound_source,
            )
            self.deleg_servers[proc] = server
            self.cluster.attach_companion(proc, server)
        self.cluster.on_sample.append(self._record_external)

    def extra_endpoints(self) -> Tuple[ProcessorId, ...]:
        """Non-protocol endpoints this tier binds (for the address book)."""
        names = [deleg_endpoint(proc) for proc in self.tier.exports]
        if self.tier.stratum > 0:
            names.append(anchor_link_endpoint(self.tier.border_proc))
        return tuple(names)

    # -- external sample derivation ----------------------------------------------

    def _record_external(self, node: Node, rt: float, bound) -> None:
        """Derive the federation-level estimate from one internal sample.

        Runs inside :meth:`LiveCluster.sample_once`, so the internal and
        external records share one atomic ``(rt, bound)`` reading.
        """
        if self.tier.stratum == 0:
            # the core holds the source: internal bounds are external bounds
            external = bound
        else:
            delegated: Optional[DelegatedBound] = self.anchor_link.current()
            border_drift = self.cluster.by_name[self.tier.border_proc].clock.advertised
            external = compose_delegated(bound, delegated, border_drift)
        self.cluster.samples.append(
            EstimateSample(
                rt=rt, proc=node.proc, channel=STRATA_CHANNEL, bound=external, truth=rt
            )
        )

    # -- lifecycle (the federation drives these) ---------------------------------

    async def start(self) -> None:
        if self.cluster.owns_transport:
            raise SimulationError(
                "a TierRunner needs the federation's shared transport injected"
            )
        await self.cluster.start()

    async def run_sampling(self, abort: Optional[asyncio.Event] = None) -> bool:
        return await self.cluster.run_sampling(abort)

    async def finish(self) -> None:
        await self.cluster.finish()

    def result(self, *, aborted: bool = False) -> TierResult:
        run = self.cluster.result(aborted=aborted)
        return TierResult(
            name=self.tier.name,
            stratum=self.tier.stratum,
            border=self.tier.border_proc,
            run=run,
            elections=list(self.anchor_link.elections) if self.anchor_link else [],
            anchor_stats=self.anchor_link.stats if self.anchor_link else None,
            delegation_stats={
                proc: server.stats for proc, server in self.deleg_servers.items()
            },
            final_bounds={
                proc: stats.event_bound for proc, stats in run.nodes.items()
            },
        )
