"""Run a whole federation: many tiers, one hierarchy, one or many processes.

Two runners share every piece but the process boundary:

* :func:`run_federation` - every tier in one asyncio process over one
  shared transport (loopback or UDP).  The cheap path for tests and
  experiments.
* :func:`run_federation_procs` - the core tier in *this* process, every
  downstream tier in its own OS process (``python -m
  repro.rt.strata.tier_main``), all over real UDP sockets.  Real time
  stays comparable because ``time.monotonic()`` is ``CLOCK_MONOTONIC``
  (one axis per boot): the parent ships its
  :class:`~repro.rt.clock.TimeBase` origin to every child.

The multi-process address handshake rides the children's stdio:

1. the parent registers *every* federation endpoint in its
   :class:`~repro.rt.strata.membership.PeerDirectory`, starts the core
   tier (resolving the core's port-0 binds), and spawns each child with
   one JSON boot line - origin, federation config, tier name, and the
   core's resolved addresses;
2. each child binds its own endpoints (port 0), prints
   ``STRATA-ADDR {..}``, and waits;
3. the parent folds every child's addresses into its directory and
   relays the full map back as one ``STRATA-PEERS`` line - the start
   barrier, and the step that lets siblings (and core delegation
   *replies*) route;
4. at the shared deadline every process winds down; each child prints
   ``STRATA-DOC {..}`` (its tier's serialize-v2 document plus stratum
   stats) and the parent merges everything into one
   :class:`FederationResult`.

Addresses learned mid-run route immediately: the directory's
``addresses`` dict is shared by identity with the UDP transport, which
reads it on every send.  Until the handshake completes, cross-process
datagrams are simply lost - the protocol already tolerates loss.

SIGINT follows the repro-rt clean-death contract: the parent forwards it
to the children, everyone winds down at the next period edge, and the
merged document carries ``"partial": true``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...core.errors import SimulationError
from ...core.events import ProcessorId
from ...core.intervals import ClockBound
from ...core.specs import SystemSpec, TransitSpec
from ...sim.clock import PiecewiseDriftingClock
from ...sim.runner import EstimateSample
from ...sim.serialize import (
    FORMAT_VERSION,
    samples_to_dicts,
    spec_from_dict,
    spec_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from ...sim.trace import ExecutionTrace
from ..clock import ClockSource, ModelClockSource, MonotonicClockSource, SkewedClockSource, TimeBase
from ..cluster import CrashSchedule, RtRunResult
from .delegation import (
    AnchorLinkStats,
    DelegationConfig,
    DelegationStats,
    ElectionEvent,
    anchor_link_endpoint,
    deleg_endpoint,
)
from .gradient import gradient_scorecard
from .membership import FederationSpec, PeerDirectory, TierSpec, build_transport
from .tier import STRATA_CHANNEL, TierConfig, TierResult, TierRunner

__all__ = [
    "FederationConfig",
    "FederationResult",
    "clock_from_plan",
    "tier_endpoints",
    "register_federation",
    "run_federation",
    "run_federation_procs",
    "run_federation_sync",
]

#: the importable source root, for PYTHONPATH of child processes
_SRC_ROOT = Path(__file__).resolve().parents[3]

#: stdout/stdin line tags of the child handshake
ADDR_TAG = "STRATA-ADDR"
PEERS_TAG = "STRATA-PEERS"
DOC_TAG = "STRATA-DOC"


# -- clock plans (JSON-able clock descriptions, buildable in any process) -------------


def clock_from_plan(plan: Optional[Dict]) -> ClockSource:
    """Build a :class:`ClockSource` from a JSON-able plan.

    Plans (``None`` and ``{"kind": "monotonic"}`` mean a perfect clock)::

        {"kind": "skewed", "rate": 1.0001, "offset": 0.0,
         "band": [0.999, 1.001]}          # band optional
        {"kind": "drifting", "seed": 7, "band_ppm": 200.0,
         "mean_segment": 1.0}
    """
    if plan is None:
        return MonotonicClockSource()
    kind = plan.get("kind")
    if kind == "monotonic":
        return MonotonicClockSource()
    if kind == "skewed":
        band = plan.get("band")
        return SkewedClockSource(
            float(plan.get("rate", 1.0)),
            float(plan.get("offset", 0.0)),
            advertised_band=tuple(band) if band is not None else None,
        )
    if kind == "drifting":
        band = float(plan.get("band_ppm", 200.0)) * 1e-6
        return ModelClockSource(
            PiecewiseDriftingClock(
                int(plan.get("seed", 0)),
                r_min=1.0 - band,
                r_max=1.0 + band,
                mean_segment=float(plan.get("mean_segment", 1.0)),
            )
        )
    raise SimulationError(f"unknown clock plan kind {kind!r}")


# -- configuration --------------------------------------------------------------------


@dataclass(frozen=True)
class FederationConfig:
    """Everything needed to run one federation, in JSON-able form.

    Clocks are *plans* (see :func:`clock_from_plan`) rather than live
    :class:`ClockSource` objects so the exact same configuration can be
    shipped to a child process and rebuilt there.
    """

    spec: FederationSpec
    duration: float = 3.0
    gossip_period: float = 0.25
    sample_period: float = 0.25
    transport: str = "loopback"  # in-process runs; the procs runner forces udp
    clock_plans: Mapping[ProcessorId, Dict] = field(default_factory=dict)
    crashes: Tuple[CrashSchedule, ...] = ()
    #: delegation-server staleness threshold (local s)
    stale_after: float = 1.0
    #: anchor-link knobs
    sync_period: float = 0.2
    probe_timeout: float = 0.2
    failover_threshold: float = 3.0
    max_age: float = 1.5
    gossip_jitter: float = 0.1
    loopback_delay: float = 0.0
    loopback_jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.transport not in ("loopback", "udp"):
            raise SimulationError(f"unknown transport kind {self.transport!r}")
        if self.duration <= 0:
            raise SimulationError("duration must be positive")
        known = set(self.spec.all_processors)
        for proc in self.clock_plans:
            if proc not in known:
                raise SimulationError(f"clock plan for unknown processor {proc!r}")
        for crash in self.crashes:
            if crash.proc not in known:
                raise SimulationError(f"crash schedule names unknown {crash.proc!r}")

    def tier_config(self, tier: TierSpec, *, transport_kind: Optional[str] = None) -> TierConfig:
        """The per-tier slice of this federation configuration."""
        index = [t.name for t in self.spec.tiers].index(tier.name)
        clocks = {
            proc: clock_from_plan(self.clock_plans[proc])
            for proc in tier.processors
            if proc in self.clock_plans
        }
        return TierConfig(
            tier=tier,
            duration=self.duration,
            gossip_period=self.gossip_period,
            sample_period=self.sample_period,
            clocks=clocks,
            crashes=tuple(c for c in self.crashes if c.proc in tier.processors),
            delegation=DelegationConfig(stale_after=self.stale_after),
            sync_period=self.sync_period,
            probe_timeout=self.probe_timeout,
            failover_threshold=self.failover_threshold,
            max_age=self.max_age,
            gossip_jitter=self.gossip_jitter,
            seed=self.seed + 101 * index,
            transport_kind=transport_kind if transport_kind is not None else self.transport,
        )

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec.to_dict(),
            "duration": self.duration,
            "gossip_period": self.gossip_period,
            "sample_period": self.sample_period,
            "transport": self.transport,
            "clock_plans": {proc: dict(plan) for proc, plan in self.clock_plans.items()},
            "crashes": [
                [c.proc, c.stop_at, c.restart_at] for c in self.crashes
            ],
            "stale_after": self.stale_after,
            "sync_period": self.sync_period,
            "probe_timeout": self.probe_timeout,
            "failover_threshold": self.failover_threshold,
            "max_age": self.max_age,
            "gossip_jitter": self.gossip_jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FederationConfig":
        return cls(
            spec=FederationSpec.from_dict(data["spec"]),
            duration=float(data["duration"]),
            gossip_period=float(data["gossip_period"]),
            sample_period=float(data["sample_period"]),
            transport=data.get("transport", "udp"),
            clock_plans=data.get("clock_plans", {}),
            crashes=tuple(
                CrashSchedule(proc=proc, stop_at=stop, restart_at=restart)
                for proc, stop, restart in data.get("crashes", [])
            ),
            stale_after=float(data.get("stale_after", 1.0)),
            sync_period=float(data.get("sync_period", 0.2)),
            probe_timeout=float(data.get("probe_timeout", 0.2)),
            failover_threshold=float(data.get("failover_threshold", 3.0)),
            max_age=float(data.get("max_age", 1.5)),
            gossip_jitter=float(data.get("gossip_jitter", 0.1)),
            seed=int(data.get("seed", 0)),
        )


def tier_endpoints(tier: TierSpec) -> Tuple[ProcessorId, ...]:
    """Every transport endpoint one tier binds locally."""
    names = list(tier.processors) + [deleg_endpoint(proc) for proc in tier.exports]
    if tier.stratum > 0:
        names.append(anchor_link_endpoint(tier.border_proc))
    return tuple(names)


def register_federation(directory: PeerDirectory, spec: FederationSpec) -> None:
    """Register every federation endpoint (all tiers) in one directory."""
    for tier in spec.tiers:
        for name in tier_endpoints(tier):
            directory.register(name, tier=tier.name)


# -- results --------------------------------------------------------------------------


@dataclass
class FederationResult:
    """A finished federation run: per-tier evidence plus the merged view."""

    spec: FederationSpec
    tiers: List[TierResult]
    aborted: bool = False

    def tier(self, name: str) -> TierResult:
        for result in self.tiers:
            if result.name == name:
                return result
        raise SimulationError(f"no tier result named {name!r}")

    @property
    def samples(self) -> List[EstimateSample]:
        merged = [s for result in self.tiers for s in result.run.samples]
        merged.sort(key=lambda s: (s.rt, s.proc, s.channel))
        return merged

    @property
    def elections(self) -> List[ElectionEvent]:
        events = [e for result in self.tiers for e in result.elections]
        events.sort(key=lambda e: e.rt)
        return events

    def soundness_violations(self, channel: Optional[str] = None) -> List[EstimateSample]:
        return [
            s
            for s in self.samples
            if not s.sound and (channel is None or s.channel == channel)
        ]

    @property
    def messages_sent(self) -> int:
        return sum(result.run.messages_sent for result in self.tiers)

    @property
    def messages_lost(self) -> int:
        return sum(result.run.messages_lost for result in self.tiers)

    def reconvergence_after(
        self, rt0: float, proc: ProcessorId, channel: Optional[str] = STRATA_CHANNEL
    ) -> Tuple[float, int]:
        """Per-processor re-convergence lag, on the federation channel.

        Delegates to the owning tier's
        :meth:`~repro.rt.cluster.RtRunResult.reconvergence_after`, so the
        ``(inf, 0)`` zero-sample sentinel applies federation-wide.
        """
        owner = self.spec.tier_of(proc)
        return self.tier(owner.name).run.reconvergence_after(rt0, proc, channel)

    def union_spec(self) -> SystemSpec:
        """One advertised spec spanning the whole federation.

        Processors keep their per-tier drift advertisement; links are the
        union graph (intra-tier gossip plus border-anchor delegation
        edges); the source is the core tier's internal source.
        """
        drift = {}
        for result in self.tiers:
            drift.update(result.run.spec.drift)
        return SystemSpec.build(
            source=self.spec.core.border_proc,
            processors=self.spec.all_processors,
            links=self.spec.union_links(),
            drift=drift,
            default_transit=TransitSpec(),
        )

    def merged_trace(self) -> ExecutionTrace:
        """All tiers' events on one chronological real-time axis.

        Well-defined because every process measured real time off one
        shared :class:`TimeBase` origin.  Event ids never collide: they
        are processor-scoped and tiers are disjoint.
        """
        records = [
            (entry.event, entry.rt)
            for result in self.tiers
            for entry in result.run.trace
        ]
        records.sort(key=lambda pair: (pair[1], pair[0].is_receive, pair[0].proc, pair[0].seq))
        trace = ExecutionTrace()
        for event, rt in records:
            trace.record(event, rt)
        for result in self.tiers:
            for eid in result.run.trace.lost_sends:
                trace.record_lost(eid)
        return trace

    def gradient(self) -> Dict:
        """The gradient scorecard over the merged ``strata`` samples."""
        return gradient_scorecard(self.spec, self.samples)

    def to_document(self) -> Dict:
        """One serialize-v2 document for the whole federation.

        Loads through :func:`repro.sim.serialize.load_run` like any
        cluster run; the extra ``strata`` section (tier rows, elections,
        gradient scorecard) passes through untouched.
        """
        document = {
            "version": FORMAT_VERSION,
            "spec": spec_to_dict(self.union_spec()),
            "trace": trace_to_dict(self.merged_trace()),
            "samples": samples_to_dicts(self.samples),
            "messages_sent": self.messages_sent,
            "messages_lost": self.messages_lost,
            "links": [row for result in self.tiers for row in result.run.link_rows],
            "strata": {
                "federation": self.spec.to_dict(),
                "tiers": [result.to_dict() for result in self.tiers],
                "elections": [event.to_dict() for event in self.elections],
                "gradient": self.gradient(),
            },
        }
        if self.aborted:
            document["partial"] = True
        return document


def dump_federation(result: FederationResult, path: str) -> None:
    """Archive a federation run as one serialize-v2 JSON document."""
    with open(path, "w") as handle:
        json.dump(result.to_document(), handle)


# -- in-process runner ----------------------------------------------------------------


async def run_federation(
    config: FederationConfig, *, abort: Optional[asyncio.Event] = None
) -> FederationResult:
    """Run every tier in this process over one shared transport."""
    time_base = TimeBase()
    directory = PeerDirectory()
    register_federation(directory, config.spec)
    transport = build_transport(
        config.transport,
        directory,
        time_base=time_base,
        loopback_delay=config.loopback_delay,
        loopback_jitter=config.loopback_jitter,
        seed=config.seed,
    )
    runners = [
        TierRunner(
            config.tier_config(tier),
            transport=transport,
            time_base=time_base,
            directory=directory,
        )
        for tier in config.spec.tiers
    ]
    aborted = False
    try:
        await transport.start()
        for runner in runners:
            await runner.start()
        flags = await asyncio.gather(
            *(runner.run_sampling(abort) for runner in runners)
        )
        aborted = any(flags)
    finally:
        for runner in runners:
            await runner.finish()
        await transport.stop()
    return FederationResult(
        spec=config.spec,
        tiers=[runner.result(aborted=aborted) for runner in runners],
        aborted=aborted,
    )


# -- multi-process runner -------------------------------------------------------------


def _unnum(value) -> float:
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return float(value)


def _samples_from_dicts(rows: Sequence[Dict]) -> List[EstimateSample]:
    return [
        EstimateSample(
            rt=float(row["rt"]),
            proc=row["proc"],
            channel=row.get("channel", "rt"),
            bound=ClockBound(_unnum(row["lower"]), _unnum(row["upper"])),
            truth=float(row["truth"]),
        )
        for row in rows
    ]


def _deleg_stats_from_dict(data: Dict) -> DelegationStats:
    return DelegationStats(
        dreqs=int(data.get("dreqs", 0)),
        replies=int(data.get("replies", 0)),
        degraded_replies=int(data.get("degraded_replies", 0)),
        shed=dict(data.get("shed", {})),
        decode_errors=int(data.get("decode_errors", 0)),
        rejected_frames=int(data.get("rejected_frames", 0)),
        dropped_down=int(data.get("dropped_down", 0)),
    )


def _anchor_stats_from_dict(data: Dict) -> AnchorLinkStats:
    fields = (
        "dreqs",
        "adopted",
        "degraded_adopted",
        "sheds",
        "timeouts",
        "elections",
        "stale_refusals",
        "unmatched",
        "decode_errors",
    )
    return AnchorLinkStats(**{name: int(data.get(name, 0)) for name in fields})


def tier_result_from_payload(payload: Dict) -> TierResult:
    """Rebuild a child tier's :class:`TierResult` from its STRATA-DOC."""
    doc = payload["document"]
    info = payload["tier"]
    run = RtRunResult(
        spec=spec_from_dict(doc["spec"]),
        trace=trace_from_dict(doc["trace"]),
        samples=_samples_from_dicts(doc["samples"]),
        nodes={},  # NodeStats stay in the child; counters live in `info`
        messages_sent=int(doc.get("messages_sent", 0)),
        messages_lost=int(doc.get("messages_lost", 0)),
        link_rows=list(doc.get("links", [])),
        aborted=bool(doc.get("partial", False)),
    )
    anchor = info.get("anchor")
    return TierResult(
        name=info["name"],
        stratum=int(info["stratum"]),
        border=info["border"],
        run=run,
        elections=[ElectionEvent(**event) for event in info.get("elections", [])],
        anchor_stats=_anchor_stats_from_dict(anchor) if anchor else None,
        delegation_stats={
            proc: _deleg_stats_from_dict(stats)
            for proc, stats in info.get("delegation", {}).items()
        },
        final_bounds={
            proc: ClockBound(_unnum(row[0]), _unnum(row[1]))
            for proc, row in info.get("final_bounds", {}).items()
        },
    )


async def _read_tagged(
    stream: asyncio.StreamReader, tag: str, *, timeout: float, who: str
) -> Dict:
    """Read lines until one starts with ``tag``; parse its JSON payload."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        remaining = deadline - asyncio.get_running_loop().time()
        if remaining <= 0:
            raise SimulationError(f"timed out waiting for {tag} from {who}")
        try:
            line = await asyncio.wait_for(stream.readline(), timeout=remaining)
        except asyncio.TimeoutError:
            raise SimulationError(f"timed out waiting for {tag} from {who}") from None
        if not line:
            raise SimulationError(f"{who} exited before sending {tag}")
        text = line.decode("utf-8", "replace").strip()
        if text.startswith(tag + " "):
            try:
                return json.loads(text[len(tag) + 1 :])
            except json.JSONDecodeError as exc:
                raise SimulationError(f"bad {tag} payload from {who}: {exc}") from None
        # anything else is the child thinking out loud; not ours to parse


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    extra = str(_SRC_ROOT)
    current = env.get("PYTHONPATH")
    env["PYTHONPATH"] = extra if not current else extra + os.pathsep + current
    return env


async def run_federation_procs(
    config: FederationConfig,
    *,
    abort: Optional[asyncio.Event] = None,
    python: str = sys.executable,
) -> FederationResult:
    """Core tier here, every downstream tier in its own OS process, over UDP."""
    spec = config.spec
    if len(spec.tiers) < 2:
        raise SimulationError("a multi-process federation needs a downstream tier")
    time_base = TimeBase()
    directory = PeerDirectory()
    register_federation(directory, spec)
    transport = build_transport("udp", directory, time_base=time_base)
    core_runner = TierRunner(
        config.tier_config(spec.core, transport_kind="udp"),
        transport=transport,
        time_base=time_base,
        directory=directory,
    )
    children: List[Tuple[TierSpec, asyncio.subprocess.Process]] = []
    payloads: List[Dict] = []
    core_aborted = False
    try:
        await transport.start()
        await core_runner.start()
        core_addresses = {
            name: list(directory.addresses[name])
            for name in tier_endpoints(spec.core)
        }
        for tier in spec.tiers[1:]:
            boot = {
                "origin": time_base.origin,
                "federation": config.to_dict(),
                "tier": tier.name,
                "addresses": core_addresses,
            }
            child = await asyncio.create_subprocess_exec(
                python,
                "-m",
                "repro.rt.strata.tier_main",
                stdin=asyncio.subprocess.PIPE,
                stdout=asyncio.subprocess.PIPE,
                env=_child_env(),
            )
            child.stdin.write((json.dumps(boot) + "\n").encode())
            await child.stdin.drain()
            children.append((tier, child))
        # fold every child's resolved addresses into the shared book ...
        for tier, child in children:
            learned = await _read_tagged(
                child.stdout, ADDR_TAG, timeout=20.0, who=f"tier {tier.name!r}"
            )
            for name, (host, port) in learned.items():
                directory.update_address(name, host, int(port))
        # ... and relay the complete map back (the start barrier)
        full_map = {name: list(addr) for name, addr in directory.addresses.items()}
        peers_line = (PEERS_TAG + " " + json.dumps(full_map) + "\n").encode()
        for _tier, child in children:
            child.stdin.write(peers_line)
            await child.stdin.drain()
        core_aborted = await core_runner.run_sampling(abort)
        if core_aborted:
            # clean-death: forward the interrupt so children wind down too
            for _tier, child in children:
                if child.returncode is None:
                    child.send_signal(signal.SIGINT)
        for tier, child in children:
            payload = await _read_tagged(
                child.stdout,
                DOC_TAG,
                timeout=config.duration + 30.0,
                who=f"tier {tier.name!r}",
            )
            payloads.append(payload)
            await child.wait()
    finally:
        for _tier, child in children:
            if child.returncode is None:
                child.kill()
        await core_runner.finish()
        await transport.stop()
    aborted = core_aborted or any(p.get("aborted") for p in payloads)
    tiers = [core_runner.result(aborted=aborted)] + [
        tier_result_from_payload(payload) for payload in payloads
    ]
    return FederationResult(spec=spec, tiers=tiers, aborted=aborted)


def run_federation_sync(
    config: FederationConfig, *, processes: bool = False
) -> FederationResult:
    """Blocking wrapper: run the federation on a fresh event loop."""
    if processes:
        return asyncio.run(run_federation_procs(config))
    return asyncio.run(run_federation(config))
