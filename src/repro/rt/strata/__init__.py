"""Stratum hierarchy: federated multi-tier clusters with anchor delegation.

The paper's efficiency results (Sec 4: ``K1 <= 16|V|`` messages,
``K2 <= 2`` hops of indirection) make an NTP-style stratum hierarchy
sound: a small fully-synced *core* cluster (stratum 0) can delegate
external time to downstream tiers without losing the optimal bounds,
because each tier adds at most two hops of indirection and a quantified
Cristian-style widening.  This package layers that hierarchy on the
existing runtime:

* :mod:`repro.rt.strata.membership` - the topology-agnostic membership +
  routing layer extracted from :mod:`repro.rt.cluster`: a live
  :class:`PeerDirectory` (endpoint address book + tier labels) shared
  with the transport, per-tier :class:`TierSpec` topologies, and a
  :class:`FederationSpec` validating the inter-tier link policy
  (only anchors export, downstream tiers name upstream candidates,
  hop distances for the gradient scorecard).
* :mod:`repro.rt.strata.delegation` - the delegation frame pair
  (``dreq``/``deleg``, additive wire frames with never-raise decode),
  the :class:`DelegationServer` riding core nodes (``hops=1``) and
  border re-exports (``hops=2``, drift-widened), and the
  :class:`AnchorLink` border client: Cristian adoption of upstream
  bounds, staleness expiry, and accrual-detector-driven anchor
  re-election over an ordered candidate list.
* :mod:`repro.rt.strata.tier` - :class:`TierRunner`: one tier is one
  :class:`~repro.rt.cluster.LiveCluster` (the border node is the tier's
  internal time source) plus its delegation endpoints; every sample
  round also records *external* bounds on ``channel="strata"`` by
  composing the internal estimate with the border's delegated bound.
* :mod:`repro.rt.strata.federation` - the whole hierarchy, in one
  process (shared transport/time base) or spanning OS processes over
  UDP (``run_federation_procs``: subprocess tiers with an address
  handshake and a shared monotonic origin).
* :mod:`repro.rt.strata.gradient` - the gradient scorecard following
  Kuhn/Lenzen/Locher/Oshman: per-pair clock skew as a function of
  federation hop distance, emitted in the serialize-v2 run document.
* :mod:`repro.rt.strata.cli` - the ``repro-strata`` entry point
  (clean-death contract shared with ``repro-rt``/``repro-serve``) and
  :mod:`repro.rt.strata.tier_main`, the downstream-tier child process.
"""

from .membership import (
    FederationSpec,
    K2_MAX_HOPS,
    PeerDirectory,
    TierSpec,
    build_transport,
)
from .delegation import (
    ANCHOR_LINK_SUFFIX,
    DELEG_SUFFIX,
    AnchorLink,
    AnchorLinkConfig,
    AnchorLinkStats,
    DelegatedBound,
    DelegationConfig,
    DelegationServer,
    DelegationStats,
    ElectionEvent,
    anchor_link_endpoint,
    compose_delegated,
    deleg_endpoint,
    deleg_owner,
)
from .gradient import GradientRow, gradient_scorecard
from .tier import TierConfig, TierResult, TierRunner
from .federation import (
    FederationConfig,
    FederationResult,
    dump_federation,
    run_federation,
    run_federation_procs,
    run_federation_sync,
)

__all__ = [
    "FederationSpec",
    "K2_MAX_HOPS",
    "PeerDirectory",
    "TierSpec",
    "build_transport",
    "ANCHOR_LINK_SUFFIX",
    "DELEG_SUFFIX",
    "AnchorLink",
    "AnchorLinkConfig",
    "AnchorLinkStats",
    "DelegatedBound",
    "DelegationConfig",
    "DelegationServer",
    "DelegationStats",
    "ElectionEvent",
    "anchor_link_endpoint",
    "compose_delegated",
    "deleg_endpoint",
    "deleg_owner",
    "GradientRow",
    "gradient_scorecard",
    "TierConfig",
    "TierResult",
    "TierRunner",
    "FederationConfig",
    "FederationResult",
    "dump_federation",
    "run_federation",
    "run_federation_procs",
    "run_federation_sync",
]
