"""Child-process entry point: run one downstream tier of a federation.

``python -m repro.rt.strata.tier_main`` speaks the stdio handshake
documented in :mod:`repro.rt.strata.federation`: one JSON boot line on
stdin (shared time-base origin, federation config, this tier's name, the
parent's resolved addresses), then ``STRATA-ADDR`` out, ``STRATA-PEERS``
in, run to the shared deadline, ``STRATA-DOC`` out.

Clean death: SIGINT sets the abort event, the tier winds down at the
next period edge, and the STRATA-DOC payload is still emitted with
``aborted`` set - the parent decides the overall exit status.  A child
never exits with a traceback over a mere interrupt.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Dict, Optional

from .federation import (
    ADDR_TAG,
    DOC_TAG,
    PEERS_TAG,
    FederationConfig,
    register_federation,
    tier_endpoints,
)
from .membership import PeerDirectory, build_transport
from ..clock import TimeBase
from .tier import TierRunner


def _read_boot_line() -> Dict:
    line = sys.stdin.readline()
    if not line.strip():
        raise SystemExit("tier_main: expected a JSON boot line on stdin")
    return json.loads(line)


async def _await_peers(timeout: float) -> Optional[Dict]:
    """Wait for the parent's STRATA-PEERS relay (also the start barrier).

    stdin is read in a worker thread so the tier's event loop keeps
    running.  A missing relay is survivable - the boot line already
    carried the parent's addresses - so a timeout degrades to ``None``
    instead of failing the run.
    """
    loop = asyncio.get_running_loop()
    try:
        line = await asyncio.wait_for(
            loop.run_in_executor(None, sys.stdin.readline), timeout=timeout
        )
    except asyncio.TimeoutError:
        return None
    text = (line or "").strip()
    if not text.startswith(PEERS_TAG + " "):
        return None
    try:
        return json.loads(text[len(PEERS_TAG) + 1 :])
    except json.JSONDecodeError:
        return None


async def _drive(boot: Dict) -> int:
    config = FederationConfig.from_dict(boot["federation"])
    tier = config.spec.tier(boot["tier"])
    time_base = TimeBase(float(boot["origin"]))
    directory = PeerDirectory()
    register_federation(directory, config.spec)
    for name, (host, port) in boot.get("addresses", {}).items():
        directory.update_address(name, host, int(port))

    abort = asyncio.Event()
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGINT, abort.set)
        loop.add_signal_handler(signal.SIGTERM, abort.set)
    except (NotImplementedError, RuntimeError):
        pass

    transport = build_transport("udp", directory, time_base=time_base)
    runner = TierRunner(
        config.tier_config(tier, transport_kind="udp"),
        transport=transport,
        time_base=time_base,
        directory=directory,
    )
    aborted = False
    try:
        await transport.start()
        await runner.start()
        own = {
            name: list(directory.addresses[name]) for name in tier_endpoints(tier)
        }
        print(ADDR_TAG + " " + json.dumps(own), flush=True)
        peers = await _await_peers(timeout=20.0)
        if peers:
            for name, (host, port) in peers.items():
                if name in directory:
                    directory.update_address(name, host, int(port))
        aborted = await runner.run_sampling(abort)
    finally:
        await runner.finish()
        await transport.stop()
    result = runner.result(aborted=aborted)
    payload = {
        "tier": result.to_dict(),
        "document": result.run.to_document(),
        "aborted": aborted,
    }
    print(DOC_TAG + " " + json.dumps(payload), flush=True)
    return 0


def main() -> int:
    boot = _read_boot_line()
    return asyncio.run(_drive(boot))


if __name__ == "__main__":
    sys.exit(main())
