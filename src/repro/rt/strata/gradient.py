"""Gradient scorecard: pairwise sync quality as a function of hop distance.

The gradient clock synchronization literature (Fan & Lynch; Lenzen,
Locher & Wattenhofer) asks how the *skew between two nodes* scales with
their *distance in the network*, not just with the network diameter.  A
stratum hierarchy is exactly the setting where that distinction bites:
two nodes inside one tier sit a hop or two apart, while nodes in sibling
tiers are separated by the whole delegation path through stratum 0.

The scorecard works on recorded external estimates (the ``strata``
channel samples every tier emits).  For a pair ``(a, b)`` it matches
samples nearest in real time and compares *offset errors*

    ``skew = |(mid_a - rt_a) - (mid_b - rt_b)|``

i.e. each node's midpoint estimate of source time minus the real time of
its own sample.  Subtracting ``rt`` first makes the comparison robust to
the samples not being taken at the same instant: a perfectly synced pair
scores ~0 even when their sampling cadences interleave arbitrarily,
because source time advances at real-time rate.  Pairs are then bucketed
by hop distance over the federation's union graph (tier links plus
border-anchor links), giving the empirical gradient: mean/max observed
skew per hop count.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.events import ProcessorId
from ...sim.runner import EstimateSample
from .membership import FederationSpec

__all__ = ["GradientRow", "gradient_scorecard"]


@dataclass(frozen=True)
class GradientRow:
    """Observed skew statistics for one node pair."""

    a: ProcessorId
    b: ProcessorId
    #: hop distance over the federation union graph; None if disconnected
    hops: Optional[int]
    mean_skew: float
    max_skew: float
    #: number of matched sample pairs behind the statistics
    samples: int

    def to_dict(self) -> Dict:
        return {
            "a": self.a,
            "b": self.b,
            "hops": self.hops,
            "mean_skew": self.mean_skew,
            "max_skew": self.max_skew,
            "samples": self.samples,
        }


def _offset_series(
    samples: Sequence[EstimateSample], proc: ProcessorId, channel: str
) -> Tuple[List[float], List[float]]:
    """Per-proc (rt, midpoint - rt) series of bounded channel samples."""
    rts: List[float] = []
    offsets: List[float] = []
    for sample in samples:
        if sample.proc != proc or sample.channel != channel:
            continue
        if not sample.bound.is_bounded:
            continue
        rts.append(sample.rt)
        offsets.append(sample.bound.midpoint - sample.rt)
    return rts, offsets


def _match_nearest(
    rts_a: List[float],
    offs_a: List[float],
    rts_b: List[float],
    offs_b: List[float],
    *,
    max_gap: float,
) -> List[float]:
    """Skews of each a-sample against b's nearest-in-time sample."""
    skews: List[float] = []
    for rt, off_a in zip(rts_a, offs_a):
        idx = bisect_left(rts_b, rt)
        best = None
        for j in (idx - 1, idx):
            if 0 <= j < len(rts_b):
                gap = abs(rts_b[j] - rt)
                if best is None or gap < best[0]:
                    best = (gap, offs_b[j])
        if best is not None and best[0] <= max_gap:
            skews.append(abs(off_a - best[1]))
    return skews


def gradient_scorecard(
    spec: FederationSpec,
    samples: Sequence[EstimateSample],
    *,
    channel: str = "strata",
    max_gap: float = 0.5,
) -> Dict:
    """Pairwise skew vs hop distance over a federation's recorded samples.

    Returns a serialize-v2-ready dict::

        {"channel": ..., "max_gap": ..., "pairs": [GradientRow dicts],
         "by_hops": {"1": {"pairs": n, "mean_skew": ..., "max_skew": ...}, ...}}

    Pairs with no matched samples (one side never bounded, or sampling
    windows disjoint beyond ``max_gap``) are reported with ``samples=0``
    and NaN-free zero skews so the document stays JSON-clean; they are
    excluded from the ``by_hops`` aggregates.
    """
    procs = spec.all_processors
    series = {proc: _offset_series(samples, proc, channel) for proc in procs}
    pairs: List[GradientRow] = []
    by_hops: Dict[int, List[float]] = {}
    by_hops_max: Dict[int, float] = {}
    for i, a in enumerate(procs):
        for b in procs[i + 1 :]:
            rts_a, offs_a = series[a]
            rts_b, offs_b = series[b]
            skews = _match_nearest(rts_a, offs_a, rts_b, offs_b, max_gap=max_gap)
            hops = spec.hop_distance(a, b)
            if skews:
                row = GradientRow(
                    a=a,
                    b=b,
                    hops=hops,
                    mean_skew=sum(skews) / len(skews),
                    max_skew=max(skews),
                    samples=len(skews),
                )
                if hops is not None:
                    by_hops.setdefault(hops, []).append(row.mean_skew)
                    by_hops_max[hops] = max(by_hops_max.get(hops, 0.0), row.max_skew)
            else:
                row = GradientRow(a=a, b=b, hops=hops, mean_skew=0.0, max_skew=0.0, samples=0)
            pairs.append(row)
    return {
        "channel": channel,
        "max_gap": max_gap,
        "pairs": [row.to_dict() for row in pairs],
        "by_hops": {
            str(hops): {
                "pairs": len(means),
                "mean_skew": sum(means) / len(means),
                "max_skew": by_hops_max[hops],
            }
            for hops, means in sorted(by_hops.items())
        },
    }
