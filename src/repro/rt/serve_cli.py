"""``repro-serve``: load-test the Cristian serving tier from the shell.

Stands up a live cluster, attaches serving endpoints to the non-source
nodes, swarms them with probing clients, and prints the tier's
scorecard: offered/served queries per second, shed rate, p99 client
error bound, failover count, and re-convergence time after a primary
crash.  ``--out`` archives the full run document (the cluster's
serialize-v2 document plus a ``serving`` section).

Robustness contract (shared with ``repro-rt``): SIGINT or ``--timeout``
expiry winds the swarm down cooperatively, archives the partial
document (``"partial": true``), and exits non-zero - no traceback, no
hang.  ``--require-sound`` makes the exit status a soundness gate:
non-zero if any client accepted a bound excluding true source time, or
if a scheduled crash stranded a client without recovery.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional

from .client import ClientConfig
from .cli import (
    _clocks,
    _parse_crash,
    abort_exit_code,
    run_abortable,
    shape_links,
)
from .cluster import ClusterConfig, CrashSchedule
from .loadgen import ServeLoadConfig, run_serve_load
from .serve import ServeConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Load-test the probe/reply serving tier of a live cluster.",
    )
    cluster = parser.add_argument_group("cluster")
    cluster.add_argument("--nodes", type=int, default=3, help="cluster size (default 3)")
    cluster.add_argument(
        "--shape",
        choices=("line", "ring", "star", "full", "tree"),
        default="full",
        help="topology over n0..n{N-1}; n0 is the source/root (default full)",
    )
    cluster.add_argument(
        "--transport",
        choices=("loopback", "udp"),
        default="loopback",
        help="in-process loopback or real UDP sockets on 127.0.0.1",
    )
    cluster.add_argument("--duration", type=float, default=3.0, help="wall seconds to run")
    cluster.add_argument(
        "--period", type=float, default=0.1, help="gossip period in seconds"
    )
    cluster.add_argument(
        "--sample-period", type=float, default=0.25, help="estimate sampling period"
    )
    cluster.add_argument(
        "--skew-ppm",
        type=float,
        default=0.0,
        help="give node i a fixed clock skew of i*this many ppm",
    )
    cluster.add_argument(
        "--drifting",
        action="store_true",
        help="give non-source nodes seeded piecewise-drifting clocks instead",
    )
    cluster.add_argument(
        "--drift-ppm",
        type=float,
        default=200.0,
        help="advertised drift band for --drifting clocks (default 200)",
    )
    cluster.add_argument(
        "--crash",
        metavar="PROC:STOP[:RESTART]",
        action="append",
        default=[],
        help="fail-stop PROC at STOP elapsed seconds (restart at RESTART)",
    )
    cluster.add_argument(
        "--crash-primary",
        metavar="STOP[:RESTART]",
        default=None,
        help="shortcut: fail-stop the primary server mid-load",
    )
    cluster.add_argument("--seed", type=int, default=0, help="seed for jitter and clocks")

    serving = parser.add_argument_group("serving tier")
    serving.add_argument(
        "--servers",
        type=int,
        default=None,
        help="serving endpoints, on n1..nS (default: every non-source node)",
    )
    serving.add_argument(
        "--clients", type=int, default=4, help="swarm size (default 4)"
    )
    serving.add_argument(
        "--eps-max",
        type=float,
        default=0.05,
        help="per-client target error; drives the eps/(2 rho) probe cadence",
    )
    serving.add_argument(
        "--probe-timeout", type=float, default=0.25, help="per-probe client timeout"
    )
    serving.add_argument(
        "--max-interval", type=float, default=0.2, help="slowest client probe cadence"
    )
    serving.add_argument(
        "--bucket-rate", type=float, default=500.0, help="admitted probes/s per server"
    )
    serving.add_argument(
        "--bucket-burst", type=float, default=50.0, help="admission burst per server"
    )
    serving.add_argument(
        "--queue-limit", type=int, default=64, help="request queue bound per server"
    )
    serving.add_argument(
        "--service-time",
        type=float,
        default=0.0,
        help="per-request service delay (models downstream work)",
    )
    serving.add_argument(
        "--stale-after",
        type=float,
        default=1.0,
        help="estimator age (local s) beyond which replies degrade",
    )
    serving.add_argument(
        "--warmup", type=float, default=0.3, help="gossip seconds before the swarm starts"
    )

    parser.add_argument("--out", help="archive the run document as JSON")
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="abort cleanly after this many wall seconds (partial archive, exit 124)",
    )
    parser.add_argument(
        "--require-sound",
        action="store_true",
        help="exit non-zero on any unsound accepted bound or stranded client",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.nodes < 2:
        print("error: --nodes must be at least 2", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2
    names = [f"n{i}" for i in range(args.nodes)]
    server_count = args.nodes - 1 if args.servers is None else args.servers
    if not (1 <= server_count < args.nodes):
        print(
            f"error: --servers must be in [1, {args.nodes - 1}] "
            "(the source n0 serves the protocol, not probes)",
            file=sys.stderr,
        )
        return 2
    servers = tuple(names[1 : 1 + server_count])
    try:
        crashes = [_parse_crash(text) for text in args.crash]
        if args.crash_primary is not None:
            crashes.append(_parse_crash(f"{servers[0]}:{args.crash_primary}"))
        config = ServeLoadConfig(
            cluster=ClusterConfig(
                processors=tuple(names),
                links=tuple(shape_links(names, args.shape)),
                duration=args.duration,
                gossip_period=args.period,
                sample_period=args.sample_period,
                clocks=_clocks(args, names),
                transport=args.transport,
                crashes=tuple(crashes),
                seed=args.seed,
            ),
            servers=servers,
            serve=ServeConfig(
                bucket_rate=args.bucket_rate,
                bucket_burst=args.bucket_burst,
                queue_limit=args.queue_limit,
                service_time=args.service_time,
                stale_after=args.stale_after,
            ),
            clients=args.clients,
            client_template=ClientConfig(
                name="c",
                servers=("unset",),
                eps_max=args.eps_max,
                probe_timeout=args.probe_timeout,
                max_interval=args.max_interval,
                seed=args.seed,
            ),
            warmup=args.warmup,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result, why = run_abortable(
        lambda abort: run_serve_load(config, abort=abort), args.timeout
    )

    if result.aborted:
        print(f"aborted ({why}): partial evidence only", file=sys.stderr)
    unsound = result.unsound_accepted
    p99 = result.p99_error_bound()
    print(
        f"{args.nodes}-node {args.shape}, {len(servers)} server(s), "
        f"{args.clients} client(s) over {args.transport}: "
        f"{result.offered_qps():.1f} qps offered, {result.served_qps():.1f} served"
    )
    p99_text = f"{p99:.4f}s" if p99 is not None else "n/a"
    print(
        f"  shed rate {result.shed_rate():.1%}, "
        f"accepted {len(result.accepted_samples)} "
        f"({len(unsound)} unsound), p99 error bound {p99_text}"
    )
    for proc, node in sorted(result.servers.items()):
        stats = node.stats
        print(
            f"  {proc}: {stats.replies} replies "
            f"({stats.degraded_replies} degraded), {stats.shed_total} shed "
            f"{dict(sorted(stats.shed.items()))}"
        )
    stranded = []
    events = result.failover_events()
    if events:
        print(f"  failovers: {len(events)}")
        for rt, client, src, dst in events:
            print(f"    t={rt:.2f}s {client}: {src} -> {dst}")
    reconv = result.reconvergence_times()
    if reconv:
        for name, value in sorted(reconv.items()):
            if math.isinf(value):
                stranded.append(name)
                print(f"  {name}: never recovered after the crash")
            else:
                print(f"  {name}: re-converged {value:.2f}s after the crash")
    if unsound:
        print(f"  UNSOUND: {len(unsound)} accepted bound(s) exclude the truth")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result.to_document(), handle)
        print(f"  archived -> {args.out}")
    if result.aborted:
        return abort_exit_code(why)
    if args.require_sound and (unsound or stranded):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
