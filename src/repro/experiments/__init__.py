"""Experiments: one module per DESIGN.md experiment id.

Importing this package registers every experiment in
:data:`~repro.experiments.base.REGISTRY`; run them via the CLI
(``python -m repro.experiments.cli``) or programmatically:

>>> from repro.experiments import get_experiment
>>> result = get_experiment("e4-agdp-cost")(live_sizes=(8, 16))
>>> result.all_passed
True
"""

from .base import REGISTRY, ExperimentResult, experiment, get_experiment

# importing the modules registers the experiments
from . import (  # noqa: F401  (imported for registration side effects)
    a1_gc,
    a2_history_gc,
    chaos,
    e1_optimality,
    e2_history,
    e3_space,
    e4_agdp,
    e5_live,
    e6_ntp,
    e7_cristian,
    e8_baselines,
    e9_loss,
    e10_convergence,
    e11_churn,
    e12_hierarchy,
    x1_internal,
    x2_adaptive,
)

__all__ = ["REGISTRY", "ExperimentResult", "experiment", "get_experiment"]
