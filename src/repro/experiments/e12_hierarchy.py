"""E12 - stratum hierarchy: delegated bounds, re-election, gradient.

Live (wall-clock) federation runs exercising the
:mod:`repro.rt.strata` subsystem end to end:

* **baseline** - a stratum-0 core plus two downstream tiers, skewed
  clocks on every non-border node.  Claims: every downstream tier
  reaches *bounded external estimates* through anchor delegation, no
  sample federation-wide ever excludes true source time, delegation
  stays within the paper's ``K2 <= 2`` indirection budget, and the
  gradient scorecard (per-pair skew vs hop distance, after
  Kuhn/Lenzen/Locher/Oshman) covers both near and far pairs.
* **anchor-crash** - the primary anchor (a core export) fail-stops
  mid-run.  Claims: the downstream border's accrual detector elects the
  next candidate (>= 1 recorded election) and every downstream
  processor's external estimates re-converge in finite time, measured
  through ``reconvergence_after`` on the ``strata`` channel - with
  soundness preserved throughout the outage (stale adopted bounds
  expire to honest unbounded rather than drift-rotting).

These cells run in one process over the loopback transport for speed
and determinism; the genuinely multi-process UDP path (subprocess tiers,
address handshake, merged document) is exercised by the strata test
suite and the CI hierarchy-smoke job.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..analysis.claims import ClaimCheck
from ..rt.cluster import CrashSchedule
from ..rt.strata import FederationConfig, FederationSpec, TierSpec, run_federation_sync
from ..rt.wire import MAX_DELEGATION_HOPS
from .base import ExperimentResult, experiment

__all__ = ["run"]


def _federation_spec(tiers: int, tier_nodes: int) -> FederationSpec:
    core = ("c0", "c1", "c2")
    specs = [
        TierSpec(
            name="core",
            stratum=0,
            processors=core,
            links=(("c0", "c1"), ("c1", "c2"), ("c0", "c2")),
            exports=("c1", "c2"),
        )
    ]
    for k in range(1, tiers + 1):
        names = tuple(f"t{k}n{i}" for i in range(tier_nodes))
        specs.append(
            TierSpec(
                name=f"tier{k}",
                stratum=1,
                processors=names,
                links=tuple((names[i], names[i + 1]) for i in range(tier_nodes - 1)),
                border=names[0],
                anchors=("c1", "c2"),
            )
        )
    return FederationSpec(tiers=tuple(specs))


def _clock_plans(spec: FederationSpec, skew_ppm: float):
    borders = {tier.border_proc for tier in spec.tiers}
    return {
        proc: {"kind": "skewed", "rate": 1.0 + (index + 1) * skew_ppm * 1e-6}
        for index, proc in enumerate(spec.all_processors)
        if proc not in borders
    }


def _tier_summary(result, name: str) -> dict:
    tier = result.tier(name)
    external = [s for s in tier.run.samples if s.channel == "strata"]
    return {
        "tier": name,
        "stratum": tier.stratum,
        "external_samples": len(external),
        "external_bounded": sum(1 for s in external if s.bound.is_bounded),
        "external_violations": sum(1 for s in external if not s.sound),
        "elections": len(tier.elections),
    }


@experiment("e12-hierarchy")
def run(
    *,
    tiers: int = 2,
    tier_nodes: int = 2,
    duration: float = 6.0,
    skew_ppm: float = 150.0,
    crash_at_frac: float = 0.3,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e12-hierarchy",
        description=(
            "Stratum federation: downstream tiers adopt core bounds through "
            "anchor delegation (K2 <= 2 hops), survive an anchor crash via "
            "accrual-driven re-election, and report the skew-vs-distance "
            "gradient scorecard."
        ),
    )
    spec = _federation_spec(tiers, tier_nodes)
    downstream = [tier.name for tier in spec.tiers if tier.stratum > 0]

    # -- baseline cell -----------------------------------------------------------
    baseline = run_federation_sync(
        FederationConfig(
            spec=spec,
            duration=duration,
            transport="loopback",
            clock_plans=_clock_plans(spec, skew_ppm),
            seed=seed,
        )
    )
    violations = len(baseline.soundness_violations())
    gradient = baseline.gradient()
    for name in ["core"] + downstream:
        row = _tier_summary(baseline, name)
        row["cell"] = "baseline"
        result.rows.append(row)
    result.checks.append(
        ClaimCheck(
            name="baseline: every sample sound, internal and delegated",
            passed=violations == 0,
            details={"violations": violations},
        )
    )
    for name in downstream:
        summary = _tier_summary(baseline, name)
        result.checks.append(
            ClaimCheck(
                name=f"baseline: {name} reaches bounded external estimates",
                passed=summary["external_bounded"] > 0,
                details=summary,
            )
        )
    result.checks.append(
        ClaimCheck(
            name="baseline: delegation respects the K2 <= 2 indirection cap",
            passed=MAX_DELEGATION_HOPS == 2
            and all(
                baseline.tier(name).anchor_stats.adopted > 0 for name in downstream
            ),
            details={
                "wire_hop_cap": MAX_DELEGATION_HOPS,
                "adopted": {
                    name: baseline.tier(name).anchor_stats.adopted
                    for name in downstream
                },
            },
        )
    )
    result.checks.append(
        ClaimCheck(
            name="baseline: gradient covers near and far pairs",
            passed=len(gradient["by_hops"]) >= 2,
            details={"by_hops": gradient["by_hops"]},
        )
    )

    # -- anchor-crash cell -------------------------------------------------------
    crash_at = duration * crash_at_frac
    crashed = run_federation_sync(
        FederationConfig(
            spec=spec,
            duration=duration,
            transport="loopback",
            clock_plans=_clock_plans(spec, skew_ppm),
            crashes=(CrashSchedule(proc="c1", stop_at=crash_at),),
            sync_period=0.15,
            probe_timeout=0.15,
            max_age=1.0,
            seed=seed + 1,
        )
    )
    crash_violations = len(crashed.soundness_violations())
    elections = crashed.elections
    reconvergence: dict = {}
    for name in downstream:
        tier_spec = crashed.spec.tier(name)
        for proc in tier_spec.processors:
            lag, examined = crashed.reconvergence_after(crash_at, proc)
            reconvergence[proc] = {"lag": lag, "tail_samples": examined}
    for name in ["core"] + downstream:
        row = _tier_summary(crashed, name)
        row["cell"] = "anchor-crash"
        result.rows.append(row)
    result.checks.append(
        ClaimCheck(
            name="crash: losing the primary anchor triggers re-election",
            passed=len(elections) >= 1
            and all(event.previous == "c1" for event in elections),
            details={"elections": [event.to_dict() for event in elections]},
        )
    )
    result.checks.append(
        ClaimCheck(
            name="crash: downstream tiers re-converge (finite lag, evidence seen)",
            passed=all(
                math.isfinite(entry["lag"]) and entry["tail_samples"] > 0
                for entry in reconvergence.values()
            ),
            details=reconvergence,
        )
    )
    result.checks.append(
        ClaimCheck(
            name="crash: soundness holds through outage and failover",
            passed=crash_violations == 0,
            details={"violations": crash_violations},
        )
    )
    result.notes = (
        "Delegated bounds expire after max_age rather than drift-rotting, so "
        "an anchor outage degrades downstream tiers to honest unbounded "
        "estimates until re-election lands on a live anchor; the gradient "
        "scorecard's skew grows with hop distance, as the gradient "
        "clock-synchronization literature predicts."
    )
    return result
