"""A1 - ablation: AGDP dead-node garbage collection (Lemma 3.4).

The design choice at the heart of the paper's efficiency result is that
dead nodes can be *deleted* from the distance structure without changing
any live-live distance.  This ablation runs the efficient algorithm twice
over identical traffic:

* ``gc on`` - the paper's algorithm: the matrix holds only live points;
* ``gc off`` - dead nodes are retained: answers trivially correct, but
  the matrix grows with the execution.

Expected: identical estimates (bit-for-bit interval equality at every
processor's final point), with the gc-off node count growing linearly in
events while gc-on stays flat - the O(execution) vs O(L) separation.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.claims import ClaimCheck, check_soundness
from ..core.csa import EfficientCSA
from ..sim.network import topologies
from ..sim.runner import run_workload, standard_network
from ..sim.workloads import PeriodicGossip
from .base import ExperimentResult, experiment

__all__ = ["run"]


@experiment("a1-agdp-gc-ablation")
def run(
    durations: Sequence[float] = (60.0, 120.0, 240.0),
    *,
    n: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="a1-agdp-gc-ablation",
        description=(
            "Lemma 3.4 ablation: killing dead nodes preserves every "
            "estimate while bounding the distance matrix."
        ),
    )
    names, links = topologies.ring(n)
    for duration in durations:
        run_seed = seed + int(duration)
        network = standard_network(names, links, seed=run_seed)
        run_result = run_workload(
            network,
            PeriodicGossip(period=4.0, seed=run_seed),
            {
                "gc-on": lambda p, s: EfficientCSA(p, s, agdp_gc=True),
                "gc-off": lambda p, s: EfficientCSA(p, s, agdp_gc=False),
            },
            duration=duration,
            seed=run_seed,
            sample_period=duration / 6,
        )
        mismatches = 0
        max_nodes_on = 0
        max_nodes_off = 0
        for proc in network.processors:
            on = run_result.sim.estimator(proc, "gc-on")
            off = run_result.sim.estimator(proc, "gc-off")
            e_on = on.estimate()
            e_off = off.estimate()
            if (
                abs(e_on.lower - e_off.lower) > 1e-9
                or abs(e_on.upper - e_off.upper) > 1e-9
            ):
                mismatches += 1
            max_nodes_on = max(max_nodes_on, on.agdp.stats.max_nodes)
            max_nodes_off = max(max_nodes_off, off.agdp.stats.max_nodes)
        result.rows.append(
            {
                "duration": duration,
                "events": len(run_result.trace),
                "max_nodes_gc_on": max_nodes_on,
                "max_nodes_gc_off": max_nodes_off,
                "estimate_mismatches": mismatches,
            }
        )
        result.checks.append(
            ClaimCheck(
                name=f"duration={duration}: gc preserves estimates",
                passed=mismatches == 0,
                details={"mismatches": mismatches},
            )
        )
        result.checks.append(check_soundness(run_result, ("gc-on", "gc-off")))
    sizes_on = [row["max_nodes_gc_on"] for row in result.rows]
    sizes_off = [row["max_nodes_gc_off"] for row in result.rows]
    result.checks.append(
        ClaimCheck(
            name="gc-off grows with execution length, gc-on stays flat",
            passed=sizes_off[-1] > 1.5 * sizes_off[0]
            and sizes_on[-1] <= 2 * sizes_on[0],
            details={"gc_on": sizes_on, "gc_off": sizes_off},
        )
    )
    result.notes = (
        "Doubling the run roughly doubles the gc-off matrix while the "
        "gc-on matrix is unchanged - the O(events) vs O(L^2) separation."
    )
    return result
