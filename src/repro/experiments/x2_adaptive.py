"""X2 - extension: certified bounds enable principled adaptive polling.

NTP adapts poll intervals heuristically; with *certified* interval widths
the control loop becomes exact: poll more when the bound is loose, back
off when it is tight.  This experiment runs adaptive clients against
fixed-rate clients over the same server (same link specs, same drift
magnitudes) and compares messages spent vs accuracy achieved.

Expected shape: the adaptive clients achieve a comparable width budget
with substantially fewer messages (they stop paying for accuracy they
already have), and never violate soundness - the controller only reads
the certified output, it cannot break it.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.claims import ClaimCheck, check_soundness
from ..analysis.metrics import fraction_within, width_stats
from ..core.csa import EfficientCSA
from ..core.events import ProcessorId
from ..core.specs import TransitSpec
from ..sim.clock import PiecewiseDriftingClock
from ..sim.engine import Simulation
from ..sim.network import LinkConfig, Network
from ..sim.runner import RunResult, run_workload
from ..sim.workloads import NTPWorkload
from ..sim.workloads.adaptive import AdaptivePolling
from .base import ExperimentResult, experiment

__all__ = ["run"]


def _star_system(n_clients: int, seed: int) -> Network:
    clocks = {}
    links = []
    for i in range(n_clients):
        name = f"c{i}"
        clocks[name] = PiecewiseDriftingClock(
            seed=seed * 100 + i,
            r_min=1 - 1e-4,
            r_max=1 + 1e-4,
            offset=float(i),
        )
        links.append(
            LinkConfig("hub", name, transit=TransitSpec(0.002, 0.03))
        )
    return Network(source="hub", clocks=clocks, links=links)


def _run(
    mode: str, n_clients: int, duration: float, seed: int, width_target: float
) -> RunResult:
    network = _star_system(n_clients, seed)
    servers: Dict[ProcessorId, ProcessorId] = {
        f"c{i}": "hub" for i in range(n_clients)
    }
    if mode == "adaptive":
        workload = AdaptivePolling(
            servers=servers,
            low_water=width_target / 3,
            high_water=width_target,
            min_interval=2.0,
            max_interval=64.0,
            start_interval=8.0,
            seed=seed,
        )
    else:
        workload = NTPWorkload(
            parents={c: ("hub",) for c in servers}, poll_period=8.0, seed=seed
        )
    return run_workload(
        network,
        workload,
        {"efficient": lambda p, s: EfficientCSA(p, s)},
        duration=duration,
        seed=seed,
        sample_period=duration / 30,
    )


@experiment("x2-adaptive-polling")
def run(
    *,
    n_clients: int = 4,
    duration: float = 600.0,
    width_target: float = 0.06,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="x2-adaptive-polling",
        description=(
            "Extension: width-driven poll adaptation matches fixed-rate "
            "accuracy with fewer messages."
        ),
    )
    runs = {}
    for mode in ("fixed", "adaptive"):
        run_result = _run(mode, n_clients, duration, seed, width_target)
        runs[mode] = run_result
        client_samples = [
            s
            for s in run_result.samples_for("efficient")
            if s.proc != "hub" and s.rt > duration * 0.2
        ]
        stats = width_stats(client_samples)
        within = fraction_within(client_samples, threshold=width_target * 1.5)
        result.rows.append(
            {
                "mode": mode,
                "messages": run_result.sim.messages_sent,
                "mean_width": stats.mean,
                "p95_width": stats.p95,
                "fraction_within_budget": round(within, 3),
            }
        )
        result.checks.append(check_soundness(run_result, ("efficient",)))
    fixed_msgs = runs["fixed"].sim.messages_sent
    adaptive_msgs = runs["adaptive"].sim.messages_sent
    result.checks.append(
        ClaimCheck(
            name="adaptive spends fewer messages",
            passed=adaptive_msgs < fixed_msgs,
            details={"adaptive": adaptive_msgs, "fixed": fixed_msgs},
        )
    )
    adaptive_within = result.rows[1]["fraction_within_budget"]
    result.checks.append(
        ClaimCheck(
            name="adaptive stays within 1.5x width budget >= 80% of the time",
            passed=adaptive_within >= 0.8,
            details={"fraction": adaptive_within},
        )
    )
    result.notes = (
        "The controller reads only the certified width, so soundness is "
        "untouched by construction; the savings come from not polling "
        "when the interval is already tight."
    )
    return result
