"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.experiments.cli                  # run everything
    python -m repro.experiments.cli e1-optimality    # one experiment
    python -m repro.experiments.cli --list
    python -m repro.experiments.cli --quick          # reduced parameters

``--quick`` shrinks run durations for a fast smoke pass (the full
parameters are the ones recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence

from . import REGISTRY, get_experiment

__all__ = ["main", "QUICK_OVERRIDES"]

#: reduced parameters per experiment for --quick runs
QUICK_OVERRIDES: Dict[str, Dict[str, object]] = {
    "e1-optimality": {"duration": 40.0},
    "e2-report-once": {"duration": 50.0},
    "e3-history-space": {"sizes": (4, 6, 8), "duration": 60.0},
    "e4-agdp-cost": {"live_sizes": (8, 16, 32), "steps": 60},
    "e5-live-points": {"bursts": (1, 2), "ring_sizes": (4, 6), "duration": 60.0},
    "e6-ntp-pattern": {"shapes": ((2, 3), (2, 4, 6)), "duration": 120.0},
    "e7-cristian-pattern": {"client_counts": (3, 6), "duration": 150.0},
    "e8-width-vs-baselines": {"duration": 150.0},
    "e9-message-loss": {"loss_probs": (0.2,), "duration": 120.0},
    "chaos-soak": {"shapes": ("ring",), "duration": 40.0},
    "a1-agdp-gc-ablation": {"durations": (40.0, 80.0)},
    "a2-history-gc-ablation": {"durations": (40.0, 80.0)},
    "x1-internal-sync": {"sizes": (4,), "duration": 60.0},
    "e10-convergence": {"n": 5, "duration": 80.0},
    "e11-churn": {"shapes": ("line",), "duration": 60.0},
    "e12-hierarchy": {"tiers": 1, "duration": 3.0},
    "x2-adaptive-polling": {"n_clients": 3, "duration": 250.0},
}


def _to_markdown(result, elapsed: float) -> str:
    """One experiment's result as a markdown section."""
    from ..analysis.tables import render_markdown_table

    lines = [f"## {result.experiment}", "", result.description, ""]
    if result.rows:
        lines.append(render_markdown_table(result.rows))
        lines.append("")
    for check in result.checks:
        mark = "PASS" if check.passed else "**FAIL**"
        detail = ", ".join(f"{k}={v}" for k, v in check.details.items())
        lines.append(f"- {mark} — {check.name} ({detail})")
    if result.notes:
        lines.append("")
        lines.append(f"*{result.notes}*")
    lines.append("")
    lines.append(f"(elapsed {elapsed:.1f}s)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run the reproduction experiments (see DESIGN.md).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all, in registry order)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--quick", action="store_true", help="reduced parameters for a fast pass"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base random seed (default 0)"
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        help="also write the results as a markdown report to FILE",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(REGISTRY):
            print(name)
        return 0

    names: List[str] = list(args.experiments) or sorted(REGISTRY)
    failures = 0
    markdown_parts: List[str] = []
    for name in names:
        run = get_experiment(name)
        params: Dict[str, object] = {"seed": args.seed}
        if args.quick:
            params.update(QUICK_OVERRIDES.get(name, {}))
        started = time.perf_counter()
        result = run(**params)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"(elapsed {elapsed:.1f}s)")
        print()
        if args.markdown:
            markdown_parts.append(_to_markdown(result, elapsed))
        if not result.all_passed:
            failures += 1
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write("\n\n".join(markdown_parts) + "\n")
    if failures:
        print(f"{failures} experiment(s) had failing checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
