"""E3 - history buffer space (Lemma 3.3).

Claim: if at most ``K1`` events occur system-wide between two successive
send events on a link, the history buffer satisfies
``|H_v| = O(K1 * (D + 1))`` where ``D`` is the network diameter.  (This is
the *link-send* reading of ``K1`` used in Lemma 3.3's proof, distinct from
the per-processor relative system speed used by Theorem 3.6; we measure
it as such.)

We sweep line topologies (the diameter dial) and internal-event rates (the
``K1`` dial), measure the peak ``|H_v|`` over all processors, and compare
it to ``K1 * (D + 1)``.  The measured ratio should stay bounded by a small
constant across the sweep - growth is linear in the product, not in the
execution length.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.claims import ClaimCheck
from ..analysis.complexity import collect_complexity, loglog_slope
from ..core.csa import EfficientCSA
from ..sim.network import topologies
from ..sim.runner import run_workload, standard_network
from ..sim.workloads import PeriodicGossip
from .base import ExperimentResult, experiment

__all__ = ["run"]


@experiment("e3-history-space")
def run(
    sizes: Sequence[int] = (4, 6, 8, 12),
    *,
    internal_rates: Sequence[float] = (0.0, 4.0),
    duration: float = 150.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e3-history-space",
        description=(
            "Lemma 3.3: peak history buffer |H_v| is O(K1 * (D + 1)), "
            "independent of execution length."
        ),
    )
    products = []
    buffers = []
    for n in sizes:
        for internal in internal_rates:
            run_seed = seed + 7 * n + int(internal)
            names, links = topologies.line(n)
            network = standard_network(names, links, seed=run_seed)
            workload = PeriodicGossip(
                period=6.0, seed=run_seed, internal_per_period=internal
            )
            run_result = run_workload(
                network,
                workload,
                {"efficient": lambda p, s: EfficientCSA(p, s)},
                duration=duration,
                seed=run_seed,
            )
            report = collect_complexity(run_result)
            bound = max(report.k1_link_send_speed, 1) * (report.diameter + 1)
            ratio = report.max_history_buffer / bound
            products.append(bound)
            buffers.append(max(report.max_history_buffer, 1))
            result.rows.append(
                {
                    "n": n,
                    "diameter": report.diameter,
                    "internal_rate": internal,
                    "events": report.events_total,
                    "K1_link": report.k1_link_send_speed,
                    "max_|H_v|": report.max_history_buffer,
                    "K1*(D+1)": bound,
                    "ratio": ratio,
                }
            )
            result.checks.append(
                ClaimCheck(
                    name=f"n={n},internal={internal}: |H| <= K1*(D+1) + n",
                    passed=report.max_history_buffer <= bound + n,
                    details={
                        "max_buffer": report.max_history_buffer,
                        "bound": bound,
                    },
                )
            )
    slope = loglog_slope(products, buffers)
    result.checks.append(
        ClaimCheck(
            name="buffer grows at most linearly in K1*(D+1)",
            passed=slope <= 1.35,
            details={"loglog_slope": round(slope, 3)},
        )
    )
    result.notes = (
        "Expected: every ratio bounded by a small constant and a log-log "
        "slope of about 1 (linear growth in the Lemma 3.3 product)."
    )
    return result
