"""E8 - the optimal algorithm vs practical baselines on identical traffic.

The paper's motivation (Sec 1): the drift-free optimal algorithm re-run
periodically with a drift fudge "may beat other practical algorithms, but
[is] still not optimal [18]".  Because all our estimators are passive,
we can attach the optimal algorithm, the drift-free+fudge recipe, the
Cristian interval estimator, and the NTP-style filter to the *same*
execution and compare interval widths point for point.

Expected shape:

* the optimal interval is never wider than any *sound* baseline's
  (dominance count 0);
* the windowed variant (drift-aware optimal on the same window, no
  fudge) separates the cost of *forgetting* from the cost of
  *pretending* drift-freedom;
* drift-free+fudge lands in the middle: better than round-trip-only
  methods on multi-hop paths, worse than optimal everywhere;
* Cristian degrades sharply with hop distance from the source (it only
  chains round trips);
* the NTP filter's quoted root-distance interval is generous (wide), and
  being statistical it is allowed occasional soundness misses.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis.claims import ClaimCheck, check_soundness
from ..analysis.metrics import (
    dominance_check,
    midpoint_error_stats,
    soundness_summary,
    width_stats,
)
from ..baselines import CristianCSA, DriftFreeFudgeCSA, NTPFilterCSA, WindowedCSA
from ..core.csa import EfficientCSA
from ..sim.network import topologies
from ..sim.runner import run_workload, standard_network
from ..sim.workloads import PeriodicGossip
from .base import ExperimentResult, experiment

__all__ = ["run"]

_SOUND_BASELINES = ("windowed", "driftfree-fudge", "cristian")
_ALL_BASELINES = ("windowed", "driftfree-fudge", "cristian", "ntp")


@experiment("e8-width-vs-baselines")
def run(
    *,
    n: int = 5,
    drift_ppm: float = 100.0,
    period: float = 5.0,
    duration: float = 400.0,
    window: float = 40.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e8-width-vs-baselines",
        description=(
            "Optimal vs drift-free+fudge vs Cristian vs NTP filter on one "
            "shared execution (line topology, hop distance = row)."
        ),
    )
    names, links = topologies.line(n)
    network = standard_network(
        names, links, seed=seed, drift_ppm=drift_ppm, delay=(0.005, 0.05)
    )
    run_result = run_workload(
        network,
        PeriodicGossip(period=period, seed=seed),
        {
            "efficient": lambda p, s: EfficientCSA(p, s),
            "windowed": lambda p, s: WindowedCSA(p, s, window=window),
            "driftfree-fudge": lambda p, s: DriftFreeFudgeCSA(p, s, window=window),
            "cristian": lambda p, s: CristianCSA(p, s),
            "ntp": lambda p, s: NTPFilterCSA(p, s),
        },
        duration=duration,
        seed=seed,
        sample_period=duration / 40,
    )
    for hop, proc in enumerate(names):
        if proc == network.source:
            continue
        for channel in ("efficient",) + _ALL_BASELINES:
            stats = width_stats(run_result.samples_for(channel, proc=proc))
            result.rows.append(
                {
                    "proc": proc,
                    "hops": hop,
                    "channel": channel,
                    "bounded": stats.bounded,
                    "mean_width": stats.mean,
                    "p95_width": stats.p95,
                    "max_width": stats.max,
                }
            )
    result.checks.append(
        check_soundness(run_result, ("efficient",) + _SOUND_BASELINES)
    )
    wins = dominance_check(
        run_result.samples, "efficient", _ALL_BASELINES
    )
    for channel in _SOUND_BASELINES:
        result.checks.append(
            ClaimCheck(
                name=f"optimal never beaten by sound baseline {channel}",
                passed=wins[channel] == 0,
                details={"strictly_tighter_count": wins[channel]},
            )
        )
    # expected ordering of mean widths at the farthest processor
    far = names[-1]
    mean_of = {
        ch: width_stats(run_result.samples_for(ch, proc=far)).mean
        for ch in ("efficient",) + _ALL_BASELINES
    }
    result.checks.append(
        ClaimCheck(
            name="optimal tightest at the farthest processor",
            passed=all(
                mean_of["efficient"] <= mean_of[ch] + 1e-12 for ch in _ALL_BASELINES
            ),
            details={k: round(v, 5) for k, v in mean_of.items()},
        )
    )
    # point-estimate shoot-out at the farthest processor: the optimal
    # interval's midpoint vs the NTP filter's headline number
    far_samples_opt = run_result.samples_for("efficient", proc=far)
    far_samples_ntp = run_result.samples_for("ntp", proc=far)
    opt_err = midpoint_error_stats(far_samples_opt)
    ntp_err = midpoint_error_stats(far_samples_ntp)
    result.checks.append(
        ClaimCheck(
            name="optimal midpoint beats the NTP point estimate (mean |err|)",
            passed=opt_err.mean_abs <= ntp_err.mean_abs + 1e-12,
            details={
                "optimal_mean_abs_err": round(opt_err.mean_abs, 6),
                "ntp_mean_abs_err": round(ntp_err.mean_abs, 6),
            },
        )
    )
    ntp_sound = soundness_summary(run_result.samples).get("ntp", (0, 0))
    result.notes = (
        "NTP filter (statistical budget) soundness: "
        f"{ntp_sound[0] - ntp_sound[1]}/{ntp_sound[0]} samples contained "
        "true time. Sound baselines must never beat the optimal interval."
    )
    return result
