"""E10 - cold-start convergence scales with hop distance.

A structural consequence of Theorem 2.1 worth measuring: a processor's
interval first becomes finite only once a *chain of messages* from the
source has reached it (the lower/upper witnesses need paths in both
directions), so cold-start convergence time grows with hop distance at
roughly one traffic period per hop - and is then immediately *optimal*,
with no further "settling" phase (unlike filter-based algorithms that
need several samples).

Measured on a line topology with uniform periodic gossip: the first
sampling instant with a bounded (and with a tight) interval, per hop.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.claims import ClaimCheck
from ..analysis.metrics import convergence_time
from ..core.csa import EfficientCSA
from ..sim.network import topologies
from ..sim.runner import run_workload, standard_network
from ..sim.workloads import PeriodicGossip
from .base import ExperimentResult, experiment

__all__ = ["run"]


@experiment("e10-convergence")
def run(
    *,
    n: int = 6,
    period: float = 5.0,
    duration: float = 150.0,
    tight_threshold: float = 0.1,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e10-convergence",
        description=(
            "Cold start: hop k becomes bounded after ~k message exchanges "
            "and is optimal immediately (no settling phase)."
        ),
    )
    names, links = topologies.line(n)
    network = standard_network(names, links, seed=seed, drift_ppm=100)
    run_result = run_workload(
        network,
        PeriodicGossip(period=period, seed=seed),
        {"efficient": lambda p, s: EfficientCSA(p, s)},
        duration=duration,
        seed=seed,
        sample_period=period / 4,
    )
    bounded_at = {}
    tight_at = {}
    for hop, proc in enumerate(names):
        if proc == network.source:
            continue
        samples = run_result.samples_for("efficient", proc=proc)
        first_bounded = convergence_time(samples, threshold=float("inf"))
        first_tight = convergence_time(samples, threshold=tight_threshold)
        bounded_at[hop] = first_bounded
        tight_at[hop] = first_tight
        result.rows.append(
            {
                "proc": proc,
                "hops": hop,
                "first_bounded_rt": first_bounded,
                "first_tight_rt": first_tight,
                "periods_to_bounded": (
                    None if first_bounded is None else round(first_bounded / period, 2)
                ),
            }
        )
    hops = sorted(bounded_at)
    monotone = all(
        tight_at[a] is not None
        and tight_at[b] is not None
        and tight_at[a] <= tight_at[b]
        for a, b in zip(hops, hops[1:])
    )
    result.checks.append(
        ClaimCheck(
            name="time-to-tight non-decreasing in hop distance",
            passed=monotone,
            details={str(h): tight_at[h] for h in hops},
        )
    )
    farthest = bounded_at[hops[-1]]
    result.checks.append(
        ClaimCheck(
            name="farthest hop bounded within ~2 periods per hop",
            passed=farthest is not None and farthest <= 2.5 * period * hops[-1],
            details={"rt": farthest, "budget": 2.5 * period * hops[-1]},
        )
    )
    result.checks.append(
        ClaimCheck(
            name="everyone reaches a tight bound",
            passed=all(
                row["first_tight_rt"] is not None for row in result.rows
            ),
            details={"threshold": tight_threshold},
        )
    )
    result.notes = (
        "Information flows one hop per exchange; once a bidirectional "
        "chain exists the interval is optimal instantly - there is no "
        "filter warm-up."
    )
    return result
