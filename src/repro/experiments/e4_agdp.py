"""E4 - AGDP per-insertion cost (Lemma 3.5).

Claim: with at most ``L`` live nodes, AGDP needs ``O(L^2)`` space and
``O(L^2)`` time per edge insertion (the Ausiello et al. pairwise update).

We drive the solver directly with a synthetic steady-state instance: a
pool of exactly ``L`` live nodes; each step adds one node with ``degree``
edges to random live nodes and kills one random node, holding ``L`` fixed.
The measured cost unit is *pair relaxations per edge insertion* (the inner
loop of the update), which is machine-independent; wall-clock scaling is
measured separately by the pytest benchmark for this experiment.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..analysis.claims import ClaimCheck
from ..analysis.complexity import loglog_slope
from ..core.agdp import AGDP
from .base import ExperimentResult, experiment

__all__ = ["run", "steady_state_agdp"]


def steady_state_agdp(
    live_target: int,
    steps: int,
    *,
    degree: int = 3,
    seed: int = 0,
    gc_enabled: bool = True,
    backend: str = "dict",
):
    """Run a synthetic AGDP workload holding ~``live_target`` live nodes.

    Edge weights mimic feasible synchronization graphs: every node carries
    a hidden potential (its "true real-time correction") and each edge
    ``(x, y)`` weighs ``phi(y) - phi(x)`` plus a non-negative slack, so
    weights are freely negative yet every cycle is non-negative - exactly
    the structure Theorem 2.1 guarantees for consistent views.
    """
    rng = random.Random(seed)
    if backend == "dict":
        agdp = AGDP(source=("n", 0), gc_enabled=gc_enabled)
    elif backend == "numpy":
        from ..core.agdp_numpy import NumpyAGDP

        agdp = NumpyAGDP(source=("n", 0), gc_enabled=gc_enabled)
    elif backend == "numpy-source-only":
        from ..core.agdp_numpy import NumpyAGDP

        # anchored at the immortal source node ("n", 0)
        agdp = NumpyAGDP(source=("n", 0), gc_enabled=gc_enabled, source_only=True)
    else:
        raise ValueError(f"unknown AGDP backend {backend!r}")
    pool: List[tuple] = [("n", 0)]
    potential = {("n", 0): 0.0}
    next_id = 1
    for _step in range(steps):
        node = ("n", next_id)
        next_id += 1
        potential[node] = rng.uniform(-5.0, 5.0)
        edges = []
        for peer in rng.sample(pool, min(degree, len(pool))):
            for x, y in ((node, peer), (peer, node)):
                slack = rng.uniform(0.001, 0.5)
                edges.append((x, y, potential[y] - potential[x] + slack))
        kills = []
        if len(pool) >= live_target:
            victim = pool.pop(rng.randrange(1, len(pool)))  # never the source
            kills.append(victim)
            del potential[victim]
        agdp.step(node, edges, kills)
        pool.append(node)
    return agdp


@experiment("e4-agdp-cost")
def run(
    live_sizes: Sequence[int] = (8, 16, 32, 64),
    *,
    steps: int = 120,
    degree: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e4-agdp-cost",
        description=(
            "Lemma 3.5: AGDP uses O(L^2) space and O(L^2) pair updates "
            "per edge insertion at L live nodes."
        ),
    )
    sizes = []
    costs = []
    for live in live_sizes:
        agdp = steady_state_agdp(live, steps, degree=degree, seed=seed)
        per_insert = agdp.stats.pair_updates / max(agdp.stats.edges_inserted, 1)
        sizes.append(live)
        costs.append(max(per_insert, 1.0))
        result.rows.append(
            {
                "L": live,
                "steps": steps,
                "edges_inserted": agdp.stats.edges_inserted,
                "pair_updates_per_insert": round(per_insert, 1),
                "L^2": live * live,
                "peak_matrix_cells": agdp.stats.matrix_cells(),
            }
        )
        result.checks.append(
            ClaimCheck(
                name=f"L={live}: space O(L^2)",
                passed=agdp.stats.matrix_cells() <= 4 * (live + 2) ** 2,
                details={"cells": agdp.stats.matrix_cells(), "limit": 4 * (live + 2) ** 2},
            )
        )
    slope = loglog_slope(sizes, costs)
    result.checks.append(
        ClaimCheck(
            name="per-insert cost ~ L^2 (log-log slope in [1.4, 2.4])",
            passed=1.4 <= slope <= 2.4,
            details={"loglog_slope": round(slope, 3)},
        )
    )
    result.notes = (
        "Pair updates per insertion should scale ~quadratically with the "
        "live-set size; the matrix never exceeds O(L^2) cells."
    )
    return result
