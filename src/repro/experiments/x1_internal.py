"""X1 - extension: internal synchronization from the same machinery.

Not a claim of this paper, but of the lineage it builds on (Lundelius &
Lynch; Halpern et al.; Attiya et al. [1]): Theorem 2.1 bounds the
real-time difference of *any* two points, so the Sec 3 data structures
also solve internal synchronization - bounding peers' clock offsets
without any access to standard time.

The experiment runs gossip among processors that never hear from the
source and checks, at one observer:

* every pairwise relative interval contains the true RT difference;
* every relative interval equals Theorem 2.1 recomputed from scratch on
  the oracle local view (optimality);
* external estimates remain unbounded (no source information leaked) -
  internal precision is achieved without external anchoring.
"""

from __future__ import annotations

from typing import Sequence

import math

from ..analysis.claims import ClaimCheck
from ..core.csa import EfficientCSA
from ..core.theorem import relative_bounds
from ..sim.network import topologies
from ..sim.runner import run_workload, standard_network
from ..sim.workloads import PeriodicGossip
from .base import ExperimentResult, experiment

__all__ = ["run"]


@experiment("x1-internal-sync")
def run(
    sizes: Sequence[int] = (4, 6),
    *,
    duration: float = 120.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="x1-internal-sync",
        description=(
            "Extension: the Sec 3 state answers internal synchronization "
            "(pairwise offset bounds) optimally, with no source contact."
        ),
    )
    for n in sizes:
        if n < 4:
            raise ValueError("internal-sync experiment needs n >= 4")
        run_seed = seed + 5 * n
        # p0 is the designated source but has no link at all: the other
        # processors gossip on a ring among themselves.  External
        # synchronization is impossible; internal synchronization is not.
        names = [f"p{i}" for i in range(n)]
        links = [(names[i], names[i + 1]) for i in range(1, n - 1)]
        links.append((names[n - 1], names[1]))
        network = standard_network(names, links, seed=run_seed, drift_ppm=300)
        workload = PeriodicGossip(period=5.0, seed=run_seed)
        run_result = run_workload(
            network,
            workload,
            {"efficient": lambda p, s: EfficientCSA(p, s)},
            duration=duration,
            seed=run_seed,
        )
        observer = run_result.sim.estimator(names[1], "efficient")
        trace = run_result.trace
        view = trace.global_view()
        local_view = view.view_from(observer.last_local_event.eid)
        checked = 0
        contain_failures = 0
        optimal_failures = 0
        worst_width = 0.0
        peers = [p for p in names[1:]]
        for a in peers:
            for b in peers:
                if a == b:
                    continue
                last_a = observer.live.last_event(a)
                last_b = observer.live.last_event(b)
                if last_a is None or last_b is None:
                    continue
                ours = observer.relative_estimate(a, b)
                if not ours.is_bounded:
                    continue
                checked += 1
                worst_width = max(worst_width, ours.width)
                truth = trace.rt_of(last_a[0]) - trace.rt_of(last_b[0])
                if not ours.contains(truth, tolerance=1e-6):
                    contain_failures += 1
                oracle = relative_bounds(
                    local_view, network.spec, last_a[0], last_b[0]
                )
                if (
                    abs(ours.lower - oracle.lower) > 1e-6
                    or abs(ours.upper - oracle.upper) > 1e-6
                ):
                    optimal_failures += 1
        result.rows.append(
            {
                "n": n,
                "pairs_checked": checked,
                "containment_failures": contain_failures,
                "optimality_failures": optimal_failures,
                "worst_pair_width": worst_width,
            }
        )
        result.checks.append(
            ClaimCheck(
                name=f"n={n}: internal bounds sound and optimal",
                passed=checked > 0
                and contain_failures == 0
                and optimal_failures == 0,
                details={
                    "checked": checked,
                    "containment_failures": contain_failures,
                    "optimality_failures": optimal_failures,
                },
            )
        )
        result.checks.append(
            ClaimCheck(
                name=f"n={n}: no external estimate without source contact",
                passed=not observer.estimate().is_bounded,
                details={"external": str(observer.estimate())},
            )
        )
    result.notes = (
        "Pairwise offset intervals are finite and exact even though no "
        "external estimate exists - the AGDP matrix carries the full "
        "pairwise structure, not just source distances."
    )
    return result
