"""E5 - live points vs K2 |E| (Lemma 4.1).

Claim: if at most ``K2`` messages are sent over a link in one direction
between two consecutive sends in the other direction, the number of live
points in any local view is ``O(K2 |E|)``.

We dial ``K2`` with the asymmetric-ping workload (``burst`` sends one
way, one reply back) and ``|E|`` with ring size, measuring the peak
live-point count both from the omniscient trace and from every
processor's own tracker.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.claims import ClaimCheck
from ..analysis.complexity import collect_complexity, loglog_slope
from ..core.csa import EfficientCSA
from ..sim.network import topologies
from ..sim.runner import run_workload, standard_network
from ..sim.workloads import AsymmetricPing
from .base import ExperimentResult, experiment

__all__ = ["run"]


@experiment("e5-live-points")
def run(
    bursts: Sequence[int] = (1, 2, 4),
    ring_sizes: Sequence[int] = (4, 8),
    *,
    duration: float = 100.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e5-live-points",
        description="Lemma 4.1: peak live points grow as O(K2 * |E|).",
    )
    xs = []
    ys = []
    for n in ring_sizes:
        for burst in bursts:
            run_seed = seed + 13 * n + burst
            names, links = topologies.ring(n)
            network = standard_network(
                names, links, seed=run_seed, delay=(0.05, 1.2)
            )
            workload = AsymmetricPing(
                burst=burst, gap=0.3, cycle_pause=3.0, seed=run_seed
            )
            run_result = run_workload(
                network,
                workload,
                {"efficient": lambda p, s: EfficientCSA(p, s)},
                duration=duration,
                seed=run_seed,
            )
            report = collect_complexity(run_result)
            k2 = max(report.k2_link_asymmetry, 1)
            bound = k2 * report.n_links
            xs.append(bound)
            ys.append(max(report.max_live_points_csa, 1))
            result.rows.append(
                {
                    "ring_n": n,
                    "burst": burst,
                    "|E|": report.n_links,
                    "K2_measured": report.k2_link_asymmetry,
                    "max_live_oracle": report.max_live_points_oracle,
                    "max_live_csa": report.max_live_points_csa,
                    "K2*|E|": bound,
                    "ratio": report.max_live_points_csa / bound,
                }
            )
            result.checks.append(
                ClaimCheck(
                    name=f"ring={n},burst={burst}: live <= 4*K2*|E| + n",
                    passed=report.max_live_points_csa <= 4 * bound + n,
                    details={
                        "live": report.max_live_points_csa,
                        "bound": bound,
                    },
                )
            )
    slope = loglog_slope(xs, ys)
    result.checks.append(
        ClaimCheck(
            name="live points grow at most linearly in K2*|E|",
            passed=slope <= 1.35,
            details={"loglog_slope": round(slope, 3)},
        )
    )
    result.notes = (
        "Expected: the ratio live/(K2*|E|) is bounded by a small constant "
        "across the sweep and growth is ~linear."
    )
    return result
