"""Experiment infrastructure: results, registry, rendering.

Every experiment module registers a ``run(**params) -> ExperimentResult``
under its DESIGN.md id (e.g. ``e1-optimality``).  Results carry rows (the
"table" the experiment regenerates), claim checks (the paper statements it
validates), and free-form notes; the CLI and EXPERIMENTS.md are generated
from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.claims import ClaimCheck
from ..analysis.tables import render_table

__all__ = ["ExperimentResult", "REGISTRY", "experiment", "get_experiment"]


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    checks: List[ClaimCheck] = field(default_factory=list)
    notes: str = ""

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        parts = [f"== {self.experiment} ==", self.description, ""]
        if self.rows:
            parts.append(render_table(self.rows))
            parts.append("")
        for check in self.checks:
            parts.append(str(check))
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)


#: experiment id -> run callable
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def experiment(name: str):
    """Decorator registering an experiment's run function under ``name``."""

    def register(fn: Callable[..., ExperimentResult]):
        if name in REGISTRY:
            raise ValueError(f"experiment {name!r} registered twice")
        REGISTRY[name] = fn
        fn.experiment_name = name
        return fn

    return register


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
