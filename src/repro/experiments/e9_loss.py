"""E9 - message loss and the detection mechanism (Sec 3.3).

The paper: "the send events of lost messages may be considered as live
points indefinitely.  The only way to avoid that is to assume the
existence of some detection mechanism which eventually flags messages as
lost, thus allowing us to mark the corresponding point as not live."

We run identical lossy executions twice:

* **detection on** - losses are flagged after a short delay; flags
  propagate with the history payloads and every processor kills the dead
  send point from its AGDP;
* **detection off** - no flags ever arrive (detection delay beyond the
  run), so lost sends stay live.

Expected: without detection the peak live-point count grows with the
number of lost messages (unbounded in the limit); with detection it stays
near the lossless level.  Estimates stay sound either way - keeping a dead
point is wasteful, not wrong.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..analysis.claims import ClaimCheck, check_soundness
from ..analysis.complexity import collect_complexity
from ..core.csa import EfficientCSA
from ..sim.network import topologies
from ..sim.runner import run_workload, standard_network
from ..sim.workloads import PeriodicGossip
from .base import ExperimentResult, experiment

__all__ = ["run"]


@experiment("e9-message-loss")
def run(
    loss_probs: Sequence[float] = (0.1, 0.3),
    *,
    n: int = 5,
    duration: float = 250.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e9-message-loss",
        description=(
            "Sec 3.3: lost sends stay live forever without a detection "
            "mechanism; with one, live points stay bounded."
        ),
    )
    names, links = topologies.ring(n)
    live_without = {}
    live_with = {}
    lost_counts = {}
    for loss in loss_probs:
        for detection in (True, False):
            run_seed = seed + int(loss * 100)
            network = standard_network(
                names, links, seed=run_seed, loss_prob=loss
            )
            run_result = run_workload(
                network,
                PeriodicGossip(period=4.0, seed=run_seed),
                {"efficient": lambda p, s: EfficientCSA(p, s, reliable=False)},
                duration=duration,
                seed=run_seed,
                sample_period=duration / 8,
                loss_detection_delay=3.0 if detection else math.inf,
            )
            report = collect_complexity(run_result)
            lost = run_result.sim.messages_lost
            lost_counts[loss] = lost
            if detection:
                live_with[loss] = report.max_live_points_csa
            else:
                live_without[loss] = report.max_live_points_csa
            # per-directed-link accounting: name the worst-hit link
            worst_key, worst = max(
                run_result.sim.link_stats.items(),
                key=lambda item: item[1].lost,
                default=(None, None),
            )
            lossiest = (
                f"{worst_key[0]}->{worst_key[1]}:{worst.lost}/{worst.sent}"
                if worst_key is not None
                else "-"
            )
            result.rows.append(
                {
                    "loss_prob": loss,
                    "detection": detection,
                    "messages": run_result.sim.messages_sent,
                    "lost": lost,
                    "lossiest_link": lossiest,
                    "max_live": report.max_live_points_csa,
                    "max_agdp_nodes": report.max_agdp_nodes,
                    "max_history_buffer": report.max_history_buffer,
                }
            )
            result.checks.append(check_soundness(run_result, ("efficient",)))
            # the live per-link counters and the omniscient trace must agree
            summary = run_result.trace.link_summary()
            result.checks.append(
                ClaimCheck(
                    name=f"loss={loss} detection={detection}: link counters match trace",
                    passed=all(
                        summary.get(key, {"sent": 0, "lost": 0})["sent"]
                        == counters.sent
                        and summary.get(key, {"sent": 0, "lost": 0})["lost"]
                        == counters.lost
                        for key, counters in run_result.sim.link_stats.items()
                    ),
                    details={"links": len(run_result.sim.link_stats)},
                )
            )
    for loss in loss_probs:
        result.checks.append(
            ClaimCheck(
                name=f"loss={loss}: detection bounds live points",
                passed=live_with[loss] < live_without[loss],
                details={
                    "with_detection": live_with[loss],
                    "without": live_without[loss],
                    "lost": lost_counts[loss],
                },
            )
        )
        result.checks.append(
            ClaimCheck(
                name=f"loss={loss}: undetected lost sends accumulate",
                passed=live_without[loss]
                >= live_with[loss] + max(1, lost_counts[loss] // 4),
                details={
                    "without": live_without[loss],
                    "with": live_with[loss],
                    "lost": lost_counts[loss],
                },
            )
        )
    result.notes = (
        "The gap between the detection-off and detection-on rows grows "
        "with the loss rate: exactly the failure mode Sec 3.3 warns about."
    )
    return result
