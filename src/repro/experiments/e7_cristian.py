"""E7 - the probabilistic-synchronization application analysis (Sec 4).

The paper's model of Cristian-style systems: clients start bursts of
round-trip probes when they "lose synchronization" (their interval grows
too loose from drift), finishing a burst quickly with probability ``p0``;
at any time a client loses synchronization with probability ``p1 << p0``.
Conclusion: ``K1 = O(p1 |V| T)`` and ``K2 = 2``, so complexity is
``O(|E|^2)`` with high probability.

We run the width-triggered burst workload at several client counts and
drift levels (drift is the physical origin of ``p1``), and measure ``K2``
(must be <= 2: probe/reply), ``K1`` linearity in ``|V|``, live points
``O(|E|)``, AGDP cells ``O(|E|^2)`` - and that bursts actually fire and
restore tight intervals (the probabilistic mechanism works end to end).
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.claims import ClaimCheck, check_soundness
from ..analysis.complexity import collect_complexity
from ..analysis.metrics import width_stats
from ..core.csa import EfficientCSA
from ..sim.runner import run_workload
from ..sim.workloads import make_cristian_system
from .base import ExperimentResult, experiment

__all__ = ["run"]


@experiment("e7-cristian-pattern")
def run(
    client_counts: Sequence[int] = (3, 6, 10),
    *,
    width_threshold: float = 0.05,
    duration: float = 300.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e7-cristian-pattern",
        description=(
            "Sec 4 (probabilistic sync): K2 = 2, K1 = O(p1 |V| T), live "
            "points O(|E|) under width-triggered probe bursts."
        ),
    )
    for index, n_clients in enumerate(client_counts):
        run_seed = seed + 17 * index
        network, workload = make_cristian_system(
            n_clients,
            width_threshold=width_threshold,
            seed=run_seed,
            monitor_channel="efficient",
        )
        run_result = run_workload(
            network,
            workload,
            {"efficient": lambda p, s: EfficientCSA(p, s)},
            duration=duration,
            seed=run_seed,
            sample_period=duration / 10,
        )
        report = collect_complexity(run_result)
        n_e = report.n_links
        total_bursts = sum(workload.bursts.values())
        client_samples = [
            s
            for s in run_result.samples_for("efficient")
            if s.proc.startswith("client") and s.bound.is_bounded
        ]
        stats = width_stats(client_samples)
        result.rows.append(
            {
                "clients": n_clients,
                "|V|": report.n_processors,
                "|E|": n_e,
                "events": report.events_total,
                "bursts": total_bursts,
                "K1": report.k1_relative_speed,
                "K2": report.k2_link_asymmetry,
                "max_live": report.max_live_points_csa,
                "agdp_cells": report.max_agdp_cells,
                "mean_client_width": stats.mean,
            }
        )
        result.checks.append(
            ClaimCheck(
                name=f"clients={n_clients}: K2 <= 2 (probe/reply)",
                passed=report.k2_link_asymmetry <= 2,
                details={"K2": report.k2_link_asymmetry},
            )
        )
        result.checks.append(
            ClaimCheck(
                name=f"clients={n_clients}: live points O(|E|)",
                passed=report.max_live_points_csa <= 4 * n_e + report.n_processors,
                details={"live": report.max_live_points_csa, "|E|": n_e},
            )
        )
        result.checks.append(
            ClaimCheck(
                name=f"clients={n_clients}: bursts fire and restore bounds",
                passed=total_bursts > 0 and stats.bounded > 0,
                details={"bursts": total_bursts, "bounded_samples": stats.bounded},
            )
        )
        result.checks.append(check_soundness(run_result, ("efficient",)))
    result.notes = (
        "Traffic is demand-driven: bursts fire only when drift loosens the "
        "bound past the threshold, and K2 stays at the RPC value 2."
    )
    return result
