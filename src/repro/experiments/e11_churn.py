"""E11 - re-convergence after state corruption and late joins (churn).

Self-stabilization, measured: scramble one processor's estimator state
(its AGDP distance matrix, its history buffers, or its suspicion ledger
- the :data:`~repro.sim.faults.CORRUPTION_SCOPES`) mid-run and measure
how long until the Theorem 2.1 bounds hold again.  The self-healing
estimator audits its cross-module invariants on every event, detects the
scramble at the next send or receive, rebuilds from its durable event
log, and re-converges; the paper's bounds then apply to the rebuilt
state as if the corruption never happened.

A second cell admits a *late joiner* through the sponsor-snapshot
handshake (Lemmas 3.4/3.5: the frontier plus live-live distances is a
complete handoff) and measures its time-to-bounded - which is one
handshake, not a cold start.

Per (topology x scope) the table reports the re-convergence lag: the
real time from injection to the first sample from which every later
sample is sound *and* bounded.  The standing claims: every recovery
happens (>= 1 per corrupted processor), every re-convergence is finite,
and no sample - before, during, or after the disruption - excludes the
true source time.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.claims import ClaimCheck
from ..core.csa import EfficientCSA
from ..core.csa_base import SuspicionPolicy
from ..core.csa_full import FullInformationCSA
from ..sim.faults import (
    CORRUPTION_SCOPES,
    FaultPlan,
    LateJoin,
    RetransmitPolicy,
    StateCorruption,
)
from ..sim.network import topologies
from ..sim.runner import RunResult, run_workload, standard_network
from ..sim.workloads import PeriodicGossip
from .base import ExperimentResult, experiment

__all__ = ["run"]


def _shape(name: str, n: int):
    if name == "line":
        return topologies.line(n)
    if name == "ring":
        return topologies.ring(n)
    raise ValueError(f"unknown churn topology {name!r} (use line/ring)")


def _churn_run(
    shape: str,
    n: int,
    duration: float,
    seed: int,
    plan: FaultPlan,
    period: float,
) -> RunResult:
    names, links = _shape(shape, n)
    network = standard_network(names, links, seed=seed, loss_prob=0.02)
    return run_workload(
        network,
        PeriodicGossip(period=period, seed=seed),
        {
            "efficient": lambda p, s: EfficientCSA(
                p,
                s,
                reliable=False,
                self_heal=True,
                suspicion=SuspicionPolicy(),
            ),
            "full": lambda p, s: FullInformationCSA(p, s),
        },
        duration=duration,
        seed=seed,
        sample_period=period,
        faults=plan,
        retransmit=RetransmitPolicy(timeout=1.0, backoff=2.0, max_retries=3),
    )


@experiment("e11-churn")
def run(
    shapes: Sequence[str] = ("line", "ring"),
    *,
    n: int = 6,
    duration: float = 120.0,
    period: float = 2.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e11-churn",
        description=(
            "Self-stabilization: per corruption scope, the lag from the "
            "scramble to restored Theorem 2.1 bounds; plus a late joiner "
            "bootstrapping through the sponsor-snapshot handshake."
        ),
    )
    for shape_index, shape in enumerate(shapes):
        names, _links = _shape(shape, n)
        victim = names[n // 2]
        corrupt_at = duration * 0.4
        for scope_index, scope in enumerate(CORRUPTION_SCOPES):
            run_seed = seed + 101 * shape_index + 7 * scope_index
            plan = FaultPlan(
                seed=run_seed,
                injections=(StateCorruption(victim, corrupt_at, scope),),
            )
            churn = _churn_run(shape, n, duration, run_seed, plan, period)
            recoveries = churn.recovery_events("efficient")
            victim_recoveries = len(recoveries.get((victim, "efficient"), ()))
            lag, examined = churn.reconvergence_after(
                corrupt_at, victim, "efficient"
            )
            violations = len(churn.soundness_violations())
            result.rows.append(
                {
                    "shape": shape,
                    "disruption": f"corrupt:{scope}",
                    "proc": victim,
                    "at_rt": corrupt_at,
                    "recoveries": victim_recoveries,
                    "reconvergence_rt": (
                        round(lag, 3) if math.isfinite(lag) else None
                    ),
                    "tail_samples": examined,
                    "soundness_violations": violations,
                }
            )
            prefix = f"{shape}/{scope}: "
            result.checks.append(
                ClaimCheck(
                    name=prefix + "corruption detected and state rebuilt",
                    passed=victim_recoveries >= 1,
                    details={
                        "recoveries": victim_recoveries,
                        "injected": churn.sim.faults.injected["corruptions"],
                    },
                )
            )
            result.checks.append(
                ClaimCheck(
                    name=prefix + "finite re-convergence to Theorem 2.1 bounds",
                    passed=math.isfinite(lag),
                    details={"lag_rt": lag, "tail_samples": examined},
                )
            )
            result.checks.append(
                ClaimCheck(
                    name=prefix + "every sample sound across the disruption",
                    passed=violations == 0,
                    details={"violations": violations},
                )
            )
        # the join cell: the far-end processor arrives mid-run, sponsored
        # by its neighbor, and must reach bounded estimates off the
        # snapshot handoff rather than a cold start
        joiner = names[-1]
        sponsor = names[-2]
        join_at = duration * 0.3
        join_seed = seed + 101 * shape_index + 9001
        plan = FaultPlan(
            seed=join_seed,
            injections=(LateJoin(joiner, join_at, sponsor=sponsor),),
        )
        joined = _churn_run(shape, n, duration, join_seed, plan, period)
        lag, examined = joined.reconvergence_after(join_at, joiner, "efficient")
        violations = len(joined.soundness_violations())
        result.rows.append(
            {
                "shape": shape,
                "disruption": "late-join",
                "proc": joiner,
                "at_rt": join_at,
                "recoveries": 0,
                "reconvergence_rt": round(lag, 3) if math.isfinite(lag) else None,
                "tail_samples": examined,
                "soundness_violations": violations,
            }
        )
        result.checks.append(
            ClaimCheck(
                name=f"{shape}/join: sponsored joiner reaches bounds",
                passed=(
                    math.isfinite(lag)
                    and joined.sim.faults.injected["joins_bootstrapped"] == 1
                ),
                details={
                    "lag_rt": lag,
                    "bootstrapped": joined.sim.faults.injected[
                        "joins_bootstrapped"
                    ],
                    "cold": joined.sim.faults.injected["joins_cold"],
                },
            )
        )
        result.checks.append(
            ClaimCheck(
                name=f"{shape}/join: every sample sound across the join",
                passed=violations == 0,
                details={"violations": violations},
            )
        )
    result.notes = (
        "Detection is event-driven (the invariant audit runs on every "
        "send/receive), so re-convergence lag is dominated by one round "
        "of gossip re-absorption; the joiner's lag is one handshake - "
        "the snapshot already carries the sponsor's whole causal past."
    )
    return result
