"""E1 - optimality (Theorem 2.1 + Sec 2.3 + Sec 3).

Claims reproduced:

1. *Soundness*: the efficient algorithm's interval always contains the
   true source time.
2. *Equality*: the efficient algorithm (history + AGDP) produces exactly
   the full-information reference's intervals - i.e. the Sec 3 machinery
   loses nothing.
3. *Tightness*: both interval endpoints are attained by executions that
   satisfy the specification and are indistinguishable from the real one
   (constructed explicitly from shortest-path potentials).

Run over a grid of topologies, drift magnitudes, and traffic shapes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.claims import (
    check_execution_satisfies_spec,
    check_optimal_equals_full,
    check_soundness,
    check_tightness,
)
from ..analysis.metrics import width_stats
from ..core.csa import EfficientCSA
from ..core.csa_full import FullInformationCSA
from ..sim.network import topologies
from ..sim.runner import run_workload, standard_network
from ..sim.workloads import PeriodicGossip, RandomTraffic
from .base import ExperimentResult, experiment

__all__ = ["run"]

_DEFAULT_CONFIGS = (
    {"topology": "line", "n": 4, "drift_ppm": 100, "traffic": "gossip"},
    {"topology": "ring", "n": 5, "drift_ppm": 200, "traffic": "gossip"},
    {"topology": "star", "n": 6, "drift_ppm": 500, "traffic": "gossip"},
    {"topology": "random", "n": 7, "drift_ppm": 1000, "traffic": "random"},
)


def _build_topology(kind: str, n: int, seed: int):
    if kind == "line":
        return topologies.line(n)
    if kind == "ring":
        return topologies.ring(n)
    if kind == "star":
        return topologies.star(n)
    if kind == "random":
        return topologies.random_connected(n, max(1, n // 2), seed)
    if kind == "grid":
        side = max(2, int(n**0.5))
        return topologies.grid(side, side)
    raise ValueError(f"unknown topology kind {kind!r}")


@experiment("e1-optimality")
def run(
    configs: Optional[Sequence[Dict[str, object]]] = None,
    *,
    duration: float = 90.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e1-optimality",
        description=(
            "Theorem 2.1 / Sec 3: soundness, efficient==full-information, "
            "and endpoint tightness via extremal executions."
        ),
    )
    configs = list(configs or _DEFAULT_CONFIGS)
    for index, config in enumerate(configs):
        run_seed = seed + 101 * index
        names, links = _build_topology(
            str(config["topology"]), int(config["n"]), run_seed
        )
        network = standard_network(
            names, links, seed=run_seed, drift_ppm=float(config["drift_ppm"])
        )
        if config["traffic"] == "gossip":
            workload = PeriodicGossip(period=6.0, seed=run_seed)
        else:
            workload = RandomTraffic(rate=2.5, seed=run_seed, internal_prob=0.1)
        run_result = run_workload(
            network,
            workload,
            {
                "efficient": lambda p, s: EfficientCSA(p, s),
                "full": lambda p, s: FullInformationCSA(p, s),
            },
            duration=duration,
            seed=run_seed,
            sample_period=duration / 12,
            sample_channels=("efficient",),
        )
        checks = [
            check_execution_satisfies_spec(run_result),
            check_soundness(run_result, ("efficient",)),
            check_optimal_equals_full(run_result),
            check_tightness(run_result),
        ]
        stats = width_stats(run_result.samples_for("efficient"))
        result.rows.append(
            {
                "topology": config["topology"],
                "n": config["n"],
                "drift_ppm": config["drift_ppm"],
                "traffic": config["traffic"],
                "events": len(run_result.trace),
                "samples": stats.count,
                "mean_width": stats.mean,
                "p95_width": stats.p95,
                "all_checks": all(c.passed for c in checks),
            }
        )
        for check in checks:
            result.checks.append(
                type(check)(
                    name=f"{config['topology']}/n={config['n']}: {check.name}",
                    passed=check.passed,
                    details=check.details,
                )
            )
    result.notes = (
        "Expected: every check passes on every configuration; the paper's "
        "optimality is exact, not approximate."
    )
    return result
