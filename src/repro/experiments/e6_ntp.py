"""E6 - the NTP application analysis (Sec 4).

The paper models NTP as a levelled time-server hierarchy probed by RPC
every ``C`` minutes and concludes that, in the language of Corollary
4.1.1, ``K1 <= 16 |V|`` and ``K2 <= 2``, so the algorithm's space is
``O(|E|^2)``.

We build such hierarchies at several scales, run the efficient algorithm
over the polling traffic, and measure: ``K1`` against the (period-scaled)
``16 |V|`` analogue, ``K2 <= 2``, peak live points against ``K2 |E|``, and
the AGDP matrix against ``O(|E|^2)`` cells - plus soundness, because an
optimal algorithm that answered wrongly would be no reproduction at all.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..analysis.claims import ClaimCheck, check_soundness
from ..analysis.complexity import collect_complexity
from ..core.csa import EfficientCSA
from ..sim.runner import run_workload
from ..sim.workloads import make_ntp_system
from .base import ExperimentResult, experiment

__all__ = ["run"]

_DEFAULT_SHAPES: Tuple[Tuple[int, ...], ...] = (
    (2, 3),
    (2, 4, 6),
    (3, 6, 9),
)


@experiment("e6-ntp-pattern")
def run(
    shapes: Sequence[Sequence[int]] = _DEFAULT_SHAPES,
    *,
    poll_period: float = 20.0,
    duration: float = 240.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e6-ntp-pattern",
        description=(
            "Sec 4 (NTP): K2 <= 2, K1 = O(|V|), live points O(|E|), hence "
            "space O(|E|^2), under levelled RPC polling."
        ),
    )
    for index, shape in enumerate(shapes):
        run_seed = seed + 47 * index
        network, workload = make_ntp_system(
            tuple(shape), poll_period=poll_period, seed=run_seed
        )
        run_result = run_workload(
            network,
            workload,
            {"efficient": lambda p, s: EfficientCSA(p, s)},
            duration=duration,
            seed=run_seed,
            sample_period=duration / 8,
        )
        report = collect_complexity(run_result)
        n_v = report.n_processors
        n_e = report.n_links
        result.rows.append(
            {
                "levels": "x".join(str(s) for s in shape),
                "|V|": n_v,
                "|E|": n_e,
                "events": report.events_total,
                "K1": report.k1_relative_speed,
                "K2": report.k2_link_asymmetry,
                "max_live": report.max_live_points_csa,
                "agdp_cells": report.max_agdp_cells,
                "|E|^2": n_e * n_e,
            }
        )
        result.checks.append(
            ClaimCheck(
                name=f"{shape}: K2 <= 2 (RPC pattern)",
                passed=report.k2_link_asymmetry <= 2,
                details={"K2": report.k2_link_asymmetry},
            )
        )
        result.checks.append(
            ClaimCheck(
                name=f"{shape}: K1 = O(|V|) (paper: K1 <= 16|V| at C<=16 min)",
                # our poll periods are homogeneous, so the analogue of the
                # paper's 16x headroom is a small constant times |V|
                passed=report.k1_relative_speed <= 16 * n_v,
                details={"K1": report.k1_relative_speed, "16|V|": 16 * n_v},
            )
        )
        result.checks.append(
            ClaimCheck(
                name=f"{shape}: live points O(|E|)",
                passed=report.max_live_points_csa <= 4 * n_e + n_v,
                details={"live": report.max_live_points_csa, "|E|": n_e},
            )
        )
        result.checks.append(
            ClaimCheck(
                name=f"{shape}: AGDP space O(|E|^2)",
                passed=report.max_agdp_cells <= (4 * n_e + n_v + 1) ** 2,
                details={"cells": report.max_agdp_cells, "limit": (4 * n_e + n_v + 1) ** 2},
            )
        )
        result.checks.append(check_soundness(run_result, ("efficient",)))
    result.notes = (
        "The paper's NTP bounds should hold with room to spare: K2 is "
        "exactly <= 2 by the RPC structure, K1 and live points stay linear."
    )
    return result
