"""E2 - report-once (Lemma 3.2).

Claim: the Figure 2 protocol reports each event at most once over each
link in each direction.  We enable per-(event, neighbor) report tracking
in every history module and take the maximum count over the whole run, for
several topologies and traffic shapes.  On reliable networks the maximum
must be exactly 1; the companion rows run the unreliable-mode protocol
over lossy links, where re-reports of *lost* payloads are expected and the
guarantee degrades, as the paper's refined assumption predicts, to
once-per-successful-delivery.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.claims import ClaimCheck, check_report_once, check_soundness
from ..core.csa import EfficientCSA
from ..sim.network import topologies
from ..sim.runner import run_workload, standard_network
from ..sim.workloads import PeriodicGossip, RandomTraffic
from .base import ExperimentResult, experiment

__all__ = ["run"]


def _max_reports(run_result) -> int:
    worst = 0
    for proc in run_result.sim.network.processors:
        reports = run_result.sim.estimator(proc, "efficient").history.stats.reports
        worst = max(worst, max(reports.values(), default=0))
    return worst


@experiment("e2-report-once")
def run(*, duration: float = 120.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="e2-report-once",
        description=(
            "Lemma 3.2: each event is reported at most once per link "
            "direction (reliable networks); lossy runs re-report only "
            "what was lost."
        ),
    )
    configs = (
        ("ring", 5, "gossip", 0.0),
        ("star", 6, "gossip", 0.0),
        ("random", 8, "random", 0.0),
        ("ring", 5, "gossip", 0.25),
    )
    for index, (kind, n, traffic, loss) in enumerate(configs):
        run_seed = seed + 31 * index
        if kind == "ring":
            names, links = topologies.ring(n)
        elif kind == "star":
            names, links = topologies.star(n)
        else:
            names, links = topologies.random_connected(n, n // 2, run_seed)
        network = standard_network(names, links, seed=run_seed, loss_prob=loss)
        workload = (
            PeriodicGossip(period=5.0, seed=run_seed)
            if traffic == "gossip"
            else RandomTraffic(rate=3.0, seed=run_seed)
        )
        reliable = loss == 0.0
        run_result = run_workload(
            network,
            workload,
            {
                "efficient": lambda p, s: EfficientCSA(
                    p, s, reliable=reliable, track_reports=True
                )
            },
            duration=duration,
            seed=run_seed,
            sample_period=duration / 6,
            loss_detection_delay=2.0,
        )
        worst = _max_reports(run_result)
        lost = run_result.sim.messages_lost
        result.rows.append(
            {
                "topology": kind,
                "n": n,
                "traffic": traffic,
                "loss_prob": loss,
                "messages": run_result.sim.messages_sent,
                "lost": lost,
                "max_reports_per_event_dir": worst,
            }
        )
        if reliable:
            result.checks.append(check_report_once(run_result))
        else:
            result.checks.append(
                ClaimCheck(
                    name="lossy-rereports-bounded",
                    passed=worst <= 1 + lost,
                    details={"max_reports": worst, "lost_messages": lost},
                )
            )
        result.checks.append(check_soundness(run_result, ("efficient",)))
    result.notes = (
        "Reliable rows must show max_reports == 1 (Lemma 3.2 exactly); the "
        "lossy row shows re-reports bounded by the number of lost payloads."
    )
    return result
