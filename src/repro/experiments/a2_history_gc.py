"""A2 - ablation: the Figure 2 history garbage collection.

The corrected Figure 2 GC drops an event from ``H_v`` once every neighbor
is known to have it.  This ablation runs identical traffic with GC on and
off and verifies:

* estimates are identical (the buffer contents beyond the GC frontier are
  never needed - the watermarks already cover them);
* payload sizes are identical (the payload filter alone determines what
  is shipped);
* with GC off the buffer grows with the execution, with GC on it stays
  at the Lemma 3.3 level.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.claims import ClaimCheck, check_soundness
from ..core.csa import EfficientCSA
from ..sim.network import topologies
from ..sim.runner import run_workload, standard_network
from ..sim.workloads import PeriodicGossip
from .base import ExperimentResult, experiment

__all__ = ["run"]


@experiment("a2-history-gc-ablation")
def run(
    durations: Sequence[float] = (60.0, 120.0, 240.0),
    *,
    n: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="a2-history-gc-ablation",
        description=(
            "Figure 2 GC ablation: dropping all-neighbors-know events "
            "changes nothing observable and bounds the buffer."
        ),
    )
    names, links = topologies.line(n)
    for duration in durations:
        run_seed = seed + int(duration)
        network = standard_network(names, links, seed=run_seed)
        run_result = run_workload(
            network,
            PeriodicGossip(period=4.0, seed=run_seed),
            {
                "hgc-on": lambda p, s: EfficientCSA(p, s, history_gc=True),
                "hgc-off": lambda p, s: EfficientCSA(p, s, history_gc=False),
            },
            duration=duration,
            seed=run_seed,
            sample_period=duration / 6,
        )
        mismatches = 0
        payload_mismatch = 0
        max_buffer_on = 0
        max_buffer_off = 0
        for proc in network.processors:
            on = run_result.sim.estimator(proc, "hgc-on")
            off = run_result.sim.estimator(proc, "hgc-off")
            e_on, e_off = on.estimate(), off.estimate()
            if (
                abs(e_on.lower - e_off.lower) > 1e-9
                or abs(e_on.upper - e_off.upper) > 1e-9
            ):
                mismatches += 1
            if on.history.stats.records_sent != off.history.stats.records_sent:
                payload_mismatch += 1
            max_buffer_on = max(max_buffer_on, on.history.stats.max_buffer)
            max_buffer_off = max(max_buffer_off, off.history.stats.max_buffer)
        result.rows.append(
            {
                "duration": duration,
                "events": len(run_result.trace),
                "max_buffer_gc_on": max_buffer_on,
                "max_buffer_gc_off": max_buffer_off,
                "estimate_mismatches": mismatches,
                "payload_mismatches": payload_mismatch,
            }
        )
        result.checks.append(
            ClaimCheck(
                name=f"duration={duration}: history GC preserves behaviour",
                passed=mismatches == 0 and payload_mismatch == 0,
                details={
                    "estimate_mismatches": mismatches,
                    "payload_mismatches": payload_mismatch,
                },
            )
        )
        result.checks.append(check_soundness(run_result, ("hgc-on", "hgc-off")))
    buffers_on = [row["max_buffer_gc_on"] for row in result.rows]
    buffers_off = [row["max_buffer_gc_off"] for row in result.rows]
    result.checks.append(
        ClaimCheck(
            name="gc-off buffer grows with execution, gc-on stays flat",
            passed=buffers_off[-1] > 1.5 * buffers_off[0]
            and buffers_on[-1] <= 2 * buffers_on[0],
            details={"gc_on": buffers_on, "gc_off": buffers_off},
        )
    )
    result.notes = (
        "The GC is pure space management: the payload filter, driven by "
        "the watermarks, never consults the GC'd tail."
    )
    return result
