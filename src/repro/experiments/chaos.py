"""Chaos/soak harness: randomized fault schedules against the estimators.

The ROADMAP's north star asks the reproduction to "handle as many
scenarios as you can imagine"; this experiment is the standing proof.  Per
topology (line / ring / grid) it draws a seeded randomized
:class:`~repro.sim.faults.FaultPlan` - processor crash windows, link
partitions, Gilbert-Elliott burst loss, message duplication - on top of
i.i.d. loss, runs periodic gossip under a
:class:`~repro.sim.faults.RetransmitPolicy`, and asserts the standing
invariants:

* the run completes without an unhandled exception;
* every sampled estimate is *sound* (contains true source time) - the
  randomized schedules contain no out-of-spec injection, so Theorem 2.1
  applies throughout;
* at quiesce every surviving (non-crashed) processor's estimate contains
  the true source time;
* a gc-enabled and a gc-disabled AGDP channel ride the same execution and
  their estimates agree sample-for-sample: garbage collection under churn
  loses no live-live distance (Lemma 3.4);
* in-spec runs never trigger the degraded-mode quarantine.

A final deliberately *out-of-spec* run (a delay excursion beyond the
advertised transit bound) checks graceful degradation: the estimator
records structured :class:`~repro.core.csa.QuarantineDiagnostic` entries
and keeps serving queries instead of propagating
:class:`~repro.core.errors.InconsistentSpecificationError`.

A *Byzantine* run (``--liars``) puts lying processors - skewed and
equivocating timestamps, fabricated events - against suspicion-hardened
estimators (see ``docs/FAULTS.md``) and asserts that every honest
neighbor evicts its liar, that honest mis-evictions rehabilitate, that
honest estimates stay sound, and that the honest-only synchronization
graph stays consistent (the lies lived in payloads, not in the timing).

Run as ``repro-chaos`` (console script), via the experiment registry id
``chaos-soak``, or through ``make chaos`` / ``make chaos-byz``.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.claims import ClaimCheck, check_soundness
from ..core.csa import EfficientCSA
from ..core.csa_base import SuspicionPolicy
from ..core.distances import find_negative_cycle
from ..core.syncgraph import build_sync_graph
from ..sim.faults import (
    ByzantineProcessor,
    CrashWindow,
    DelayExcursion,
    FaultPlan,
    LateJoin,
    RetransmitPolicy,
    StateCorruption,
)
from ..sim.network import topologies
from ..sim.runner import RunResult, run_workload, standard_network
from ..sim.workloads import PeriodicGossip
from .base import ExperimentResult, experiment

__all__ = ["run", "main"]


def _shape(name: str, n: int) -> Tuple[List[str], List[Tuple[str, str]]]:
    if name == "line":
        return topologies.line(n)
    if name == "ring":
        return topologies.ring(n)
    if name == "grid":
        return topologies.grid(2, max((n + 1) // 2, 2))
    raise ValueError(f"unknown chaos topology {name!r} (use line/ring/grid)")


def _chaos_run(
    shape: str,
    n: int,
    duration: float,
    seed: int,
    loss_prob: float,
) -> Tuple[RunResult, FaultPlan]:
    names, links = _shape(shape, n)
    network = standard_network(names, links, seed=seed, loss_prob=loss_prob)
    plan = FaultPlan.random(seed, network, duration)
    result = run_workload(
        network,
        PeriodicGossip(period=4.0, seed=seed),
        {
            "efficient": lambda p, s: EfficientCSA(
                p, s, reliable=False, degraded_mode=True
            ),
            "efficient-nogc": lambda p, s: EfficientCSA(
                p, s, reliable=False, degraded_mode=True, agdp_gc=False
            ),
        },
        duration=duration,
        seed=seed,
        sample_period=duration / 10,
        faults=plan,
        retransmit=RetransmitPolicy(timeout=1.0, backoff=2.0, max_retries=3),
    )
    return result, plan


def _gc_agreement(result: RunResult) -> ClaimCheck:
    """GC-on and GC-off channels must agree on every sampled interval."""
    by_key: Dict[Tuple[float, str], Dict[str, object]] = {}
    for sample in result.samples:
        by_key.setdefault((sample.rt, sample.proc), {})[sample.channel] = sample.bound
    mismatches = 0
    compared = 0
    for bounds in by_key.values():
        gc = bounds.get("efficient")
        nogc = bounds.get("efficient-nogc")
        if gc is None or nogc is None:
            continue
        compared += 1
        if abs(gc.lower - nogc.lower) > 1e-9 or abs(gc.upper - nogc.upper) > 1e-9:
            mismatches += 1
    return ClaimCheck(
        name="gc preserves live-live distances (Lemma 3.4)",
        passed=compared > 0 and mismatches == 0,
        details={"compared": compared, "mismatches": mismatches},
    )


def _quiesce_containment(result: RunResult) -> ClaimCheck:
    """Every surviving processor's estimate contains true time at quiesce."""
    sim = result.sim
    failures = 0
    survivors = 0
    for proc in sim.network.processors:
        if sim.crashed(proc):
            continue  # still inside a crash window at quiesce
        survivors += 1
        bound = sim.estimator(proc, "efficient").estimate_now(sim.local_time(proc))
        if not bound.contains(sim.now, tolerance=1e-6):
            failures += 1
    return ClaimCheck(
        name="survivors contain true source time at quiesce",
        passed=survivors > 0 and failures == 0,
        details={"survivors": survivors, "violations": failures},
    )


def _no_quarantine(result: RunResult) -> ClaimCheck:
    """In-spec chaos must never trip the degraded-mode quarantine."""
    quarantined = sum(
        len(result.sim.estimator(proc, channel).diagnostics)
        for proc in result.sim.network.processors
        for channel in ("efficient", "efficient-nogc")
    )
    return ClaimCheck(
        name="no quarantine while the execution is in spec",
        passed=quarantined == 0,
        details={"quarantined_edges": quarantined},
    )


def _out_of_spec_run(n: int, duration: float, seed: int) -> Tuple[RunResult, int]:
    """A run whose delays leave spec: degraded mode must absorb the fallout."""
    names, links = topologies.ring(n)
    network = standard_network(names, links, seed=seed)
    victim = links[0]
    plan = FaultPlan(
        seed=seed,
        injections=(
            DelayExcursion(
                victim[0],
                victim[1],
                start=duration * 0.25,
                end=duration * 0.5,
                extra=2.0,
            ),
        ),
    )
    result = run_workload(
        network,
        PeriodicGossip(period=4.0, seed=seed),
        {
            "efficient": lambda p, s: EfficientCSA(
                p, s, reliable=False, degraded_mode=True
            )
        },
        duration=duration,
        seed=seed,
        faults=plan,
        retransmit=RetransmitPolicy(timeout=1.0, backoff=2.0, max_retries=3),
    )
    quarantined = sum(
        len(result.sim.estimator(proc, "efficient").diagnostics)
        for proc in network.processors
    )
    return result, quarantined


def _churn_scenario_run(
    n: int, duration: float, seed: int
) -> Tuple[RunResult, Dict[str, object]]:
    """Membership churn + state corruption on one line, simultaneously.

    The far-end processor joins late off a sponsor snapshot, a middle
    relay crashes and restarts (durable-state rejoin), and another relay
    gets its estimator state scrambled - all under i.i.d. loss with
    retransmission.  The self-healing estimators must detect the
    scramble, rebuild, and re-converge; nobody may ever emit an unsound
    sample.
    """
    import math as _math

    names, links = topologies.line(n)
    network = standard_network(names, links, seed=seed, loss_prob=0.03)
    joiner, sponsor = names[-1], names[-2]
    rebooter = names[1]
    victim = names[2]
    plan = FaultPlan(
        seed=seed,
        injections=(
            LateJoin(joiner, duration * 0.2, sponsor=sponsor),
            CrashWindow(rebooter, duration * 0.35, duration * 0.5),
            StateCorruption(victim, duration * 0.6, "agdp"),
        ),
    )
    result = run_workload(
        network,
        PeriodicGossip(period=2.0, seed=seed),
        {
            "efficient": lambda p, s: EfficientCSA(
                p, s, reliable=False, self_heal=True, suspicion=SuspicionPolicy()
            )
        },
        duration=duration,
        seed=seed,
        sample_period=2.0,
        faults=plan,
        retransmit=RetransmitPolicy(timeout=1.0, backoff=2.0, max_retries=3),
    )
    recoveries = result.recovery_events("efficient")
    join_lag, _ = result.reconvergence_after(duration * 0.2, joiner, "efficient")
    reboot_lag, _ = result.reconvergence_after(duration * 0.5, rebooter, "efficient")
    corrupt_lag, _ = result.reconvergence_after(duration * 0.6, victim, "efficient")
    verdict = {
        "bootstrapped": result.sim.faults.injected["joins_bootstrapped"],
        "victim_recoveries": len(recoveries.get((victim, "efficient"), ())),
        "join_lag": join_lag,
        "reboot_lag": reboot_lag,
        "corrupt_lag": corrupt_lag,
        "all_finite": all(
            _math.isfinite(lag) for lag in (join_lag, reboot_lag, corrupt_lag)
        ),
    }
    return result, verdict


def _byzantine_run(
    n: int, duration: float, seed: int, liars: int
) -> Tuple[RunResult, Tuple[str, ...]]:
    """A ring with ``liars`` Byzantine processors against hardened estimators."""
    names, links = topologies.ring(n)
    network = standard_network(names, links, seed=seed)
    candidates = [p for p in names if p != network.source]
    step = max(len(candidates) // max(liars, 1), 1)
    chosen = tuple(candidates[::step][:liars])
    plan = FaultPlan(
        seed=seed,
        injections=tuple(
            ByzantineProcessor(
                proc,
                modes=("lie_timestamps", "equivocate", "fabricate"),
                start=duration * 0.05,
                magnitude=0.8,
            )
            for proc in chosen
        ),
    )
    policy = SuspicionPolicy(threshold=3.0, clean_window=duration / 4)
    result = run_workload(
        network,
        PeriodicGossip(period=2.0, seed=seed),
        {"hardened": lambda p, s: EfficientCSA(p, s, suspicion=policy)},
        duration=duration,
        seed=seed,
        sample_period=duration / 10,
        faults=plan,
    )
    return result, chosen


def _byzantine_checks(
    result: RunResult, liars: Tuple[str, ...]
) -> List[ClaimCheck]:
    sim = result.sim
    honest = [p for p in sim.network.processors if p not in liars]

    # every honest *neighbor* of a liar must have evicted it by quiesce
    # (a consistent liar is indistinguishable at distance - only the
    # processors that share round-trips with it hold decisive evidence)
    missing = []
    for liar in liars:
        for peer in sim.spec.neighbors(liar):
            if peer in liars:
                continue
            tracker = sim.estimator(peer, "hardened").suspicion
            if not tracker.is_evicted(liar):
                missing.append((peer, liar))
    evicted_map = {
        proc: sorted(v) for proc, v in result.evicted_by("hardened").items() if v
    }
    checks = [
        ClaimCheck(
            name="byzantine: every honest neighbor evicts its liar",
            passed=not missing,
            details={"missing": missing, "evictions": evicted_map},
        )
    ]

    # only liars stay evicted: honest mis-evictions (a liar can drag an
    # honest relay into a negative cycle) must have been rehabilitated
    stuck = {
        proc: sorted(set(v) - set(liars))
        for proc, v in result.evicted_by("hardened").items()
        if set(v) - set(liars)
    }
    checks.append(
        ClaimCheck(
            name="byzantine: no honest processor stays evicted",
            passed=not stuck,
            details={"stuck": stuck},
        )
    )

    # honest estimates must be sound at every sample despite the lies
    honest_bad = [
        s for s in result.samples if s.proc in honest and not s.sound
    ]
    checks.append(
        ClaimCheck(
            name="byzantine: honest estimates stay sound",
            passed=not honest_bad,
            details={"violations": len(honest_bad)},
        )
    )

    # ground truth: the honest-only synchronization graph (the real
    # execution minus the liars' events) is consistent - the lies lived
    # only in payloads, never in the actual timing
    view = result.trace.global_view()
    liar_eids = [e.eid for liar in liars for e in view.events_of(liar)]
    honest_view = view.without_events(liar_eids)
    cycle = find_negative_cycle(build_sync_graph(honest_view, sim.spec))
    checks.append(
        ClaimCheck(
            name="byzantine: honest-only sync graph has no negative cycle",
            passed=cycle is None,
            details={"cycle": [] if cycle is None else [str(e) for e in cycle]},
        )
    )
    return checks


def _register(fn):
    # Under ``python -m repro.experiments.chaos`` runpy executes this file a
    # second time as ``__main__`` after the package import already registered
    # the canonical copy; registering again would be a duplicate-name error.
    if __name__ == "__main__":
        return fn
    return experiment("chaos-soak")(fn)


@_register
def run(
    shapes: Sequence[str] = ("line", "ring", "grid"),
    *,
    n: int = 6,
    duration: float = 120.0,
    seed: int = 0,
    loss_prob: float = 0.05,
    liars: int = 1,
    churn: bool = True,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="chaos-soak",
        description=(
            "Randomized fault schedules (crashes, partitions, burst loss, "
            "duplication) with retransmission; estimators must stay sound, "
            "gc must lose nothing, and out-of-spec evidence must be "
            "quarantined, not fatal."
        ),
    )
    for index, shape in enumerate(shapes):
        run_seed = seed + 101 * index
        chaos, plan = _chaos_run(shape, n, duration, run_seed, loss_prob)
        sim = chaos.sim
        injected = sim.faults.injected
        result.rows.append(
            {
                "shape": shape,
                "faults": len(plan.injections),
                "sent": sim.messages_sent,
                "lost": sim.messages_lost,
                "dup": sim.messages_duplicated,
                "retrans": sim.retransmissions,
                "suppressed": sim.sends_suppressed,
                "partition_drops": injected["partition_drops"],
                "burst_drops": injected["burst_drops"],
                "crash_drops": injected["crash_dropped_arrivals"],
            }
        )
        prefix = f"{shape}: "
        for check in (
            check_soundness(chaos, ("efficient", "efficient-nogc")),
            _quiesce_containment(chaos),
            _gc_agreement(chaos),
            _no_quarantine(chaos),
        ):
            result.checks.append(
                ClaimCheck(
                    name=prefix + check.name,
                    passed=check.passed,
                    details=check.details,
                )
            )
    oos, quarantined = _out_of_spec_run(n, duration, seed + 977)
    # the estimator must still answer queries after quarantining
    final = oos.sim.estimator(
        oos.sim.network.processors[-1], "efficient"
    ).estimate_now(oos.sim.local_time(oos.sim.network.processors[-1]))
    result.rows.append(
        {
            "shape": "ring(out-of-spec)",
            "faults": 1,
            "sent": oos.sim.messages_sent,
            "lost": oos.sim.messages_lost,
            "dup": 0,
            "retrans": oos.sim.retransmissions,
            "suppressed": 0,
            "partition_drops": 0,
            "burst_drops": 0,
            "crash_drops": 0,
        }
    )
    result.checks.append(
        ClaimCheck(
            name="out-of-spec: evidence quarantined, estimator keeps serving",
            passed=quarantined > 0 and final is not None,
            details={
                "quarantined_edges": quarantined,
                "delay_excursions": oos.sim.faults.injected["delay_excursions"],
            },
        )
    )
    if churn:
        churn_result, verdict = _churn_scenario_run(n, duration, seed + 2221)
        churn_bad = [s for s in churn_result.samples if not s.sound]
        result.rows.append(
            {
                "shape": "line(churn)",
                "faults": 3,
                "sent": churn_result.sim.messages_sent,
                "lost": churn_result.sim.messages_lost,
                "dup": 0,
                "retrans": churn_result.sim.retransmissions,
                "suppressed": churn_result.sim.sends_suppressed,
                "partition_drops": 0,
                "burst_drops": 0,
                "crash_drops": churn_result.sim.faults.injected[
                    "crash_dropped_arrivals"
                ],
            }
        )
        result.checks.append(
            ClaimCheck(
                name="churn: joiner bootstrapped, scramble rebuilt, all re-converge",
                passed=(
                    verdict["bootstrapped"] == 1
                    and verdict["victim_recoveries"] >= 1
                    and verdict["all_finite"]
                    and not churn_bad
                ),
                details=dict(verdict, violations=len(churn_bad)),
            )
        )
    if liars > 0:
        byz, chosen = _byzantine_run(n, duration * 1.5, seed + 4099, liars)
        injected = byz.sim.faults.injected
        evictions = sum(
            sum(1 for e in events if e.action == "evicted")
            for events in byz.eviction_events("hardened").values()
        )
        rehabilitations = sum(
            sum(1 for e in events if e.action == "rehabilitated")
            for events in byz.eviction_events("hardened").values()
        )
        result.rows.append(
            {
                "shape": f"ring(byzantine x{len(chosen)})",
                "faults": len(chosen),
                "sent": byz.sim.messages_sent,
                "lost": byz.sim.messages_lost,
                "dup": 0,
                "retrans": 0,
                "suppressed": 0,
                "partition_drops": 0,
                "burst_drops": 0,
                "crash_drops": 0,
                "tampered": injected["tampered_payloads"],
                "fabricated": injected["fabricated_records"],
                "evictions": evictions,
                "rehabs": rehabilitations,
            }
        )
        result.checks.extend(_byzantine_checks(byz, chosen))
    result.notes = (
        "Randomized schedules never include out-of-spec injections, so "
        "soundness is assertable throughout; the dedicated excursion run "
        "exercises the degraded-mode quarantine, and the Byzantine run "
        "exercises payload validation, suspicion, and eviction."
    )
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point: ``repro-chaos [--duration D] [--seed S] ...``."""
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Seeded chaos/soak run for the clock-sync estimators.",
    )
    parser.add_argument(
        "--shapes",
        nargs="+",
        default=["line", "ring", "grid"],
        choices=["line", "ring", "grid"],
        help="topologies to soak (default: all three)",
    )
    parser.add_argument("--n", type=int, default=6, help="processors per topology")
    parser.add_argument(
        "--duration", type=float, default=120.0, help="simulated real time per run"
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--loss-prob", type=float, default=0.05, help="baseline i.i.d. loss"
    )
    parser.add_argument(
        "--liars",
        type=int,
        default=1,
        help="Byzantine processors in the adversarial run (0 disables it)",
    )
    parser.add_argument(
        "--no-churn",
        action="store_true",
        help="skip the membership-churn / self-stabilization cell",
    )
    args = parser.parse_args(argv)
    result = run(
        tuple(args.shapes),
        n=args.n,
        duration=args.duration,
        seed=args.seed,
        loss_prob=args.loss_prob,
        liars=args.liars,
        churn=not args.no_churn,
    )
    print(result.render())
    return 0 if result.all_passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
