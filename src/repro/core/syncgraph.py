"""Synchronization graphs (Definition 2.1).

Given a view ``beta`` and a bounds mapping ``B``, the synchronization graph
has the view's events as nodes, an edge ``(p, q)`` whenever
``B(p, q) < TOP``, with weight

    ``w(p, q) = B(p, q) - virt_del(p, q)``  where
    ``virt_del(p, q) = LT(p) - LT(q)``.

Under the standard specifications (drift + transit bounds), finite bounds
exist only between events adjacent in the view graph:

* consecutive events ``q`` (earlier) and ``p`` (later) at a processor with
  drift spec ``(alpha, beta)`` and ``delta = LT(p) - LT(q)``:

  - ``B(p, q) = beta * delta``  -> edge ``(p, q)`` weight ``(beta - 1) * delta``
  - ``B(q, p) = -alpha * delta`` -> edge ``(q, p)`` weight ``(1 - alpha) * delta``

  (both non-negative; for the source, both are zero, so any two source
  points are at distance 0 from each other);

* message with send ``s``, receive ``r``, transit in ``[lo, hi]``:

  - ``B(r, s) = hi`` -> edge ``(r, s)`` weight ``hi - (LT(r) - LT(s))``
    (omitted when ``hi`` is infinite)
  - ``B(s, r) = -lo`` -> edge ``(s, r)`` weight ``(LT(r) - LT(s)) - lo``

  (these may be negative - that is where the interesting information is).

The Clock Synchronization Theorem (Theorem 2.1) then reads distances off
this graph; see :mod:`repro.core.theorem`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from .distances import WeightedDigraph
from .events import Event, EventId
from .specs import SystemSpec, TOP
from .view import View

__all__ = [
    "drift_edge_weights",
    "transit_edge_weights",
    "incident_sync_edges",
    "build_sync_graph",
    "ExplicitBoundsMapping",
    "sync_graph_from_bounds",
]


def drift_edge_weights(
    spec: SystemSpec, earlier: Event, later: Event
) -> Tuple[float, float]:
    """Synchronization-graph weights between consecutive same-processor events.

    Returns ``(w_later_to_earlier, w_earlier_to_later)``, i.e. the weights of
    edges ``(later, earlier)`` and ``(earlier, later)``.
    """
    if earlier.proc != later.proc:
        raise ValueError(f"{earlier.eid} and {later.eid} are on different processors")
    drift = spec.drift_of(later.proc)
    delta = later.lt - earlier.lt
    if delta < 0:
        raise ValueError(f"{later.eid} is not later than {earlier.eid}")
    return (drift.beta - 1.0) * delta, (1.0 - drift.alpha) * delta


def transit_edge_weights(
    spec: SystemSpec, send: Event, receive: Event
) -> Tuple[float, float]:
    """Synchronization-graph weights between a send and its receive.

    Returns ``(w_receive_to_send, w_send_to_receive)``; the first component
    is ``+inf`` when the link has no finite transit upper bound.
    """
    transit = spec.transit_of(send.proc, receive.proc)
    observed = receive.lt - send.lt
    w_r_to_s = transit.upper - observed if transit.is_bounded else TOP
    w_s_to_r = observed - transit.lower
    return w_r_to_s, w_s_to_r


def incident_sync_edges(
    spec: SystemSpec, view: View, event: Event
) -> List[Tuple[EventId, EventId, float]]:
    """The synchronization-graph edges introduced by inserting ``event``.

    Assumes the view already contains the event's per-processor predecessor
    and, for receives, the matching send (the :class:`View` class enforces
    both).  Infinite-weight edges are filtered out.
    """
    edges: List[Tuple[EventId, EventId, float]] = []
    pred_id = event.eid.pred()
    if pred_id is not None:
        pred = view.event(pred_id)
        w_back, w_fwd = drift_edge_weights(spec, pred, event)
        edges.append((event.eid, pred_id, w_back))
        edges.append((pred_id, event.eid, w_fwd))
    if event.is_receive:
        send = view.event(event.send_eid)
        w_r_to_s, w_s_to_r = transit_edge_weights(spec, send, event)
        if not math.isinf(w_r_to_s):
            edges.append((event.eid, send.eid, w_r_to_s))
        edges.append((send.eid, event.eid, w_s_to_r))
    return edges


def build_sync_graph(view: View, spec: SystemSpec) -> WeightedDigraph:
    """The full synchronization graph of a view under standard specifications."""
    graph = WeightedDigraph()
    for event in view.events():
        graph.add_node(event.eid)
        for u, v, w in incident_sync_edges(spec, view, event):
            graph.add_edge(u, v, w)
    return graph


class ExplicitBoundsMapping:
    """A bounds mapping given extensionally, for theory-level experiments.

    The paper's model is more general than drift + transit specs: *any*
    function ``B`` from ordered event pairs to ``R ∪ {TOP}`` is a bounds
    mapping.  This class lets tests exercise the Clock Synchronization
    Theorem machinery on arbitrary constraint systems.
    """

    def __init__(self, bounds: Optional[Dict[Tuple[EventId, EventId], float]] = None):
        self._bounds: Dict[Tuple[EventId, EventId], float] = {}
        for (p, q), value in (bounds or {}).items():
            self.set(p, q, value)

    def set(self, p: EventId, q: EventId, upper: float) -> None:
        """Assert ``RT(p) - RT(q) <= upper``."""
        if math.isnan(upper):
            raise ValueError("bound must not be NaN")
        current = self._bounds.get((p, q), TOP)
        self._bounds[(p, q)] = min(current, upper)

    def set_range(self, p: EventId, q: EventId, lower: float, upper: float) -> None:
        """Assert ``RT(p) - RT(q) in [lower, upper]``."""
        self.set(p, q, upper)
        self.set(q, p, -lower)

    def bound(self, p: EventId, q: EventId) -> float:
        """``B(p, q)``: the asserted upper bound, or ``TOP``."""
        return self._bounds.get((p, q), TOP)

    def items(self) -> Iterable[Tuple[Tuple[EventId, EventId], float]]:
        return self._bounds.items()


def sync_graph_from_bounds(
    view: View, bounds: ExplicitBoundsMapping
) -> WeightedDigraph:
    """Definition 2.1 applied verbatim to an explicit bounds mapping."""
    graph = WeightedDigraph()
    for event in view.events():
        graph.add_node(event.eid)
    for (p, q), upper in bounds.items():
        if math.isinf(upper):
            continue
        virt_del = view.event(p).lt - view.event(q).lt
        graph.add_edge(p, q, upper - virt_del)
    return graph
