"""Validation of untrusted history payloads (Byzantine-input hardening).

The full-information propagation protocol (Sec 3.1, Fig 2) merges incoming
event records verbatim, which is correct when every processor follows the
protocol but lets a single lying processor poison every honest node's
synchronization graph.  This module is the admission filter in front of
the merge: each incoming :class:`~repro.core.history.HistoryPayload` is
screened *before* any estimator state changes, and every anomaly becomes a
structured :class:`ValidationFailure` that names the processors it accuses
instead of a blanket :class:`~repro.core.errors.ViewError`.

Checks, in order:

* **structural** - records are well-formed :class:`~repro.core.events.Event`
  objects of processors and links that exist in the
  :class:`~repro.core.specs.SystemSpec`;
* **continuity** - per-processor sequence numbers extend the receiver's
  knowledge frontier without gaps (Fig 2 ships contiguous ranges, so a gap
  means tampering somewhere upstream);
* **monotonicity** - claimed local clocks strictly increase per processor;
* **conflicts/equivocation** - a record disagreeing with a copy the
  receiver already holds is the signature of the *originating* processor
  telling different stories to different peers;
* **causal-past closure** - receives reference sends that are known, carried
  by the same payload, or at least attributable when they are not;
* **forged-self** - no payload may claim events of the *receiving*
  processor it has not generated itself;
* **drift/transit plausibility** - the claimed (real-time-free) local
  intervals and message timings must admit *some* execution satisfying the
  advertised drift and transit bounds.  By the Clock Synchronization
  Theorem (Thm 2.1) that is exactly "the induced synchronization subgraph
  has no negative cycle", checked with Bellman-Ford over the payload's
  records plus the receiver-held boundary events.

Blame attribution follows one rule: anomalies a correct *relay* could
never produce (self-contradictory claims of processor ``w``) accuse ``w``;
anomalies a correct relay could not *ship* (malformed records, sequence
gaps) accuse the immediate sender - unless the implicated origin is
already suspected, in which case the origin keeps the blame so that honest
relays of a liar's half-poisoned stream are not punished for it.

Rejection and blame are deliberately decoupled: a record is rejected only
when keeping it could corrupt receiver state (conflicts, gaps, forged
events, implausible timings); benign-but-suspicious shapes (a receive
whose send we cannot resolve) are admitted - the degraded-mode graph
guards already cope with them - while still producing a failure for the
suspicion ledger.  Rejected records never advance protocol watermarks, so
honest senders simply re-report them; sustained lying therefore converts
into sustained blame, which is what drives eviction
(:class:`~repro.core.csa_base.SuspicionTracker`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
)

from .distances import WeightedDigraph, find_negative_cycle
from .events import Event, EventId, ProcessorId
from .history import HistoryPayload
from .specs import SystemSpec
from .syncgraph import drift_edge_weights, transit_edge_weights

__all__ = [
    "FAILURE_KINDS",
    "ValidationFailure",
    "ValidationReport",
    "ReceiverKnowledge",
    "validate_payload",
]

#: Every kind a :class:`ValidationFailure` may carry, with the blame rule.
FAILURE_KINDS: Tuple[str, ...] = (
    "malformed",  # not an Event / unknown processor or link -> sender
    "gap",  # skipped sequence numbers -> sender (origin when suspected)
    "non-monotone",  # claimed local clock not increasing -> origin
    "forged-self",  # claims the receiver's own future events -> sender
    "equivocation",  # conflicts with a copy the receiver holds -> origin
    "conflict",  # two contradictory copies in one payload -> sender
    "dangling-send",  # receive of an unknown send -> sender (origin when suspected)
    "bad-send-ref",  # receive of a known non-send event -> referenced origin
    "double-delivery",  # one send received twice in one payload -> sender
    "implausible",  # timings violate drift/transit specs, one culprit -> that processor
    "implausible-shared",  # negative cycle spanning several processors -> all of them, lightly
    "bad-flag",  # malformed loss flag -> sender
)


@dataclass(frozen=True)
class ValidationFailure:
    """One validated anomaly, with the processors it accuses.

    ``accused`` lists every processor this anomaly implicates; the owning
    estimator feeds each into its suspicion tracker.  ``record`` is the
    offending payload record when one can be named.
    """

    kind: str
    accused: Tuple[ProcessorId, ...]
    detail: str
    record: Optional[Event] = None

    def __post_init__(self):
        if self.kind not in FAILURE_KINDS:
            raise ValueError(f"unknown validation failure kind {self.kind!r}")


@dataclass(frozen=True)
class ValidationReport:
    """The outcome of screening one payload."""

    #: records safe to ingest, in the payload's original order
    accepted: Tuple[Event, ...]
    #: records withheld from the receiver's state
    rejected: Tuple[Event, ...]
    failures: Tuple[ValidationFailure, ...]
    #: loss flags that passed screening
    accepted_flags: Tuple[EventId, ...]
    rejected_flags: Tuple[object, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def sanitized(self) -> HistoryPayload:
        """The payload with everything rejected stripped out."""
        return HistoryPayload(records=self.accepted, loss_flags=self.accepted_flags)


class ReceiverKnowledge(Protocol):
    """What the validator may ask about the receiver's current state."""

    def known_seq(self, proc: ProcessorId) -> int:
        """Highest sequence number of ``proc`` the receiver knows (-1: none)."""
        ...

    def lookup(self, eid: EventId) -> Optional[Event]:
        """The receiver's copy of ``eid``, or ``None`` if not retained."""
        ...

    def rejected_seq(self, proc: ProcessorId) -> int:
        """Highest seq of ``proc`` the receiver has ever *rejected* (-1: none).

        Optional (implementations may omit it).  Used to recognize
        *self-inflicted* gaps: once the receiver refuses records, honest
        senders - who cannot know that - keep shipping from their own
        optimistic watermark, and every subsequent payload legitimately
        skips the refused range.  Blaming anyone for such a gap would
        convert one (possibly wrong) rejection into unbounded suspicion.
        """
        ...


class _Screen:
    """Working state for one :func:`validate_payload` call."""

    def __init__(
        self,
        sender: ProcessorId,
        receiver: ProcessorId,
        knowledge: ReceiverKnowledge,
        spec: SystemSpec,
        trusted: FrozenSet[ProcessorId],
        suspected: FrozenSet[ProcessorId],
        ignored: FrozenSet[ProcessorId],
    ):
        self.sender = sender
        self.receiver = receiver
        self.knowledge = knowledge
        self.spec = spec
        self.trusted = trusted
        self.suspected = suspected
        self.ignored = ignored
        self.accepted: Dict[EventId, Event] = {}
        self.order: List[EventId] = []
        self.rejected: List[Event] = []
        self.failures: List[ValidationFailure] = []
        self._emitted: Set[Tuple[str, Tuple[ProcessorId, ...]]] = set()
        #: origins whose remaining records are silently rejected
        self.tainted: Set[ProcessorId] = set()
        #: highest accepted-or-known seq per origin
        self.frontier: Dict[ProcessorId, int] = {}
        #: send eid -> first in-payload receive, for double-delivery detection
        self.delivered: Dict[EventId, EventId] = {}

    # -- bookkeeping -------------------------------------------------------------

    def fail(
        self,
        kind: str,
        accused: Iterable[ProcessorId],
        detail: str,
        record: Optional[Event] = None,
    ) -> None:
        """Emit a failure, deduplicated per (kind, accused) within the payload.

        Deduplication keeps blame proportional to *payloads* rather than
        records: one poisoned payload is one lie, however many records it
        drags along, so a burst of bad records cannot catapult a processor
        past the eviction threshold in a single step.
        """
        accused = tuple(dict.fromkeys(accused))
        key = (kind, accused)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.failures.append(ValidationFailure(kind, accused, detail, record))

    def blame_shipper(self, origin: ProcessorId) -> Tuple[ProcessorId, ...]:
        """Sender-attributed blame, redirected to an already-suspected origin.

        A gap or dangling reference in ``origin``'s stream is normally the
        immediate sender's fault (Fig 2 never ships one), but when the
        receiver has already caught ``origin`` misbehaving, the hole is far
        more likely collateral of *that* - e.g. the receiver froze
        ``origin``'s history after a conflict while honest relays kept
        confirming deliveries.  Accusing the honest relay would let one
        liar get its neighbors evicted.
        """
        if origin in self.suspected or origin in self.ignored:
            return (origin,)
        return (self.sender,)

    def effective_frontier(self, proc: ProcessorId) -> int:
        known = self.knowledge.known_seq(proc)
        return max(known, self.frontier.get(proc, -1))

    def resolve(self, eid: EventId) -> Optional[Event]:
        """A copy of ``eid`` from the payload's accepted set or the receiver."""
        got = self.accepted.get(eid)
        if got is not None:
            return got
        return self.knowledge.lookup(eid)

    def reject(self, record: Event, taint: bool = True) -> None:
        self.rejected.append(record)
        if taint:
            self.tainted.add(record.proc)

    def accept(self, record: Event) -> None:
        if record.eid not in self.accepted:
            self.order.append(record.eid)
        self.accepted[record.eid] = record
        if record.seq > self.frontier.get(record.proc, -1):
            self.frontier[record.proc] = record.seq

    # -- structural / per-record screening ----------------------------------------

    def screen_record(self, record: object) -> None:
        if not isinstance(record, Event):
            self.fail(
                "malformed",
                (self.sender,),
                f"payload record {record!r} is not an event",
            )
            return
        proc = record.proc
        if proc in self.ignored or proc in self.tainted:
            # evicted origins and post-anomaly remnants: drop without blame
            self.reject(record, taint=False)
            return
        if proc not in self.spec.drift:
            self.fail(
                "malformed",
                (self.sender,),
                f"record {record.eid} claims unknown processor {proc!r}",
                record,
            )
            self.reject(record)
            return
        duplicate = self.accepted.get(record.eid)
        if duplicate is not None:
            if duplicate != record:
                self.fail(
                    "conflict",
                    (self.sender,),
                    f"payload carries two contradictory copies of {record.eid}: "
                    f"{duplicate} and {record}",
                    record,
                )
                self.reject(record)
            return
        known = self.knowledge.known_seq(proc)
        if record.seq <= known:
            self.screen_known(record)
            return
        frontier = self.effective_frontier(proc)
        if record.seq > frontier + 1:
            rejected_hwm = getattr(self.knowledge, "rejected_seq", lambda p: -1)(proc)
            if record.seq - 1 <= rejected_hwm:
                # self-inflicted: the missing range is exactly what this
                # receiver refused earlier.  The record is still unusable
                # (its past is unknown), but an honest sender produces this
                # shape whenever we rejected something, so blame recurs
                # only against an origin we already suspect - that is what
                # keeps a persistent liar from rehabilitating - and never
                # lands on the relay.
                accused: Tuple[ProcessorId, ...] = (
                    (proc,) if proc in self.suspected else ()
                )
                why = "the missing records were rejected here earlier"
            else:
                accused = self.blame_shipper(proc)
                why = f"receiver's frontier for {proc!r} is {frontier}"
            self.fail(
                "gap",
                accused,
                f"record {record.eid} skips sequence numbers ({why})",
                record,
            )
            self.reject(record)
            return
        self.screen_new(record)

    def screen_known(self, record: Event) -> None:
        """A record the receiver already learned: only equivocation to check."""
        stored = self.knowledge.lookup(record.eid)
        if stored is not None and stored != record:
            self.fail(
                "equivocation",
                (record.proc,),
                f"record {record.eid} conflicts with the receiver's copy: "
                f"held {stored}, offered {record} "
                f"(originating processor {record.proc!r})",
                record,
            )
            self.reject(record)
            return
        # matching (or unverifiable) duplicate: keep it so protocol
        # watermarks advance exactly as they would without screening
        self.accept(record)

    def screen_new(self, record: Event) -> None:
        proc = record.proc
        if proc == self.receiver:
            self.fail(
                "forged-self",
                (self.sender,),
                f"payload claims {self.receiver!r}'s own future event {record.eid}",
                record,
            )
            self.reject(record)
            return
        pred_id = record.eid.pred()
        if pred_id is not None:
            pred = self.resolve(pred_id)
            if pred is not None and record.lt <= pred.lt:
                self.fail(
                    "non-monotone",
                    (proc,),
                    f"{proc!r}'s claimed clock does not increase: "
                    f"{pred.lt} at {pred_id} then {record.lt} at {record.eid}",
                    record,
                )
                self.reject(record)
                return
        if record.is_send:
            if record.dest not in self.spec.drift or not self.spec.has_link(
                proc, record.dest
            ):
                self.fail(
                    "malformed",
                    (proc,),
                    f"send {record.eid} claims a message over a nonexistent "
                    f"link to {record.dest!r}",
                    record,
                )
                self.reject(record)
                return
        if record.is_receive and not self.screen_receive(record):
            return
        self.accept(record)

    def screen_receive(self, record: Event) -> bool:
        """Causal-past closure for a receive; True when the record is kept."""
        send_eid = record.send_eid
        if send_eid.proc not in self.spec.drift or not self.spec.has_link(
            record.proc, send_eid.proc
        ):
            self.fail(
                "malformed",
                (record.proc,),
                f"receive {record.eid} claims a message over a nonexistent "
                f"link from {send_eid.proc!r}",
                record,
            )
            self.reject(record)
            return False
        first = self.delivered.setdefault(send_eid, record.eid)
        if first != record.eid:
            # both receives are kept (the graph layer tolerates the echo);
            # the contradiction still goes on the ledger
            self.fail(
                "double-delivery",
                (self.sender,),
                f"payload delivers message {send_eid} twice "
                f"(receives {first} and {record.eid})",
                record,
            )
        send = self.resolve(send_eid)
        if send is not None:
            if not send.is_send or send.dest != record.proc:
                # the *referenced event* is the lie (e.g. a fabricated
                # internal squatting on a real send's id); the receive
                # itself may well be genuine, so it is kept
                self.fail(
                    "bad-send-ref",
                    (send_eid.proc,),
                    f"receive {record.eid} references {send_eid} which is "
                    f"{send}, not a send addressed to {record.proc!r}",
                    record,
                )
        elif send_eid.seq > self.effective_frontier(send_eid.proc):
            # Fig 2 reports sends before their receives, so a correct relay
            # cannot ship this; keep the record (the graph guards skip the
            # unresolvable transit edge) but note who shipped it
            self.fail(
                "dangling-send",
                self.blame_shipper(send_eid.proc),
                f"receive {record.eid} references unknown send {send_eid}",
                record,
            )
        return True

    # -- semantic plausibility ------------------------------------------------------

    def plausibility_nodes(
        self, receive_event: Optional[Event]
    ) -> Dict[EventId, Event]:
        """Accepted *new* records plus the receiver-held boundary around them.

        The boundary - per-processor predecessors, referenced sends, and
        the engine receive event carrying this payload - anchors the
        claimed timings against evidence the receiver trusts; without it a
        liar's claims would only ever be checked against themselves.
        """
        nodes: Dict[EventId, Event] = {}
        for eid in self.order:
            if eid.seq > self.knowledge.known_seq(eid.proc):
                nodes[eid] = self.accepted[eid]
        for eid in list(nodes):
            event = nodes[eid]
            pred_id = eid.pred()
            if pred_id is not None and pred_id not in nodes:
                pred = self.knowledge.lookup(pred_id)
                if pred is not None:
                    nodes[pred_id] = pred
            if event.is_receive and event.send_eid not in nodes:
                send = self.knowledge.lookup(event.send_eid)
                if send is not None:
                    nodes[event.send_eid] = send
        if receive_event is not None:
            nodes[receive_event.eid] = receive_event
            pred_id = receive_event.eid.pred()
            if pred_id is not None and pred_id not in nodes:
                pred = self.knowledge.lookup(pred_id)
                if pred is not None:
                    nodes[pred_id] = pred
        return nodes

    def plausibility_graph(self, nodes: Dict[EventId, Event]) -> WeightedDigraph:
        graph = WeightedDigraph()
        for eid, event in nodes.items():
            graph.add_node(eid)
            pred_id = eid.pred()
            if pred_id is not None and pred_id in nodes:
                pred = nodes[pred_id]
                if pred.lt <= event.lt:
                    w_back, w_fwd = drift_edge_weights(self.spec, pred, event)
                    graph.add_edge(eid, pred_id, w_back)
                    graph.add_edge(pred_id, eid, w_fwd)
            if event.is_receive and event.send_eid in nodes:
                send = nodes[event.send_eid]
                if send.is_send and send.dest == event.proc:
                    w_r_to_s, w_s_to_r = transit_edge_weights(self.spec, send, event)
                    graph.add_edge(eid, event.send_eid, w_r_to_s)
                    graph.add_edge(event.send_eid, eid, w_s_to_r)
        return graph

    def screen_plausibility(self, receive_event: Optional[Event]) -> None:
        """Reject claimed timings that cannot belong to any in-spec execution.

        Theorem 2.1 in the small: a negative cycle in the synchronization
        subgraph induced by the claims certifies that no assignment of real
        times satisfies the advertised drift and transit bounds.  Honest
        payloads, being projections of a real in-spec execution, can never
        produce one.

        Attribution depends on how many untrusted processors the cycle
        spans.  Exactly one: the evidence is unambiguous (only that
        processor's claims are unanchored), so it is accused with full
        weight, its claimed records are dropped, and the check repeats on
        the remainder.  Several: the cycle proves *someone* lied but not
        who, so all of them are ledgered lightly (``implausible-shared``)
        and every record is kept - the graph layer quarantines the
        poisoned constraints without freezing anyone's stream, so later
        payloads can still deliver the evidence that singles the liar out.
        Rejecting here instead would permanently freeze the co-accused
        honest streams at this receiver (senders never re-ship confirmed
        ranges), leaving only unattributable gap echoes behind.
        """
        while True:
            nodes = self.plausibility_nodes(receive_event)
            if not nodes:
                return
            cycle = find_negative_cycle(self.plausibility_graph(nodes))
            if cycle is None:
                return
            cycle_procs = sorted(
                {endpoint.proc for u, v, _w in cycle for endpoint in (u, v)}
            )
            accused = tuple(
                p for p in cycle_procs if p not in self.trusted and p != self.receiver
            )
            detail = "claimed timings close a negative cycle: " + " -> ".join(
                f"{u}~{w:.4g}" for u, _v, w in cycle
            )
            if not accused:
                # every processor on the cycle is trusted: the claims
                # themselves must be counterfeit - charge the shipper and
                # drop everything it carried that we had not already known
                self.fail("implausible", (self.sender,), detail)
                for eid in list(self.order):
                    if eid.seq > self.knowledge.known_seq(eid.proc):
                        self.reject(self.accepted.pop(eid), taint=False)
                        self.order.remove(eid)
                return
            if len(accused) > 1:
                self.fail("implausible-shared", accused, detail)
                return
            self.fail("implausible", accused, detail)
            for eid in list(self.order):
                if eid.proc in accused and eid.seq > self.knowledge.known_seq(
                    eid.proc
                ):
                    self.reject(self.accepted.pop(eid))
                    self.order.remove(eid)

    # -- loss flags ------------------------------------------------------------------

    def screen_flags(
        self, flags: Iterable[object]
    ) -> Tuple[List[EventId], List[object]]:
        kept: List[EventId] = []
        dropped: List[object] = []
        for flag in flags:
            if not isinstance(flag, EventId) or flag.proc not in self.spec.drift:
                self.fail(
                    "bad-flag",
                    (self.sender,),
                    f"loss flag {flag!r} does not name a known event",
                )
                dropped.append(flag)
                continue
            kept.append(flag)
        return kept, dropped


def validate_payload(
    sender: ProcessorId,
    payload: HistoryPayload,
    *,
    knowledge: ReceiverKnowledge,
    spec: SystemSpec,
    receiver: ProcessorId,
    receive_event: Optional[Event] = None,
    trusted: Iterable[ProcessorId] = (),
    suspected: Iterable[ProcessorId] = (),
    ignored: Iterable[ProcessorId] = (),
) -> ValidationReport:
    """Screen one incoming history payload before any state is touched.

    Parameters
    ----------
    sender:
        The neighbor that shipped the payload (the accused for anomalies a
        correct relay could not produce).
    knowledge:
        The receiver's current event knowledge (:class:`ReceiverKnowledge`).
    receive_event:
        The (trusted, locally generated) receive event carrying this
        payload, when available; anchoring it in the plausibility check
        lets round-trip timing lies be caught on arrival rather than only
        later in the graph layer.
    trusted:
        Processors never accused (typically the receiver itself and the
        source).
    suspected:
        Processors with outstanding suspicion at the receiver; sender-side
        blame for holes in *their* streams is redirected to them.
    ignored:
        Evicted processors whose records are dropped silently - their
        streams are frozen at the receiver, so anomalies in them carry no
        new information.

    Returns a :class:`ValidationReport`; ``report.sanitized`` is the
    payload to hand to the protocol layer.  For honest payloads the
    sanitized payload equals the input, so screening is behaviorally
    invisible on clean executions.
    """
    screen = _Screen(
        sender=sender,
        receiver=receiver,
        knowledge=knowledge,
        spec=spec,
        trusted=frozenset(trusted) | {receiver},
        suspected=frozenset(suspected),
        ignored=frozenset(ignored),
    )
    for record in payload.records:
        screen.screen_record(record)
    screen.screen_plausibility(receive_event)
    kept_flags, dropped_flags = screen.screen_flags(payload.loss_flags)
    return ValidationReport(
        accepted=tuple(screen.accepted[eid] for eid in screen.order),
        rejected=tuple(screen.rejected),
        failures=tuple(screen.failures),
        accepted_flags=tuple(kept_flags),
        rejected_flags=tuple(dropped_flags),
    )
