"""The full-information history propagation protocol (Sec 3.1, Figure 2).

Each processor ``v`` keeps

* a history buffer ``H_v`` of event records, and
* for each neighbor ``u`` and each processor ``w``, a watermark
  ``C_vu[w]`` - the last event of ``w`` that ``v`` knows ``u`` knows
  (reported by ``v`` to ``u`` or by ``u`` to ``v``).

On sending to ``u``, the message carries every buffered event ``u`` might
lack (``seq > C_vu[loc]``); watermarks are advanced and the buffer is
garbage-collected.  The protocol is a vector-clock variant and guarantees
(Lemma 3.1) that at every point ``p`` the processor at ``p`` knows exactly
the local view from ``p``, with each event reported at most once per link
direction (Lemma 3.2) and buffer size ``O(K1 * (D + 1))`` (Lemma 3.3).

**Pseudo-code erratum.**  Figure 2 of the paper garbage-collects with
``H_v <- {p in H_v | for some neighbor u': LT(p) <= C_vu'[loc(p)]}``, which
*keeps* events some neighbor already knows and drops the rest - the
opposite of the surrounding prose and of what Lemmas 3.2/3.3 require.  We
implement the prose: **keep ``p`` iff some neighbor still lacks it**
(``seq(p) > C_vu'[loc(p)]`` for some ``u'``).  See DESIGN.md.

Watermarks are stored as per-processor *sequence numbers* rather than local
times; the two orders agree (local times strictly increase per processor)
and integers avoid floating-point comparisons.

**Message loss (Sec 3.3).**  The paper assumes reliable communication for
the transformation and sketches loss handling via a detection mechanism.
Advancing ``C_vu`` at send time is only sound if the message arrives, so
:meth:`prepare_payload` returns a *delivery token*:

* in ``reliable`` mode (default) the token is confirmed immediately -
  exactly Figure 2;
* in unreliable mode nothing advances until :meth:`confirm_delivery`,
  and payloads are computed against confirmed watermarks only.  A lost
  payload is simply :meth:`abort_delivery`-ed; later payloads re-report the
  same contiguous range, so receivers can never observe a sequence gap
  (duplicates are skipped).  Report-once then holds per *successful*
  delivery, matching the paper's refined ``K1`` assumption.

Loss flags (Sec 3.3) ride along with event records and are disseminated
once per link direction.

**Indexed hot paths.**  Naively, every send scans the whole buffer
(``O(|H_v|)`` per message) and every watermark advance rebuilds the buffer
dict (``O(|H_v| * deg)`` per settle/ingest).  This module instead keeps

* a per-neighbor *pending index* - for each neighbor ``u``, the buffered
  events ``u`` still lacks relative to *confirmed* watermarks, in learn
  order - so :meth:`prepare_payload` is ``O(|payload|)``; and
* a per-event *lacking refcount* - how many neighbors still lack the
  event - so garbage collection is incremental: an event leaves ``H_v``
  the moment its refcount hits zero, with no full-buffer rebuild.

Invariant: for every buffered event ``e`` and neighbor ``u``,
``e in pending[u]`` iff ``C_vu[loc(e)] < seq(e)``, and
``lacking[e] = |{u : e in pending[u]}| > 0``.  Watermarks only advance, so
an event leaves each pending index at most once and is never re-added.
Learn order is preserved for free: Python dicts iterate in insertion
order, events are learned exactly once, and eviction never reorders the
survivors.  Observable behaviour (payload contents and order, Lemma 3.2
report-once, Lemma 3.3 buffer bound, unreliable-mode token semantics) is
bit-identical to the pre-indexing module, which is preserved as
:class:`repro.testing.reference.ReferenceHistoryModule` and enforced by
differential property tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .errors import ProtocolError
from .events import Event, EventId, ProcessorId

__all__ = ["HistoryPayload", "HistoryStats", "HistoryModule"]


@dataclass(frozen=True)
class HistoryPayload:
    """The synchronization data piggybacked on one application message.

    ``records`` is in a topological order of the happens-before relation
    (a subsequence of the sender's learn order), so the receiver may
    process it left to right.
    """

    records: Tuple[Event, ...]
    loss_flags: Tuple[EventId, ...] = ()

    def __len__(self) -> int:
        return len(self.records)

    @property
    def size(self) -> int:
        """Report size in records (the paper's message-size unit)."""
        return len(self.records) + len(self.loss_flags)

    # -- JSON codec -------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe form: event records via :meth:`Event.to_dict`, loss
        flags as ``[proc, seq]`` pairs.  Exact inverse of :meth:`from_dict`
        (the wire protocol and corpus/debug dumps both rely on the
        round trip being lossless)."""
        return {
            "records": [event.to_dict() for event in self.records],
            "loss_flags": [[eid.proc, eid.seq] for eid in self.loss_flags],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "HistoryPayload":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad input.

        This is the decode path for *untrusted* bytes (the wire protocol
        feeds received frames through here before any admission
        screening), so shapes are checked explicitly and errors carry the
        offending fragment.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"history payload must be a mapping, got {type(data).__name__}"
            )
        records_raw = data.get("records", [])
        if not isinstance(records_raw, (list, tuple)):
            raise ValueError(f"'records' must be a list, got {type(records_raw).__name__}")
        records = tuple(Event.from_dict(entry) for entry in records_raw)
        flags_raw = data.get("loss_flags", [])
        if not isinstance(flags_raw, (list, tuple)):
            raise ValueError(f"'loss_flags' must be a list, got {type(flags_raw).__name__}")
        flags = []
        for entry in flags_raw:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not entry[0]
                or not isinstance(entry[1], int)
                or isinstance(entry[1], bool)
                or entry[1] < 0
            ):
                raise ValueError(f"loss flag must be [proc, seq], got {entry!r}")
            flags.append(EventId(entry[0], entry[1]))
        return cls(records=records, loss_flags=tuple(flags))


@dataclass
class HistoryStats:
    """Counters backing Lemmas 3.2/3.3 and the message-size bound of Thm 3.6."""

    records_sent: int = 0
    records_received: int = 0
    duplicate_records_received: int = 0
    payloads_sent: int = 0
    payloads_received: int = 0
    max_buffer: int = 0
    max_payload: int = 0
    #: per-(event, neighbor) report counts by *this* module; kept only when
    #: report tracking is enabled (Lemma 3.2 experiment)
    reports: Optional[Dict[Tuple[EventId, ProcessorId], int]] = None


@dataclass
class _DeliveryToken:
    token_id: int
    neighbor: ProcessorId
    #: watermark advances implied by this payload: proc -> max seq shipped
    marks: Dict[ProcessorId, int]
    loss_flags: Tuple[EventId, ...]
    settled: bool = False


class HistoryModule:
    """Per-processor state of the Figure 2 protocol."""

    def __init__(
        self,
        proc: ProcessorId,
        neighbors: Iterable[ProcessorId],
        *,
        reliable: bool = True,
        track_reports: bool = False,
        gc_enabled: bool = True,
    ):
        self.proc = proc
        self.neighbors: Tuple[ProcessorId, ...] = tuple(sorted(set(neighbors)))
        if proc in self.neighbors:
            raise ProtocolError(f"processor {proc!r} cannot neighbor itself")
        #: H_v - buffered event records keyed by id, in learn order (events
        #: are inserted exactly once and eviction preserves dict order)
        self._buffer: Dict[EventId, Event] = {}
        #: C_vu[w] as sequence-number watermarks (-1 = knows nothing of w)
        self._watermark: Dict[ProcessorId, Dict[ProcessorId, int]] = {
            u: {} for u in self.neighbors
        }
        #: per-neighbor pending index: buffered events the neighbor still
        #: lacks (by confirmed watermark), in learn order - the payload of
        #: the next send, maintained incrementally
        self._pending: Dict[ProcessorId, Dict[EventId, Event]] = {
            u: {} for u in self.neighbors
        }
        #: per-event refcount: how many neighbors still lack it; an event
        #: is buffered iff its count is positive (incremental GC)
        self._lacking: Dict[EventId, int] = {}
        #: K_v[w] - this module's own knowledge frontier per processor
        self._known: Dict[ProcessorId, int] = {}
        #: Sec 3.3 loss flags known / already confirmed-shipped per neighbor
        self._loss_known: Set[EventId] = set()
        self._loss_sent: Dict[ProcessorId, Set[EventId]] = {
            u: set() for u in self.neighbors
        }
        #: per-neighbor pending loss flags (= _loss_known - _loss_sent[u]),
        #: maintained incrementally for O(|payload|) sends
        self._loss_pending: Dict[ProcessorId, Set[EventId]] = {
            u: set() for u in self.neighbors
        }
        self.reliable = reliable
        self._gc_enabled = gc_enabled
        self._tokens: Dict[int, _DeliveryToken] = {}
        self._token_ids = itertools.count()
        self.stats = HistoryStats(reports={} if track_reports else None)

    # -- inspection ---------------------------------------------------------------

    def known_seq(self, proc: ProcessorId) -> int:
        """Highest event sequence number of ``proc`` this module knows."""
        return self._known.get(proc, -1)

    def knows(self, eid: EventId) -> bool:
        return eid.seq <= self.known_seq(eid.proc)

    def watermark(self, neighbor: ProcessorId, proc: ProcessorId) -> int:
        """``C_vu[w]`` as a sequence number (-1 when unknown)."""
        try:
            return self._watermark[neighbor].get(proc, -1)
        except KeyError:
            raise ProtocolError(f"{neighbor!r} is not a neighbor of {self.proc!r}") from None

    def buffer_size(self) -> int:
        """``|H_v|`` - the Lemma 3.3 quantity."""
        return len(self._buffer)

    def buffered_events(self) -> List[Event]:
        """Buffered events in learn order (dict insertion order; no sort)."""
        return list(self._buffer.values())

    @property
    def loss_flags(self) -> Set[EventId]:
        return set(self._loss_known)

    def pending_tokens(self) -> int:
        return len(self._tokens)

    def knowledge_frontier(self) -> Dict[ProcessorId, int]:
        """``K_v`` - this module's knowledge frontier, ``proc -> max seq``."""
        return dict(self._known)

    # -- dynamic membership -----------------------------------------------------------

    def adopt_frontier(
        self,
        known: Dict[ProcessorId, int],
        loss_flags: Iterable[EventId] = (),
        *,
        sponsor: Optional[ProcessorId] = None,
    ) -> None:
        """Late-joiner bootstrap: adopt a sponsor's knowledge frontier.

        The joiner claims to know everything up to ``known`` without holding
        the records themselves - sound because those events' constraints
        arrive pre-folded in the AGDP distance snapshot, and the frontier
        stops neighbors' payload dedup from re-teaching them (a record at or
        below the frontier is skipped as a duplicate on ingest).

        If ``sponsor`` is one of our neighbors, its watermark row is seeded
        with the same frontier (the sponsor knows everything it handed us),
        so the first payload back to it is small; adopted loss flags are
        likewise marked already-shipped toward the sponsor but pending to
        every other neighbor.  Only a fresh module may adopt.
        """
        if self._known or self._buffer or self._loss_known:
            raise ProtocolError(
                f"{self.proc!r} cannot adopt a frontier over existing history"
            )
        self._known.update(known)
        flags = set(loss_flags)
        self._loss_known.update(flags)
        for u, pending in self._loss_pending.items():
            if u != sponsor:
                pending.update(flags)
        if sponsor is not None and sponsor in self._watermark:
            marks = self._watermark[sponsor]
            for proc, seq in known.items():
                if seq > marks.get(proc, -1):
                    marks[proc] = seq
            self._loss_sent[sponsor].update(flags)

    def absorb_peer_frontier(
        self, neighbor: ProcessorId, marks: Dict[ProcessorId, int]
    ) -> None:
        """Watermark handoff: learn that ``neighbor`` already knows ``marks``.

        Called on a joiner's *peers* when the joiner bootstraps from a
        sponsor snapshot: the peer may advance ``C_vu`` for the new neighbor
        to the snapshot frontier without shipping anything (the knowledge
        arrived out of band).  Watermarks only advance, so this composes
        with any interleaving of regular payload traffic.
        """
        if neighbor not in self._watermark:
            raise ProtocolError(f"{neighbor!r} is not a neighbor of {self.proc!r}")
        row = self._watermark[neighbor]
        advanced = False
        for proc, seq in marks.items():
            if seq > row.get(proc, -1):
                row[proc] = seq
                advanced = True
        if advanced:
            self._prune_pending(neighbor)

    def adopt_events(self, events: Iterable[Event]) -> None:
        """Re-learn ``events`` in order (self-stabilization rebuild path).

        Unlike :meth:`record_local` this accepts events of any processor;
        the caller is responsible for supplying a valid learn order (the
        estimator's retained event log is one by construction).  Events
        already covered by the knowledge frontier (records an adopted
        frontier covers seq-wise) are re-buffered for forwarding instead
        of re-learned.
        """
        for event in events:
            if self.knows(event.eid):
                self._rebuffer(event)
            else:
                self._learn(event)

    # -- local events ---------------------------------------------------------------

    def record_local(self, event: Event) -> None:
        """Record an event occurring at this processor (in sequence order)."""
        if event.proc != self.proc:
            raise ProtocolError(
                f"module of {self.proc!r} given local event of {event.proc!r}"
            )
        self._learn(event)

    def record_loss(self, send_eid: EventId) -> bool:
        """Record a locally detected message loss; returns True if new."""
        if send_eid in self._loss_known:
            return False
        self._loss_known.add(send_eid)
        # a fresh flag is never in any _loss_sent set (those only hold
        # flags already in _loss_known), so it is pending everywhere
        for pending in self._loss_pending.values():
            pending.add(send_eid)
        return True

    def _learn(self, event: Event) -> None:
        eid = event.eid
        expected = self.known_seq(eid.proc) + 1
        if eid.seq != expected:
            raise ProtocolError(
                f"{self.proc!r} learned {eid} out of order (expected seq {expected})"
            )
        self._known[eid.proc] = eid.seq
        # Buffer the event iff some neighbor still lacks it, and index it
        # under exactly those neighbors' pending maps.
        lacking = 0
        seq = eid.seq
        proc = eid.proc
        for u in self.neighbors:
            if seq > self._watermark[u].get(proc, -1):
                self._pending[u][eid] = event
                lacking += 1
        if lacking:
            self._lacking[eid] = lacking
            self._buffer[eid] = event
            self.stats.max_buffer = max(self.stats.max_buffer, len(self._buffer))

    def _rebuffer(self, event: Event) -> None:
        """Re-index an already-known record for neighbors that still lack it.

        Buffer order stays a valid learn order: any record causally
        preceding an already-buffered event arrived no later than it on the
        same channel, so a record re-buffered now cannot precede anything
        buffered earlier.
        """
        eid = event.eid
        if eid in self._lacking:
            return  # already buffered and indexed
        lacking = 0
        for u in self.neighbors:
            if eid.seq > self._watermark[u].get(eid.proc, -1):
                self._pending[u][eid] = event
                lacking += 1
        if lacking:
            self._lacking[eid] = lacking
            self._buffer[eid] = event
            self.stats.max_buffer = max(self.stats.max_buffer, len(self._buffer))

    # -- protocol: sending ------------------------------------------------------------

    def prepare_payload(self, neighbor: ProcessorId) -> Tuple[HistoryPayload, int]:
        """Figure 2 send handler: fill the message; returns (payload, token).

        Must be called when a message to ``neighbor`` is sent and only
        *after* the send event itself has been recorded with
        :meth:`record_local` (the local view from the send point includes
        the send point).  In reliable mode the token is already settled;
        in unreliable mode the caller's delivery-detection mechanism must
        eventually call :meth:`confirm_delivery` or :meth:`abort_delivery`.
        """
        if neighbor not in self._watermark:
            raise ProtocolError(f"{neighbor!r} is not a neighbor of {self.proc!r}")
        # the pending index holds exactly the events the neighbor lacks by
        # confirmed watermark, already in learn order: O(|payload|)
        fresh = list(self._pending[neighbor].values())
        advance: Dict[ProcessorId, int] = {}
        for event in fresh:
            if event.seq > advance.get(event.proc, -1):
                advance[event.proc] = event.seq
            if self.stats.reports is not None:
                key = (event.eid, neighbor)
                self.stats.reports[key] = self.stats.reports.get(key, 0) + 1
        flags = tuple(sorted(self._loss_pending[neighbor]))
        payload = HistoryPayload(records=tuple(fresh), loss_flags=flags)
        token = _DeliveryToken(
            token_id=next(self._token_ids),
            neighbor=neighbor,
            marks=advance,
            loss_flags=flags,
        )
        self.stats.payloads_sent += 1
        self.stats.records_sent += len(fresh)
        self.stats.max_payload = max(self.stats.max_payload, payload.size)
        if self.reliable:
            self._settle(token, confirmed=True)
        else:
            self._tokens[token.token_id] = token
        return payload, token.token_id

    def prepare_payloads(
        self, neighbors: Iterable[ProcessorId]
    ) -> Dict[ProcessorId, Tuple[HistoryPayload, int]]:
        """Prepare one payload per neighbor in a single pass (broadcast path).

        Equivalent to calling :meth:`prepare_payload` for each neighbor in
        order, with one optimisation: when several neighbors lack exactly
        the same records and flags - the common shape right after a burst
        of local events, before any watermark has diverged - the
        :class:`HistoryPayload` object is built once and *shared* between
        the results.  Callers that serialize payloads can then encode per
        distinct object instead of per destination.  Tokens stay
        per-neighbor (watermark advances are independent).
        """
        results: Dict[ProcessorId, Tuple[HistoryPayload, int]] = {}
        shared: Dict[Tuple[Tuple[int, ...], Tuple[EventId, ...]], HistoryPayload] = {}
        for neighbor in neighbors:
            payload, token = self.prepare_payload(neighbor)
            key = (tuple(map(id, payload.records)), payload.loss_flags)
            cached = shared.get(key)
            if cached is None:
                shared[key] = payload
            else:
                payload = cached
            results[neighbor] = (payload, token)
        return results

    def confirm_delivery(self, token_id: int) -> None:
        """Acknowledge that the payload under ``token_id`` reached its neighbor."""
        self._settle(self._take_token(token_id), confirmed=True)

    def abort_delivery(self, token_id: int) -> None:
        """Record that the payload under ``token_id`` was lost in transit.

        Nothing to undo: watermarks only advance on confirmation, so the
        shipped events remain buffered and will be re-reported.
        """
        self._settle(self._take_token(token_id), confirmed=False)

    def _take_token(self, token_id: int) -> _DeliveryToken:
        token = self._tokens.pop(token_id, None)
        if token is None:
            raise ProtocolError(
                f"unknown or already settled delivery token {token_id} at {self.proc!r}"
            )
        return token

    def _settle(self, token: _DeliveryToken, *, confirmed: bool) -> None:
        if token.settled:
            raise ProtocolError(f"delivery token {token.token_id} settled twice")
        token.settled = True
        if not confirmed:
            return
        marks = self._watermark[token.neighbor]
        advanced = False
        for proc, seq in token.marks.items():
            if seq > marks.get(proc, -1):
                marks[proc] = seq
                advanced = True
        self._loss_sent[token.neighbor].update(token.loss_flags)
        self._loss_pending[token.neighbor].difference_update(token.loss_flags)
        if advanced:
            self._prune_pending(token.neighbor)

    # -- protocol: receiving ------------------------------------------------------------

    def ingest_payload(
        self, neighbor: ProcessorId, payload: HistoryPayload
    ) -> Tuple[List[Event], List[EventId]]:
        """Figure 2 receive handler.

        Returns ``(new_events, new_loss_flags)``: the events this module had
        not known, in topological order, plus newly learned loss flags.  The
        caller records the receive event itself separately (it is a local
        event, not part of the payload).
        """
        if neighbor not in self._watermark:
            raise ProtocolError(f"{neighbor!r} is not a neighbor of {self.proc!r}")
        marks = self._watermark[neighbor]
        new_events: List[Event] = []
        self.stats.payloads_received += 1
        advanced = False
        for event in payload.records:
            self.stats.records_received += 1
            w = event.proc
            if event.seq > marks.get(w, -1):
                marks[w] = event.seq
                advanced = True
            if self.knows(event.eid):
                self.stats.duplicate_records_received += 1
                # A record we know *of* but do not hold: after a frontier
                # adoption the seqs are covered yet the records are not -
                # hold it for any neighbor whose watermark does not cover
                # it, or an information-poor neighbor could never learn it
                # through us.  For true duplicates every lacking neighbor
                # is already indexed (or covered), so this is a no-op.
                self._rebuffer(event)
                continue
            self._learn(event)
            new_events.append(event)
        new_flags = [f for f in payload.loss_flags if f not in self._loss_known]
        self._loss_known.update(new_flags)
        for other, pending in self._loss_pending.items():
            if other != neighbor:
                pending.update(new_flags)
        # the sender evidently knows these flags; never ship them back
        self._loss_sent[neighbor].update(payload.loss_flags)
        self._loss_pending[neighbor].difference_update(payload.loss_flags)
        if advanced:
            self._prune_pending(neighbor)
        return new_events, new_flags

    # -- garbage collection ----------------------------------------------------------

    def _prune_pending(self, neighbor: ProcessorId) -> None:
        """Incremental corrected-Figure 2 GC after a watermark advance.

        Drops from ``neighbor``'s pending index every event its watermarks
        now cover, decrementing the lacking refcounts; an event whose count
        reaches zero is known by every neighbor and leaves ``H_v``
        (unless GC is disabled for the A2 ablation).  O(|pending index|)
        per advance instead of a full-buffer rebuild.
        """
        pending = self._pending[neighbor]
        marks = self._watermark[neighbor]
        covered = [
            eid for eid in pending if eid.seq <= marks.get(eid.proc, -1)
        ]
        lacking = self._lacking
        for eid in covered:
            del pending[eid]
            count = lacking[eid] - 1
            if count:
                lacking[eid] = count
            else:
                del lacking[eid]
                if self._gc_enabled:
                    del self._buffer[eid]
