"""Core theory and algorithms of the reproduction.

The public surface re-exports the classes a downstream user needs:

* data model - :class:`Event`, :class:`EventId`, :class:`View`;
* specifications - :class:`DriftSpec`, :class:`TransitSpec`,
  :class:`SystemSpec`, :class:`ClockBound`;
* the synchronization-graph theory (Definition 2.1 / Theorem 2.1) -
  :func:`build_sync_graph`, :func:`relative_bounds`,
  :func:`external_bounds`, :func:`extremal_execution`;
* the algorithms - :class:`FullInformationCSA` (Sec 2.3 reference),
  :class:`EfficientCSA` (the paper's main result, Sec 3), and its parts
  :class:`HistoryModule`, :class:`LiveTracker`, :class:`AGDP`.
"""

from .agdp import AGDP, AGDPStats
from .agdp_numpy import NumpyAGDP
from .bootstrap import BootstrapSnapshot
from .csa import CSAStats, EfficientCSA, QuarantineDiagnostic, RecoveryEvent
from .csa_base import (
    DEFAULT_BLAME_WEIGHTS,
    Estimator,
    EvictionEvent,
    SuspicionPolicy,
    SuspicionTracker,
)
from .csa_full import FullInformationCSA
from .distances import (
    WeightedDigraph,
    bellman_ford_from,
    bellman_ford_to,
    find_negative_cycle,
    floyd_warshall,
    prune_negative_cycles,
)
from .errors import (
    EstimateUnavailableError,
    InconsistentSpecificationError,
    ProtocolError,
    ReproError,
    SimulationError,
    SpecificationError,
    UnknownEventError,
    ViewConflictError,
    ViewError,
)
from .explain import Witness, WitnessStep, explain_external_bounds
from .general import GeneralSynchronizer
from .events import Event, EventId, EventKind, LinkId, ProcessorId, link_id
from .history import HistoryModule, HistoryPayload, HistoryStats
from .intervals import ClockBound
from .live import LiveTracker
from .specs import TOP, DriftSpec, SystemSpec, TransitSpec
from .syncgraph import (
    ExplicitBoundsMapping,
    build_sync_graph,
    drift_edge_weights,
    incident_sync_edges,
    sync_graph_from_bounds,
    transit_edge_weights,
)
from .validate import (
    FAILURE_KINDS,
    ValidationFailure,
    ValidationReport,
    validate_payload,
)
from .theorem import (
    check_execution,
    external_bounds,
    extremal_execution,
    relative_bounds,
    source_point,
)
from .view import View

__all__ = [
    "AGDP",
    "AGDPStats",
    "BootstrapSnapshot",
    "CSAStats",
    "ClockBound",
    "DEFAULT_BLAME_WEIGHTS",
    "DriftSpec",
    "EfficientCSA",
    "Estimator",
    "EstimateUnavailableError",
    "Event",
    "EventId",
    "EventKind",
    "EvictionEvent",
    "ExplicitBoundsMapping",
    "FAILURE_KINDS",
    "FullInformationCSA",
    "GeneralSynchronizer",
    "HistoryModule",
    "HistoryPayload",
    "HistoryStats",
    "InconsistentSpecificationError",
    "LinkId",
    "LiveTracker",
    "NumpyAGDP",
    "ProcessorId",
    "ProtocolError",
    "QuarantineDiagnostic",
    "RecoveryEvent",
    "ReproError",
    "SimulationError",
    "SpecificationError",
    "SuspicionPolicy",
    "SuspicionTracker",
    "SystemSpec",
    "TOP",
    "TransitSpec",
    "UnknownEventError",
    "ValidationFailure",
    "ValidationReport",
    "View",
    "ViewConflictError",
    "ViewError",
    "Witness",
    "WitnessStep",
    "WeightedDigraph",
    "bellman_ford_from",
    "bellman_ford_to",
    "build_sync_graph",
    "check_execution",
    "drift_edge_weights",
    "explain_external_bounds",
    "external_bounds",
    "extremal_execution",
    "find_negative_cycle",
    "floyd_warshall",
    "prune_negative_cycles",
    "incident_sync_edges",
    "link_id",
    "relative_bounds",
    "source_point",
    "sync_graph_from_bounds",
    "transit_edge_weights",
    "validate_payload",
]
