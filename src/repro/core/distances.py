"""Shortest-path machinery for synchronization graphs.

Synchronization-graph edge weights may be negative (message lower bounds
contribute ``virt_del - lower``), so we need Bellman-Ford-style algorithms
with negative-cycle detection.  A negative cycle certifies that the view's
timestamps contradict the real-time specification
(:class:`~repro.core.errors.InconsistentSpecificationError`).

The graph type here is deliberately minimal and self-contained: node keys
are arbitrary hashables, parallel edges are collapsed to their minimum
weight (only shortest paths matter), and reverse adjacency is maintained so
distances *to* a target are as cheap as distances *from* a source.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from .errors import InconsistentSpecificationError

__all__ = [
    "INF",
    "WeightedDigraph",
    "bellman_ford_from",
    "bellman_ford_to",
    "find_negative_cycle",
    "floyd_warshall",
    "prune_negative_cycles",
]

INF = math.inf

NodeKey = Hashable


class WeightedDigraph:
    """A directed graph with real edge weights and min-collapsed parallel edges."""

    def __init__(self):
        self._succ: Dict[NodeKey, Dict[NodeKey, float]] = {}
        self._pred: Dict[NodeKey, Dict[NodeKey, float]] = {}

    # -- construction ----------------------------------------------------------

    def add_node(self, node: NodeKey) -> None:
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, u: NodeKey, v: NodeKey, weight: float) -> None:
        """Insert edge ``u -> v``; keeps the minimum weight over duplicates.

        Infinite weights encode "no information" and are dropped.
        """
        if math.isinf(weight) and weight > 0:
            self.add_node(u)
            self.add_node(v)
            return
        if math.isnan(weight):
            raise ValueError(f"edge ({u!r}, {v!r}) has NaN weight")
        self.add_node(u)
        self.add_node(v)
        current = self._succ[u].get(v, INF)
        if weight < current:
            self._succ[u][v] = weight
            self._pred[v][u] = weight

    def remove_edge(self, u: NodeKey, v: NodeKey) -> None:
        """Remove edge ``u -> v``; a no-op when the edge is absent."""
        if v in self._succ.get(u, {}):
            del self._succ[u][v]
            del self._pred[v][u]

    def remove_node(self, node: NodeKey) -> None:
        for v in list(self._succ.get(node, ())):
            del self._pred[v][node]
        for u in list(self._pred.get(node, ())):
            del self._succ[u][node]
        self._succ.pop(node, None)
        self._pred.pop(node, None)

    # -- queries -----------------------------------------------------------------

    def __contains__(self, node: NodeKey) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def nodes(self) -> Iterator[NodeKey]:
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[NodeKey, NodeKey, float]]:
        for u, nbrs in self._succ.items():
            for v, w in nbrs.items():
                yield (u, v, w)

    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._succ.values())

    def weight(self, u: NodeKey, v: NodeKey) -> float:
        """Weight of edge ``u -> v``, or ``inf`` if absent."""
        return self._succ.get(u, {}).get(v, INF)

    def successors(self, u: NodeKey) -> Dict[NodeKey, float]:
        return dict(self._succ.get(u, {}))

    def predecessors(self, v: NodeKey) -> Dict[NodeKey, float]:
        return dict(self._pred.get(v, {}))

    def reversed(self) -> "WeightedDigraph":
        out = WeightedDigraph()
        out._succ = {u: dict(nbrs) for u, nbrs in self._pred.items()}
        out._pred = {u: dict(nbrs) for u, nbrs in self._succ.items()}
        return out

    def copy(self) -> "WeightedDigraph":
        out = WeightedDigraph()
        out._succ = {u: dict(nbrs) for u, nbrs in self._succ.items()}
        out._pred = {u: dict(nbrs) for u, nbrs in self._pred.items()}
        return out

    def total_absolute_weight(self) -> float:
        """Sum of |weight| over all edges; used to build 'safely huge' constants."""
        return sum(abs(w) for _u, _v, w in self.edges())

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"WeightedDigraph({len(self)} nodes, {self.edge_count()} edges)"


def _extract_cycle(
    adjacency: Dict[NodeKey, Dict[NodeKey, float]],
    pred: Dict[NodeKey, NodeKey],
    start: NodeKey,
) -> List[Tuple[NodeKey, NodeKey, float]]:
    """Walk predecessor pointers back from ``start`` until a node repeats,
    then read off the cycle as ``(u, v, weight)`` edges."""
    # over-relaxed nodes may hang off the cycle; walk far enough to enter it
    node = start
    for _ in range(len(adjacency) + 1):
        node = pred[node]
    anchor = node
    nodes = [anchor]
    node = pred[anchor]
    while node != anchor:
        nodes.append(node)
        node = pred[node]
    nodes.reverse()  # pred-order walk yields the cycle backwards
    cycle = []
    for i, u in enumerate(nodes):
        v = nodes[(i + 1) % len(nodes)]
        cycle.append((u, v, adjacency[u].get(v, INF)))
    return cycle


def _bellman_ford(
    adjacency: Dict[NodeKey, Dict[NodeKey, float]],
    source: NodeKey,
) -> Dict[NodeKey, float]:
    """SPFA-style Bellman-Ford over an adjacency dict, with cycle detection."""
    if source not in adjacency:
        raise KeyError(f"source {source!r} not in graph")
    dist: Dict[NodeKey, float] = {source: 0.0}
    in_queue = {source}
    queue: List[NodeKey] = [source]
    #: number of relaxations per node; > |V| means a negative cycle
    passes: Dict[NodeKey, int] = {}
    #: relaxation parent pointers, for negative-cycle extraction
    pred: Dict[NodeKey, NodeKey] = {}
    limit = len(adjacency) + 1
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        in_queue.discard(u)
        if head > 1024 and head * 2 > len(queue):
            # compact the processed prefix to bound memory
            queue = queue[head:]
            head = 0
        du = dist[u]
        for v, w in adjacency[u].items():
            candidate = du + w
            if candidate < dist.get(v, INF) - 1e-18:
                dist[v] = candidate
                pred[v] = u
                passes[v] = passes.get(v, 0) + 1
                if passes[v] > limit:
                    raise InconsistentSpecificationError(
                        "negative cycle reachable from "
                        f"{source!r}: the view violates its real-time specification",
                        cycle=_extract_cycle(adjacency, pred, v),
                    )
                if v not in in_queue:
                    in_queue.add(v)
                    queue.append(v)
    return dist


def bellman_ford_from(graph: WeightedDigraph, source: NodeKey) -> Dict[NodeKey, float]:
    """Distances from ``source`` to every reachable node.

    Raises :class:`InconsistentSpecificationError` on a reachable negative
    cycle.  Unreachable nodes are absent from the result (conceptually at
    ``+inf``).
    """
    return _bellman_ford(graph._succ, source)


def bellman_ford_to(graph: WeightedDigraph, target: NodeKey) -> Dict[NodeKey, float]:
    """Distances from every node to ``target`` (Bellman-Ford on the reverse)."""
    return _bellman_ford(graph._pred, target)


def find_negative_cycle(
    graph: WeightedDigraph,
) -> Optional[List[Tuple[NodeKey, NodeKey, float]]]:
    """A negative cycle of ``graph`` as ``(u, v, weight)`` edges, or ``None``.

    Runs Bellman-Ford from a virtual super-source connected to every node
    with weight 0, so cycles anywhere in the graph are found, not just ones
    reachable from a particular node.
    """
    adjacency = graph._succ
    if not adjacency:
        return None
    dist: Dict[NodeKey, float] = {node: 0.0 for node in adjacency}
    pred: Dict[NodeKey, NodeKey] = {}
    passes: Dict[NodeKey, int] = {}
    in_queue = set(adjacency)
    queue: List[NodeKey] = list(adjacency)
    limit = len(adjacency) + 1
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        in_queue.discard(u)
        if head > 1024 and head * 2 > len(queue):
            queue = queue[head:]
            head = 0
        du = dist[u]
        for v, w in adjacency[u].items():
            candidate = du + w
            if candidate < dist[v] - 1e-18:
                dist[v] = candidate
                pred[v] = u
                passes[v] = passes.get(v, 0) + 1
                if passes[v] > limit:
                    return _extract_cycle(adjacency, pred, v)
                if v not in in_queue:
                    in_queue.add(v)
                    queue.append(v)
    return None


def prune_negative_cycles(
    graph: WeightedDigraph,
) -> List[Tuple[NodeKey, NodeKey, float]]:
    """Remove edges in place until ``graph`` has no negative cycle.

    Per cycle found, the most negative edge is removed - in a
    synchronization graph that is the constraint most at odds with the
    rest of the evidence (e.g. the upper-bound edge of an out-of-spec late
    message).  Dropping constraints is always *sound*: distances can only
    grow, so derived clock bounds only widen.  Returns the removed edges,
    in removal order - the degraded-mode quarantine record.
    """
    removed: List[Tuple[NodeKey, NodeKey, float]] = []
    while True:
        cycle = find_negative_cycle(graph)
        if cycle is None:
            return removed
        u, v, w = min(cycle, key=lambda edge: edge[2])
        graph.remove_edge(u, v)
        removed.append((u, v, w))


def floyd_warshall(graph: WeightedDigraph) -> Dict[NodeKey, Dict[NodeKey, float]]:
    """All-pairs distances; oracle-grade, O(n^3).

    Raises :class:`InconsistentSpecificationError` if any negative cycle
    exists.  The result has an entry for every ordered pair, with ``inf``
    for unreachable pairs.
    """
    keys = list(graph.nodes)
    dist: Dict[NodeKey, Dict[NodeKey, float]] = {
        u: {v: INF for v in keys} for u in keys
    }
    for u in keys:
        dist[u][u] = 0.0
    for u, v, w in graph.edges():
        if w < dist[u][v]:
            dist[u][v] = w
    for k in keys:
        dk = dist[k]
        for i in keys:
            dik = dist[i][k]
            if math.isinf(dik):
                continue
            di = dist[i]
            for j in keys:
                candidate = dik + dk[j]
                if candidate < di[j]:
                    di[j] = candidate
    for u in keys:
        if dist[u][u] < -1e-9:
            raise InconsistentSpecificationError(
                f"negative cycle through {u!r}: the view violates its specification"
            )
    return dist
