"""The Clock Synchronization Theorem (Theorem 2.1) and its consequences.

Theorem 2.1 states that for any view ``beta`` with bounds mapping ``B`` and
any two points ``p, q``:

    ``RT(p) - RT(q) in [virt_del(p,q) - d(q,p), virt_del(p,q) + d(p,q)]``

where ``d`` is the distance function of the synchronization graph - and
that both endpoints are *attained* by executions indistinguishable from the
real one.  This module provides:

* :func:`relative_bounds` - the optimal interval for ``RT(p) - RT(q)``;
* :func:`external_bounds` - the optimal external-synchronization estimate
  at a point (distance to/from any source point);
* :func:`extremal_execution` - an explicit real-time assignment realising
  either endpoint, witnessing tightness;
* :func:`check_execution` - a validator that a real-time assignment
  satisfies every drift/transit constraint of a spec (used to verify the
  extremal executions really are legal, and that simulated traces satisfy
  their own advertised specifications).

The extremal construction uses shortest-path potentials.  Writing
``RT(x) = LT(x) + f(x)``, the constraint ``RT(x) - RT(y) <= B(x, y)``
becomes ``f(x) - f(y) <= w(x, y)`` for each synchronization-graph edge
``(x, y)``.  For a root ``r``, the potential ``f(x) = d(x, r)`` (distance
*to* ``r``) satisfies every such constraint wherever finite, and gives
``f(p) - f(r) = d(p, r)`` - the upper endpoint for the pair ``(p, r)``.
Nodes that cannot reach ``r`` are handled by augmenting the graph with a
virtual sink reachable from everywhere via a huge-weight edge that cannot
create new shortest paths among the original nodes.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from .distances import (
    INF,
    WeightedDigraph,
    bellman_ford_from,
    bellman_ford_to,
)
from .errors import EstimateUnavailableError, UnknownEventError
from .events import EventId, ProcessorId
from .intervals import ClockBound
from .specs import SystemSpec
from .syncgraph import build_sync_graph
from .view import View

__all__ = [
    "relative_bounds",
    "external_bounds",
    "source_point",
    "extremal_execution",
    "check_execution",
]


def relative_bounds(
    view: View,
    spec: SystemSpec,
    p: EventId,
    q: EventId,
    graph: Optional[WeightedDigraph] = None,
) -> ClockBound:
    """Theorem 2.1: the optimal interval for ``RT(p) - RT(q)``.

    ``graph`` may be supplied to reuse a prebuilt synchronization graph.
    """
    if graph is None:
        graph = build_sync_graph(view, spec)
    virt_del = view.event(p).lt - view.event(q).lt
    from_p = bellman_ford_from(graph, p)
    to_p = bellman_ford_to(graph, p)
    d_p_q = from_p.get(q, INF)
    d_q_p = to_p.get(q, INF)
    return ClockBound(virt_del - d_q_p, virt_del + d_p_q)


def source_point(view: View, spec: SystemSpec) -> Optional[EventId]:
    """Any point of the source processor in the view (the latest), or ``None``.

    All source points are interchangeable for external synchronization:
    consecutive source events are joined by zero-weight edges in both
    directions (the source clock is drift-free), so the distance between
    any two source points is 0.
    """
    last = view.last_event(spec.source)
    return None if last is None else last.eid


def external_bounds(
    view: View,
    spec: SystemSpec,
    p: EventId,
    graph: Optional[WeightedDigraph] = None,
) -> ClockBound:
    """The optimal external-synchronization estimate of ``RT(p)`` at point ``p``.

    Implements the Sec 2.3 general optimal algorithm:
    ``ext_L = LT(p) - d(sp, p)`` and ``ext_U = LT(p) + d(p, sp)`` for any
    source point ``sp`` (using ``LT(sp) = RT(sp)``).  Returns the unbounded
    interval when no source point is in the view yet.
    """
    sp = source_point(view, spec)
    if sp is None:
        return ClockBound.unbounded()
    if graph is None:
        graph = build_sync_graph(view, spec)
    lt_p = view.event(p).lt
    d_p_sp = bellman_ford_from(graph, p).get(sp, INF)
    d_sp_p = bellman_ford_from(graph, sp).get(p, INF)
    lower = -INF if math.isinf(d_sp_p) else lt_p - d_sp_p
    upper = INF if math.isinf(d_p_sp) else lt_p + d_p_sp
    return ClockBound(lower, upper)


def extremal_execution(
    view: View,
    spec: SystemSpec,
    p: EventId,
    q: EventId,
    endpoint: str = "upper",
    graph: Optional[WeightedDigraph] = None,
) -> Dict[EventId, float]:
    """A real-time assignment attaining an endpoint of Theorem 2.1's interval.

    For ``endpoint="upper"`` the returned execution has
    ``RT(p) - RT(q) = virt_del(p, q) + d(p, q)``; for ``"lower"``,
    ``RT(p) - RT(q) = virt_del(p, q) - d(q, p)``.  The assignment satisfies
    every constraint of the specification (checkable with
    :func:`check_execution`) and shares the view's local times, so it is
    indistinguishable from the original execution.

    If the view contains source points, real times are normalised so that
    ``RT(sp) = LT(sp)`` on the source, making the result a legal execution
    of the *external synchronization* system as well.

    Raises :class:`UnknownEventError` if ``p`` or ``q`` is missing and
    ``ValueError`` if the requested endpoint is infinite (unattainable).
    """
    if p not in view or q not in view:
        raise UnknownEventError(f"{p} or {q} not in view")
    if endpoint not in ("upper", "lower"):
        raise ValueError(f"endpoint must be 'upper' or 'lower', got {endpoint!r}")
    if graph is None:
        graph = build_sync_graph(view, spec)
    # For the lower endpoint of RT(p)-RT(q) we attain d(q, p) with roles
    # swapped: f(q) - f(p) = d(q, p), i.e. root at p.
    root = q if endpoint == "upper" else p
    apex = p if endpoint == "upper" else q
    d_apex_root = bellman_ford_from(graph, apex).get(root, INF)
    if math.isinf(d_apex_root):
        raise ValueError(
            f"the {endpoint} endpoint for ({p}, {q}) is infinite; "
            "no finite execution attains it"
        )
    # Augment with a virtual sink: a zero edge from the root and an edge of
    # huge weight M from every other node, so every node can reach the sink
    # while no shortest path between original nodes changes.
    sink = ("__virtual_sink__",)
    augmented = graph.copy()
    big = 2.0 * graph.total_absolute_weight() + 1.0
    augmented.add_edge(root, sink, 0.0)
    for node in list(graph.nodes):
        if node != root:
            augmented.add_edge(node, sink, big)
    potential = bellman_ford_to(augmented, sink)
    rt = {
        eid: view.event(eid).lt + potential[eid]
        for eid in view
    }
    # Normalise so the source clock reads real time, if a source point exists.
    sp = source_point(view, spec)
    if sp is not None:
        offset = rt[sp] - view.event(sp).lt
        rt = {eid: value - offset for eid, value in rt.items()}
    return rt


def check_execution(
    view: View,
    spec: SystemSpec,
    rt: Dict[EventId, float],
    *,
    tolerance: float = 1e-9,
    require_source_exact: bool = True,
) -> list:
    """Verify a real-time assignment against every constraint of the spec.

    Returns a list of human-readable violation strings (empty = valid).
    Checked constraints:

    * drift bounds between consecutive same-processor events,
    * transit bounds for every delivered message,
    * (optionally) ``RT = LT`` on the source processor, up to a global
      shift: external synchronization fixes only differences, so the
      check anchors on the first source event.
    """
    violations = []
    missing = [eid for eid in view if eid not in rt]
    if missing:
        return [f"missing real times for {len(missing)} events, e.g. {missing[0]}"]
    for proc in view.processors:
        events = view.events_of(proc)
        drift = spec.drift_of(proc)
        for earlier, later in zip(events, events[1:]):
            delta_lt = later.lt - earlier.lt
            delta_rt = rt[later.eid] - rt[earlier.eid]
            low, high = drift.elapsed_real_bounds(delta_lt)
            if delta_rt < low - tolerance or delta_rt > high + tolerance:
                violations.append(
                    f"drift violation at {proc}: events {earlier.eid}->{later.eid} "
                    f"elapsed RT {delta_rt:.6g} outside [{low:.6g}, {high:.6g}]"
                )
    for event in view.events():
        if not event.is_receive:
            continue
        send = view.event(event.send_eid)
        transit = spec.transit_of(send.proc, event.proc)
        delta_rt = rt[event.eid] - rt[send.eid]
        if delta_rt < transit.lower - tolerance:
            violations.append(
                f"transit violation {send.eid}->{event.eid}: {delta_rt:.6g} "
                f"< lower bound {transit.lower:.6g}"
            )
        if transit.is_bounded and delta_rt > transit.upper + tolerance:
            violations.append(
                f"transit violation {send.eid}->{event.eid}: {delta_rt:.6g} "
                f"> upper bound {transit.upper:.6g}"
            )
    if require_source_exact:
        source_events = view.events_of(spec.source)
        if source_events:
            anchor = source_events[0]
            shift = rt[anchor.eid] - anchor.lt
            for event in source_events:
                drift_err = abs((rt[event.eid] - event.lt) - shift)
                if drift_err > tolerance:
                    violations.append(
                        f"source clock not at real-time rate at {event.eid}: "
                        f"offset drifts by {drift_err:.6g}"
                    )
    return violations
