"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch one base class.  The most important subclass is
:class:`InconsistentSpecificationError`: by the Clock Synchronization Theorem
a view of a *real* execution always yields a synchronization graph without
negative cycles, so a negative cycle means the supplied real-time
specifications contradict the observed timestamps.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecificationError(ReproError):
    """A real-time specification (drift/transit bound) is malformed."""


class InconsistentSpecificationError(ReproError):
    """The timestamps in a view violate the real-time specifications.

    Detected as a negative cycle in the synchronization graph.  For views
    recorded from executions that really satisfy their specifications this
    can never happen (Theorem 2.1); seeing it means either the specification
    is wrong (e.g. the advertised drift bound is tighter than the hardware's
    actual drift) or the view was corrupted.

    When available, the offending evidence is attached: ``edge`` is the
    ``(x, y, weight)`` whose insertion would close a negative cycle, and
    ``cycle`` is a list of ``(u, v, weight)`` edges forming a negative
    cycle.  Either may be ``None`` when the detector cannot name it.
    Degraded-mode consumers (see :class:`~repro.core.csa.EfficientCSA`)
    use these to quarantine evidence instead of dying.
    """

    def __init__(self, message: str = "", *, edge=None, cycle=None):
        super().__init__(message)
        self.edge = edge
        self.cycle = cycle


class ViewError(ReproError):
    """A view operation was attempted that violates view integrity.

    Examples: adding an event whose per-processor predecessor is missing,
    adding a receive whose matching send is unknown, or re-adding an event
    with conflicting attributes.
    """


class UnknownEventError(ViewError):
    """An operation referenced an event that is not part of the view."""


class ViewConflictError(ViewError):
    """Two copies of the same event disagree on their attributes.

    Raised when a view is asked to hold both copies (re-add or merge).
    Under benign faults this indicates memory corruption; under
    adversarial input it is the signature of *equivocation* - the
    originating processor told different stories to different peers.
    The conflicting copies and the originating processor are attached so
    Byzantine-hardened consumers can attribute blame instead of merely
    failing (see :mod:`repro.core.validate`).
    """

    def __init__(self, message: str = "", *, ours=None, theirs=None):
        super().__init__(message)
        #: the copy already held by the view
        self.ours = ours
        #: the conflicting incoming copy
        self.theirs = theirs

    @property
    def origin(self):
        """The processor whose event history is self-contradictory."""
        return self.ours.proc if self.ours is not None else None


class ProtocolError(ReproError):
    """The history-propagation protocol received malformed input.

    Raised, e.g., when a message payload reports events out of causal order
    or skips a per-processor sequence number.
    """


class EstimateUnavailableError(ReproError):
    """No source information has reached this processor yet.

    Until a point of the source processor enters the local view, the
    optimal external synchronization estimate is the trivial interval
    ``(-inf, +inf)``; callers that prefer an exception over an unbounded
    interval receive this error.
    """


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""
