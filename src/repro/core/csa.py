"""The paper's main result: the efficient optimal CSA (Sec 3).

Per processor the algorithm composes three pieces:

1. the **history propagation protocol** (Figure 2,
   :class:`~repro.core.history.HistoryModule`), which guarantees that at
   every point the processor knows exactly its local view (Lemma 3.1);
2. a **live-point tracker** (Definition 3.1,
   :class:`~repro.core.live.LiveTracker`), which turns the stream of newly
   learned events into AGDP steps - one new node plus its incident
   synchronization-graph edges, followed by the kill-set of points that
   ceased to be live;
3. the **AGDP solver** (Figure 3, :class:`~repro.core.agdp.AGDP`), which
   maintains exact distances between all live points in `O(L^2)` space and
   `O(L^2)` time per inserted edge (Lemmas 3.4/3.5).

The estimate at a point ``p`` is then read off AGDP distances to/from the
latest known source point ``sp`` (always live - it is the last known point
of the source processor):

    ``ext_L = LT(p) - d(sp, p)``      ``ext_U = LT(p) + d(p, sp)``

which by Theorem 2.1 equals the full-information optimum.  Experiment E1
asserts the equality event-for-event against
:class:`~repro.core.csa_full.FullInformationCSA`.

Message loss (Sec 3.3) is supported end-to-end: a detection signal flags
the lost send, un-lives it, propagates the flag through history payloads,
and each processor garbage-collects the point from its AGDP.

**Degraded mode** (``degraded_mode=True``): by Theorem 2.1 a negative
cycle can only appear when the execution violates its own specification
(out-of-spec drift or delay) - the AGDP refuses the closing edge with
:class:`~repro.core.errors.InconsistentSpecificationError` *before*
mutating its matrix.  In degraded mode the estimator catches that per
edge, quarantines the constraint, records a structured
:class:`QuarantineDiagnostic`, and keeps answering queries from the
remaining (still mutually consistent) constraints.  Dropping constraints
is sound: distances only grow, so bounds only widen; it merely forfeits
optimality for the affected pairs.

**AGDP backends** (``agdp_backend``): ``"dict"`` (pure-Python, the
reference), ``"numpy"`` (compacted dense matrix, vectorised Ausiello
update - observably identical to the dict solver and the default
wherever numpy is importable; pass ``"dict"`` explicitly to force the
pure-Python solver), and
``"numpy-source-only"`` (maintains only the source representative's
distance row/column by incremental relaxation - O(affected edges) per
insertion; :meth:`estimate` and :meth:`estimate_of` work,
:meth:`relative_estimate` raises, degraded/hardened modes are rejected).
See docs/PERFORMANCE.md for the selection guide.

**Hardened mode** (``suspicion=SuspicionPolicy(...)``; implies degraded
mode): the Byzantine-input pipeline of docs/FAULTS.md.  Incoming history
payloads are screened by :mod:`repro.core.validate` before any state
changes; validation failures and quarantined edges feed a per-processor
:class:`~repro.core.csa_base.SuspicionTracker`; past the policy threshold
the accused processor is *evicted* - every constraint derived from its
claims leaves the synchronization graph.  The AGDP cannot un-insert
edges, so eviction rebuilds the live tracker and solver by replaying the
estimator's event log with the evicted processor's events excluded (the
log is why hardened mode keeps O(events) extra memory).  Replay-rebuild
is used instead of the view-level
:meth:`~repro.core.view.View.without_events` because that primitive also
excises the *causal future* of the dropped events - correct for views,
but here nearly every honest event sits causally after a long-connected
liar's early events; the graph layer can keep honest drift chains and
simply skip edges whose other endpoint is gone, which Theorem 2.1
licenses (dropping constraints only widens bounds).  After a blame-free
clean window the processor is rehabilitated: only events *past* the
frontier known at rehabilitation re-enter the graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .agdp import AGDP
from .bootstrap import BootstrapSnapshot
from .csa_base import Estimator, SuspicionPolicy, SuspicionTracker
from .errors import InconsistentSpecificationError, ProtocolError
from .events import Event, EventId, ProcessorId
from .history import HistoryModule, HistoryPayload
from .intervals import ClockBound
from .live import LiveTracker
from .specs import SystemSpec, TOP
from .validate import ValidationFailure, validate_payload

__all__ = ["EfficientCSA", "CSAStats", "QuarantineDiagnostic", "RecoveryEvent"]

_NUMPY_AVAILABLE: Optional[bool] = None


def _numpy_available() -> bool:
    """Whether the vectorised AGDP backend can be imported (cached)."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:
            import numpy  # noqa: F401

            _NUMPY_AVAILABLE = True
        except ImportError:  # pragma: no cover - numpy is a test dependency
            _NUMPY_AVAILABLE = False
    return _NUMPY_AVAILABLE


@dataclass(frozen=True)
class QuarantineDiagnostic:
    """Structured record of one quarantined synchronization constraint.

    Produced only in degraded mode, when inserting the edge would have
    closed a negative cycle (i.e. the observed timestamps contradict the
    advertised specification, Theorem 2.1).
    """

    #: the event whose AGDP step produced the offending edge
    event: EventId
    #: the rejected edge ``(x, y, weight)`` of the synchronization graph
    edge: Tuple[EventId, EventId, float]
    #: which constraint family the edge encodes: "drift" or "transit"
    kind: str
    #: the detector's message (names the closing pair and distance)
    reason: str


@dataclass(frozen=True)
class RecoveryEvent:
    """One self-stabilization episode: corruption detected, state rebuilt."""

    #: local time of the event hook whose entry audit caught the corruption
    at_lt: float
    #: which structural invariant failed (the detector's message)
    reason: str


@dataclass
class CSAStats:
    """Roll-up of the complexity counters of Theorem 3.6 / Corollary 4.1.1."""

    max_live_points: int
    max_agdp_nodes: int
    agdp_pair_updates: int
    agdp_edges_inserted: int
    max_history_buffer: int
    max_payload_records: int
    records_sent: int
    events_observed: int

    def space_proxy(self) -> int:
        """``O(L^2 + K1*D)`` proxy: peak matrix cells + peak history buffer."""
        return self.max_agdp_nodes * self.max_agdp_nodes + self.max_history_buffer


class _LogKnowledge:
    """Adapter exposing a hardened estimator's knowledge to the validator."""

    def __init__(self, csa: "EfficientCSA"):
        self._csa = csa

    def known_seq(self, proc: ProcessorId) -> int:
        return self._csa.history.known_seq(proc)

    def lookup(self, eid: EventId) -> Optional[Event]:
        return self._csa._log_index.get(eid)

    def rejected_seq(self, proc: ProcessorId) -> int:
        return self._csa._rejected_hwm.get(proc, -1)


class EfficientCSA(Estimator):
    """The optimal, efficient external synchronization algorithm of Sec 3."""

    name = "efficient"

    def __init__(
        self,
        proc: ProcessorId,
        spec: SystemSpec,
        *,
        reliable: bool = True,
        agdp_gc: bool = True,
        agdp_backend: Optional[str] = None,
        history_gc: bool = True,
        track_reports: bool = False,
        degraded_mode: bool = False,
        suspicion: Optional[SuspicionPolicy] = None,
        self_heal: bool = False,
        debug_checks: Optional[bool] = None,
    ):
        super().__init__(proc, spec)
        if agdp_backend is None:
            # the vectorised backend is observably identical to the dict
            # solver (bit-identical distances and counters, enforced by
            # tests/core/test_agdp_numpy.py) and far faster on the payload
            # hot path, so it is the default wherever numpy exists
            agdp_backend = "numpy" if _numpy_available() else "dict"
        if agdp_backend == "numpy-source-only" and (
            degraded_mode or suspicion is not None
        ):
            # quarantine needs insert_edge to refuse a bad constraint
            # *before* mutating; the source-only solver detects negative
            # cycles only during relaxation, after the adjacency changed
            raise ValueError(
                "the 'numpy-source-only' AGDP backend cannot run in degraded "
                "or hardened mode (no pre-mutation inconsistency detection); "
                "use 'dict' or 'numpy'"
            )
        if agdp_backend == "numpy-source-only" and self_heal:
            # the structural audit reads matrix diagonals and the recovery
            # path replays pairwise constraints; the anchored row/column
            # solver retains neither
            raise ValueError(
                "the 'numpy-source-only' AGDP backend cannot self-heal; "
                "use 'dict' or 'numpy'"
            )
        # expensive structural self-checks after every event hook and AGDP
        # mutation; None defers to the REPRO_DEBUG environment variable
        from ..testing.invariants import debug_checks_enabled

        self._debug_checks = debug_checks_enabled(debug_checks)
        self._history_gc = history_gc
        self._track_reports = track_reports
        self.history = HistoryModule(
            proc,
            spec.neighbors(proc),
            reliable=reliable,
            track_reports=track_reports,
            gc_enabled=history_gc,
        )
        self.live = LiveTracker()
        self._agdp_backend = agdp_backend
        self._agdp_gc = agdp_gc
        self.agdp = self._make_agdp()
        self.reliable = reliable
        #: quarantine instead of raising on InconsistentSpecificationError;
        #: hardened mode needs the per-edge path, so suspicion implies it
        self.degraded_mode = degraded_mode or suspicion is not None
        #: structured diagnostics of quarantined constraints (degraded mode)
        self.diagnostics: List[QuarantineDiagnostic] = []
        #: latest known event of the source processor (the AGDP query anchor)
        self._source_rep: Optional[EventId] = None
        #: pending history delivery tokens per local send (unreliable mode)
        self._pending_tokens: Dict[EventId, int] = {}
        #: per-processor blame ledger (hardened mode only)
        self._suspicion_policy = suspicion
        self.suspicion: Optional[SuspicionTracker] = (
            SuspicionTracker(suspicion, protect=(proc, spec.source))
            if suspicion is not None
            else None
        )
        #: structured outcomes of payload screening (hardened mode only)
        self.validation_failures: List[ValidationFailure] = []
        #: highest record seq ever rejected per origin - lets the validator
        #: recognize self-inflicted gaps (see ReceiverKnowledge.rejected_seq)
        self._rejected_hwm: Dict[ProcessorId, int] = {}
        #: every event ever fed to the graph layer, in arrival order; the
        #: replay source for eviction rebuilds (hardened mode only)
        self._event_log: List[Event] = []
        self._log_index: Dict[EventId, Event] = {}
        self._replaying = False
        #: self-stabilization (churn extension): audit structural invariants
        #: at every event hook and rebuild from the retained log on failure
        self.self_heal = self_heal
        #: the event log doubles as the recovery replay source, so it is
        #: retained for self-healing estimators even outside hardened mode
        self._retain_log = self.suspicion is not None or self_heal
        #: loss flags in arrival order, durable across history rebuilds
        self._flag_log: Set[EventId] = set()
        #: frontier-covered records re-buffered for forwarding but never
        #: learned (so absent from the event log); kept in arrival order so
        #: recovery can restore the forwarding buffer exactly
        self._rebuffer_log: Dict[EventId, Event] = {}
        #: late-joiner handoff adopted at bootstrap; replay prefix of rebuilds
        self._bootstrap: Optional[BootstrapSnapshot] = None
        self.recoveries = 0
        self.recovery_events: List[RecoveryEvent] = []

    def _make_agdp(self):
        if self._agdp_backend == "dict":
            agdp = AGDP(gc_enabled=self._agdp_gc)
        elif self._agdp_backend == "numpy":
            from .agdp_numpy import NumpyAGDP

            agdp = NumpyAGDP(gc_enabled=self._agdp_gc)
        elif self._agdp_backend == "numpy-source-only":
            # O(affected edges) per insertion instead of O(L^2): maintains
            # only the source representative's distance row/column, which
            # is all estimate()/estimate_of() read.  relative_estimate()
            # needs arbitrary pairs and raises; see docs/PERFORMANCE.md.
            from .agdp_numpy import NumpyAGDP

            agdp = NumpyAGDP(gc_enabled=self._agdp_gc, source_only=True)
        else:
            raise ValueError(
                f"unknown AGDP backend {self._agdp_backend!r} "
                "(use 'dict', 'numpy', or 'numpy-source-only')"
            )
        if self._debug_checks:
            from ..testing.invariants import check_agdp_invariants

            # installed here so eviction rebuilds re-arm the hook too
            agdp.invariant_hook = check_agdp_invariants
        return agdp

    @property
    def degraded(self) -> bool:
        """Whether any constraint has been quarantined so far."""
        return bool(self.diagnostics)

    @property
    def eviction_events(self):
        """Suspicion state transitions so far (empty outside hardened mode)."""
        return tuple(self.suspicion.events) if self.suspicion is not None else ()

    def _debug_check(self) -> None:
        """Run the full cross-module invariant suite (debug mode only)."""
        if self._debug_checks:
            from ..testing.invariants import check_csa_invariants

            check_csa_invariants(self)

    # -- event hooks -------------------------------------------------------------

    def on_send(self, event: Event) -> HistoryPayload:
        if not event.is_send:
            raise ProtocolError(f"on_send called with {event.kind} event {event.eid}")
        self._audit(event.lt)
        self._track_local(event)
        self.history.record_local(event)
        self._ingest(event)
        payload, token = self.history.prepare_payload(event.dest)
        if not self.reliable:
            self._pending_tokens[event.eid] = token
        self._maybe_rehabilitate()
        self._debug_check()
        return payload

    def on_receive(self, event: Event, payload: HistoryPayload) -> None:
        if not event.is_receive:
            raise ProtocolError(f"on_receive called with {event.kind} event {event.eid}")
        if not isinstance(payload, HistoryPayload):
            raise TypeError(
                f"efficient CSA expected a HistoryPayload, got {type(payload).__name__}"
            )
        self._audit(event.lt)
        self._track_local(event)
        sender = event.send_eid.proc
        if self.suspicion is not None:
            payload = self._screen_payload(sender, payload, event)
        new_events, new_flags = self.history.ingest_payload(sender, payload)
        self._ingest_reported(new_events)
        if self._retain_log:
            # records the history re-buffered rather than learned (covered
            # by an adopted frontier) never reach the event log; retain
            # them separately so recovery can restore the forwarding buffer
            new_ids = {e.eid for e in new_events}
            for record in payload.records:
                if (
                    record.eid not in new_ids
                    and record.eid not in self._log_index
                    and record.eid not in self._rebuffer_log
                ):
                    self._rebuffer_log[record.eid] = record
        self.history.record_local(event)
        self._ingest(event)
        for flag in new_flags:
            self._apply_loss_flag(flag)
        self._maybe_rehabilitate()
        self._debug_check()

    def on_internal(self, event: Event) -> None:
        self._audit(event.lt)
        self._track_local(event)
        self.history.record_local(event)
        self._ingest(event)
        self._maybe_rehabilitate()
        self._debug_check()

    def on_delivery_confirmed(self, send_eid: EventId) -> None:
        # these two hooks fire without a local event, so the audit anchors
        # at the last local time (as estimate() does); a confirm or loss
        # landing on corrupted state must recover first - recovery drops
        # the pending token, so the confirm degrades to a no-op and the
        # loss is recorded against the rebuilt history, both sound
        self._audit(self._last_local.lt if self._last_local is not None else 0.0)
        token = self._pending_tokens.pop(send_eid, None)
        if token is not None:
            self.history.confirm_delivery(token)
        self._debug_check()

    def on_loss_detected(self, send_eid: EventId) -> None:
        """Sec 3.3: locally detected loss of a message this processor sent."""
        self._audit(self._last_local.lt if self._last_local is not None else 0.0)
        token = self._pending_tokens.pop(send_eid, None)
        if token is not None:
            self.history.abort_delivery(token)
        if self.history.record_loss(send_eid):
            self._apply_loss_flag(send_eid)
        self._debug_check()

    def report_anomaly(
        self, accused: ProcessorId, kind: str, at_lt: float, detail: str = ""
    ) -> None:
        """Feed an externally observed anomaly into the suspicion ledger.

        Entry point for layers below the estimator - e.g. the runtime wire
        codec attributing undecodable bytes to the claimed sender.  The
        anomaly is recorded as a :class:`ValidationFailure` and blamed
        exactly like a screening failure; no-op outside hardened mode
        (without a suspicion ledger there is nowhere to put it).
        """
        if self.suspicion is None:
            return
        self._audit(at_lt)
        self.validation_failures.append(
            ValidationFailure(kind=kind, accused=(accused,), detail=detail)
        )
        if self.suspicion.blame(accused, kind, at_lt, detail):
            self._rebuild()
        self._debug_check()

    # -- dynamic membership: late-joiner bootstrap -----------------------------------

    @property
    def is_fresh(self) -> bool:
        """Whether this estimator has neither observed nor adopted anything.

        Only a fresh estimator may bootstrap: adopting over existing state
        would forge continuity.  A restarted node with durable state is not
        fresh - its :meth:`bootstrap_from` is a no-op returning ``False``,
        which is exactly the at-most-once semantics the runtime handshake
        needs (a retransmitted join answer must not re-apply).
        """
        return (
            self._last_local is None
            and self.live.events_observed == 0
            and not self.live.processors
            and not self._event_log
            and self._bootstrap is None
        )

    def bootstrap_snapshot(self) -> BootstrapSnapshot:
        """Export this estimator's handoff state for a late joiner.

        Sound and complete by Lemmas 3.4/3.5: garbage collection preserves
        exact distances between live points, and every future constraint is
        incident only to live points, so the frontier + finite live-live
        distances + loss flags are all a joiner needs (see
        :mod:`repro.core.bootstrap`).  Call *after* recording the send
        event of the handshake message, so the snapshot covers it.
        """
        if getattr(self.agdp, "source_only", False):
            raise ProtocolError(
                "the 'numpy-source-only' backend retains no pairwise "
                "distances to hand off; sponsor with 'dict' or 'numpy'"
            )
        last = tuple(
            (proc, seq, lt, is_send)
            for proc, (seq, lt, is_send) in sorted(self.live.last_events().items())
        )
        undelivered = tuple(
            (eid.proc, eid.seq, self.live.send_lt(eid))
            for eid in sorted(self.live.undelivered_sends())
        )
        points = [p for p in sorted(self.live.live_points()) if p in self.agdp]
        distances = []
        for x in points:
            for y in points:
                if x == y:
                    continue
                w = self.agdp.distance(x, y)
                if math.isfinite(w):
                    distances.append((x.proc, x.seq, y.proc, y.seq, w))
        return BootstrapSnapshot(
            sponsor=self.proc,
            last=last,
            undelivered=undelivered,
            known=tuple(sorted(self.history.knowledge_frontier().items())),
            loss_flags=tuple(sorted(self.history.loss_flags)),
            distances=tuple(distances),
            source_rep=self._source_rep,
        )

    def bootstrap_from(self, snapshot: BootstrapSnapshot) -> bool:
        """Adopt a sponsor's snapshot; returns ``False`` unless fresh.

        On success the estimator behaves as if it had absorbed the
        sponsor's entire view: the next receive (the handshake message
        itself) attaches to the adopted live points and the first estimate
        is already Theorem 2.1-optimal.  A snapshot whose distances are
        internally inconsistent (corrupt or adversarial) is refused
        wholesale - the estimator resets to fresh and returns ``False``.
        """
        if not self.is_fresh:
            return False
        if getattr(self.agdp, "source_only", False):
            raise ProtocolError(
                "the 'numpy-source-only' backend cannot bootstrap "
                "(no pairwise distance storage); use 'dict' or 'numpy'"
            )
        sponsor = (
            snapshot.sponsor if snapshot.sponsor in self.history.neighbors else None
        )
        try:
            self.history.adopt_frontier(
                snapshot.frontier(), snapshot.loss_flags, sponsor=sponsor
            )
            self._apply_snapshot(snapshot)
        except (InconsistentSpecificationError, ProtocolError, ValueError):
            self._reset_fresh()
            return False
        self._bootstrap = snapshot
        if self._retain_log:
            self._flag_log.update(snapshot.loss_flags)
        return True

    def _apply_snapshot(self, snapshot: BootstrapSnapshot) -> None:
        """Load a snapshot into the live tracker and solver (fresh structures).

        Shared by :meth:`bootstrap_from` and :meth:`_rebuild`; in hardened
        replays, points claimed by currently excluded processors stay out of
        the solver (their folded path contributions cannot be unfolded - the
        snapshot is trusted sponsor state, eviction excises only direct
        nodes).
        """
        self.live.adopt(snapshot.last, snapshot.undelivered, snapshot.loss_flags)
        excluded = (
            self.suspicion.is_excluded if self.suspicion is not None else lambda e: False
        )
        kept = [p for p in snapshot.live_points() if not excluded(p)]
        for point in kept:
            self.agdp.add_node(point)
        in_agdp = set(kept)
        for xp, xs, yp, ys, w in snapshot.distances:
            x, y = EventId(xp, xs), EventId(yp, ys)
            if x not in in_agdp or y not in in_agdp:
                continue
            try:
                self.agdp.insert_edge(x, y, w)
            except InconsistentSpecificationError:
                if not self._replaying:
                    raise  # bootstrap_from refuses the snapshot wholesale
                # replay: quarantine silently, like logged-event replays
        if snapshot.source_rep is not None and snapshot.source_rep in self.agdp:
            self._source_rep = snapshot.source_rep

    def _reset_fresh(self) -> None:
        """Discard all state after a refused bootstrap (back to fresh)."""
        self.history = HistoryModule(
            self.proc,
            self.spec.neighbors(self.proc),
            reliable=self.reliable,
            track_reports=self._track_reports,
            gc_enabled=self._history_gc,
        )
        self.live = LiveTracker()
        self.agdp = self._make_agdp()
        self._source_rep = None
        self._bootstrap = None

    # -- self-stabilization: audit and recovery --------------------------------------

    def self_check(self) -> bool:
        """Cheap structural audit; ``True`` when state looks coherent."""
        return self._find_corruption() is None

    def _find_corruption(self) -> Optional[str]:
        """O(#processors) cross-module invariant probe.

        Detects the corruption classes of the churn fault model: a
        scrambled history frontier (disagrees with the live tracker), a
        poisoned distance matrix (nonzero diagonal at a live point, or a
        lost source representative), and an invalid suspicion ledger
        (negative or NaN scores).  Anything that *raises* during the probe
        is corruption too.
        """
        try:
            for proc in self.live.processors:
                if self.history.known_seq(proc) != self.live.last_seq(proc):
                    return (
                        f"history frontier for {proc!r} disagrees with the "
                        "live tracker"
                    )
            if self._source_rep is not None and self._source_rep not in self.agdp:
                return "source representative missing from the distance solver"
            for proc in self.live.processors:
                last = self.live.last_event(proc)
                if last is not None and last[0] in self.agdp:
                    if self.agdp.distance(last[0], last[0]) != 0.0:
                        return f"distance matrix diagonal poisoned at {last[0]}"
            if self.suspicion is not None:
                for proc, score in self.suspicion.scores.items():
                    if not score >= 0.0:  # NaN fails this comparison too
                        return f"suspicion ledger holds invalid score for {proc!r}"
        except Exception as exc:
            return f"structural audit raised: {exc}"
        return None

    def _audit(self, at_lt: float) -> None:
        """Entry audit of every event hook (self-healing estimators only)."""
        if not self.self_heal:
            return
        reason = self._find_corruption()
        if reason is not None:
            self._recover(at_lt, reason)

    def _recover(self, at_lt: float, reason: str) -> None:
        """Rebuild every subsystem from durable logs (self-stabilization).

        The retained event log, loss-flag log, and bootstrap snapshot are
        the ground truth; history, live tracker, solver, and suspicion
        ledger are all re-derived from them, so recovery is *exact*: the
        rebuilt state is bit-identical to a never-corrupted twin's (modulo
        watermarks, which reset and merely cause re-shipping that receivers
        dedup).  Unsettled delivery tokens are dropped - late confirms
        become no-ops and the unconfirmed payloads are simply re-reported.
        """
        self.recoveries += 1
        self.recovery_events.append(RecoveryEvent(at_lt=at_lt, reason=reason))
        self.history = HistoryModule(
            self.proc,
            self.spec.neighbors(self.proc),
            reliable=self.reliable,
            track_reports=self._track_reports,
            gc_enabled=self._history_gc,
        )
        if self._bootstrap is not None:
            sponsor = (
                self._bootstrap.sponsor
                if self._bootstrap.sponsor in self.history.neighbors
                else None
            )
            self.history.adopt_frontier(
                self._bootstrap.frontier(),
                self._bootstrap.loss_flags,
                sponsor=sponsor,
            )
        # frontier-covered forwardables first: they causally precede every
        # logged (post-bootstrap) event, so this is a valid learn order
        self.history.adopt_events(self._rebuffer_log.values())
        self.history.adopt_events(self._event_log)
        for flag in sorted(self._flag_log):
            self.history.record_loss(flag)
        if self._suspicion_policy is not None:
            self.suspicion = SuspicionTracker(
                self._suspicion_policy, protect=(self.proc, self.spec.source)
            )
        self._pending_tokens.clear()
        self._rebuild()

    # -- core insertion ------------------------------------------------------------

    def _ingest_reported(self, events: List[Event]) -> None:
        """Insert a delivered payload's fresh records as one AGDP batch.

        One payload of ``k`` events costs one :meth:`AGDP.step_batch` call
        instead of ``k`` scalar passes.  The steps are handed over as a
        generator, so each event's edges and kill-set are computed against
        the live/AGDP state left by the *previous* step - interleaving,
        counters, and failure points are identical to the scalar loop.

        Hardened, degraded, and source-only estimators keep the scalar
        path: those modes mutate blame/quarantine/anchor state mid-stream,
        which the streamlined step generator does not model.
        """
        if (
            self.suspicion is not None
            or self.degraded_mode
            or getattr(self.agdp, "source_only", False)
        ):
            for event in events:
                self._ingest(event)
            return
        self.agdp.step_batch(self._reported_steps(events))

    def _reported_steps(self, events: List[Event]):
        """Yield ``(node, edges, kills)`` AGDP steps for reported events.

        The edge construction mirrors :meth:`_agdp_insert`'s non-hardened,
        non-degraded branch exactly; see there for the constraint
        derivations.  Lazy on purpose: :meth:`AGDP.step_batch` pulls the
        next step only after applying the previous one, so even the state
        left behind by a mid-payload failure matches the scalar loop.
        """
        live = self.live
        agdp = self.agdp
        spec = self.spec
        source = spec.source
        retain = self._retain_log and not self._replaying
        for event in events:
            eid = event.eid
            if retain:
                self._event_log.append(event)
                self._log_index[eid] = event
            edges: List[Tuple[EventId, EventId, float]] = []
            pred = live.last_event(event.proc)
            if pred is not None:
                pred_id, pred_lt = pred
                if pred_id != eid.pred():
                    raise ProtocolError(
                        f"{self.proc!r} inserting {eid} after {pred_id} (gap)"
                    )
                drift = spec.drift_of(event.proc)
                delta = event.lt - pred_lt
                edges.append((eid, pred_id, (drift.beta - 1.0) * delta))
                edges.append((pred_id, eid, (1.0 - drift.alpha) * delta))
            if event.is_receive:
                send_lt = live.send_lt(event.send_eid)
                if send_lt is not None and event.send_eid in agdp:
                    transit = spec.transit_of(event.send_eid.proc, event.proc)
                    observed = event.lt - send_lt
                    if transit.is_bounded:
                        edges.append(
                            (eid, event.send_eid, transit.upper - observed)
                        )
                    edges.append((event.send_eid, eid, observed - transit.lower))
            kills = [k for k in live.observe(event) if k in agdp]
            if event.proc == source:
                self._source_rep = eid
            yield eid, edges, kills

    def _ingest(self, event: Event) -> None:
        """Log (hardened/self-heal mode) and insert one event into the graph layer."""
        if self._retain_log and not self._replaying:
            self._event_log.append(event)
            self._log_index[event.eid] = event
        self._agdp_insert(event)

    def _agdp_insert(self, event: Event) -> None:
        """One AGDP step: insert ``event`` with its incident edges, then kill.

        Events must arrive in a topological order of the view; the history
        protocol guarantees this for reported events and the caller
        interleaves local events correctly.

        In hardened mode events of evicted (or excised-range) processors
        still pass through the live tracker - continuity of the tracked
        view must survive an eviction - but contribute no node and no
        edges to the AGDP.
        """
        eid = event.eid
        hardened = self.suspicion is not None
        excluded = hardened and self.suspicion.is_excluded(eid)
        blames: List[Tuple[ProcessorId, str, str]] = []
        edges: List[Tuple[EventId, EventId, float, str]] = []
        if not excluded:
            pred = self.live.last_event(event.proc)
            if pred is not None:
                pred_id, pred_lt = pred
                if pred_id != eid.pred():
                    raise ProtocolError(
                        f"{self.proc!r} inserting {eid} after {pred_id} (gap)"
                    )
                drift = self.spec.drift_of(event.proc)
                delta = event.lt - pred_lt
                edges.append((eid, pred_id, (drift.beta - 1.0) * delta, "drift"))
                edges.append((pred_id, eid, (1.0 - drift.alpha) * delta, "drift"))
            if event.is_receive:
                send_lt = self.live.send_lt(event.send_eid)
                if send_lt is not None and event.send_eid in self.agdp:
                    transit = self.spec.transit_of(event.send_eid.proc, event.proc)
                    observed = event.lt - send_lt
                    if transit.is_bounded:
                        edges.append(
                            (eid, event.send_eid, transit.upper - observed, "transit")
                        )
                    edges.append(
                        (event.send_eid, eid, observed - transit.lower, "transit")
                    )
                # else: the send was flagged lost and collected before this
                # late delivery (or its claimant is evicted); its constraints
                # are gone, which is sound (fewer constraints only widen
                # bounds).
        if (
            hardened
            and event.is_receive
            and self.live.send_lt(event.send_eid) is None
            and self.live.knows(event.send_eid)
            and event.send_eid not in self.live.lost_flags
        ):
            # the send id resolves to something the tracker does not hold as
            # an undelivered send - for honest input a double delivery, but a
            # fabricated event squatting on a real send's id produces exactly
            # this shape at every honest receiver of the real message
            blames.append(
                (
                    event.send_eid.proc,
                    "phantom-send",
                    f"receive {eid} references {event.send_eid}, which is "
                    "known but not an undelivered send",
                )
            )
        kills = [
            k
            for k in self.live.observe(event, lenient=hardened)
            if k in self.agdp
        ]
        if excluded:
            for victim in kills:
                self.agdp.kill(victim)
            self._finish_insert(event, blames)
            return
        if not self.degraded_mode:
            self.agdp.step(eid, [(x, y, w) for x, y, w, _k in edges], kills)
        else:
            # per-edge insertion so one inconsistent constraint can be
            # quarantined without losing the rest; insert_edge raises
            # *before* mutating, so the matrix stays exact over the
            # accepted constraints
            self.agdp.add_node(eid)
            for x, y, w, kind in edges:
                if x not in self.agdp or y not in self.agdp:
                    continue  # the other endpoint belongs to an evicted claim
                try:
                    self.agdp.insert_edge(x, y, w)
                except InconsistentSpecificationError as exc:
                    if not self._replaying:
                        self.diagnostics.append(
                            QuarantineDiagnostic(
                                event=eid, edge=(x, y, w), kind=kind, reason=str(exc)
                            )
                        )
                    if hardened:
                        for accused in sorted(
                            {x.proc, y.proc} - set(self.suspicion.protected)
                        ):
                            blames.append(
                                (
                                    accused,
                                    "quarantine",
                                    f"constraint ({x}, {y}, {w:.4g}) closed a "
                                    "negative cycle",
                                )
                            )
            for victim in kills:
                self.agdp.kill(victim)
        if event.proc == self.spec.source:
            self._source_rep = eid
            if getattr(self.agdp, "source_only", False):
                self.agdp.set_anchor(eid)
        self._finish_insert(event, blames)

    def _finish_insert(
        self, event: Event, blames: List[Tuple[ProcessorId, str, str]]
    ) -> None:
        """Apply blame collected during an insertion, after it completed.

        Deferred because an eviction rebuilds ``self.agdp``/``self.live``
        in place; doing that mid-insertion would leave the step half
        applied to the old structures.
        """
        if not blames or self.suspicion is None or self._replaying:
            return
        evicted = False
        for proc, kind, detail in blames:
            evicted |= self.suspicion.blame(proc, kind, event.lt, detail)
        if evicted:
            self._rebuild()

    # -- hardened mode: screening, eviction, rehabilitation -------------------------

    def _screen_payload(
        self, sender: ProcessorId, payload: HistoryPayload, event: Event
    ) -> HistoryPayload:
        """Validate an incoming payload; blame the accused; return it sanitized."""
        if not isinstance(payload, HistoryPayload):  # pragma: no cover - guarded above
            raise TypeError("hardened CSA screens HistoryPayloads only")
        report = validate_payload(
            sender,
            payload,
            knowledge=_LogKnowledge(self),
            spec=self.spec,
            receiver=self.proc,
            receive_event=event,
            trusted=self.suspicion.protected,
            suspected=self.suspicion.suspected(),
        )
        self.validation_failures.extend(report.failures)
        for record in report.rejected:
            if isinstance(record, Event):
                seq = record.eid.seq
                if seq > self._rejected_hwm.get(record.proc, -1):
                    self._rejected_hwm[record.proc] = seq
        evicted = False
        for failure in report.failures:
            for accused in failure.accused:
                evicted |= self.suspicion.blame(
                    accused, failure.kind, event.lt, failure.detail
                )
        if evicted:
            self._rebuild()
        return report.sanitized

    def _rebuild(self) -> None:
        """Re-derive tracker and solver from the event log, minus the evicted.

        The AGDP cannot remove a node's constraints once inserted, so
        eviction replays history: a fresh live tracker and solver consume
        the full event log with the evicted processors' events excluded.
        Sound by Theorem 2.1 - the surviving constraints are a subset of
        genuine ones - and exact over what remains.  Quarantine decisions
        taken during replay are not re-recorded (the diagnostics list
        stays cumulative) and produce no fresh blame.
        """
        self._replaying = True
        try:
            self.live = LiveTracker()
            self.agdp = self._make_agdp()
            self._source_rep = None
            if self._bootstrap is not None:
                self._apply_snapshot(self._bootstrap)
            for event in self._event_log:
                self._agdp_insert(event)
            for flag in self.history.loss_flags:
                self._apply_loss_flag(flag)
        finally:
            self._replaying = False

    def _maybe_rehabilitate(self) -> None:
        """Give evicted processors their way back after a clean window.

        No rebuild is needed: rehabilitation freezes the excised range at
        the current knowledge frontier (those claims stay out forever) and
        only future events re-enter the graph through normal insertion.
        """
        if self.suspicion is None or self._last_local is None:
            return
        if not self.suspicion.evicted_procs:
            return
        now = self._last_local.lt
        for proc in self.suspicion.due_for_rehabilitation(now):
            self.suspicion.rehabilitate(
                proc, now, frontier=self.history.known_seq(proc)
            )

    def _apply_loss_flag(self, send_eid: EventId) -> None:
        if self._retain_log and not self._replaying:
            self._flag_log.add(send_eid)
        for victim in self.live.flag_lost(send_eid):
            if victim in self.agdp:
                self.agdp.kill(victim)

    # -- estimates ----------------------------------------------------------------

    def estimate(self) -> ClockBound:
        if self.self_heal:
            # reads audit too: sampling can land between the corruption and
            # the next event hook, and a scrambled matrix must never leak
            # out as an exception (or worse, an unsound interval)
            at_lt = self._last_local.lt if self._last_local is not None else 0.0
            self._audit(at_lt)
            lower, upper = self._estimate_endpoints()
            if lower > upper:
                # an empty interval is impossible for honest state, so this
                # is corruption the structural audit could not see
                self._recover(at_lt, "estimate produced an empty bound")
                lower, upper = self._estimate_endpoints()
            return ClockBound(lower, upper)
        lower, upper = self._estimate_endpoints()
        return ClockBound(lower, upper)

    def _estimate_endpoints(self) -> Tuple[float, float]:
        if self._last_local is None or self._source_rep is None:
            return -math.inf, math.inf
        p = self._last_local.eid
        sp = self._source_rep
        lt_p = self._last_local.lt
        d_p_sp = self.agdp.distance(p, sp)
        d_sp_p = self.agdp.distance(sp, p)
        lower = -math.inf if math.isinf(d_sp_p) else lt_p - d_sp_p
        upper = math.inf if math.isinf(d_p_sp) else lt_p + d_p_sp
        return lower, upper

    def estimate_of(self, proc: ProcessorId) -> ClockBound:
        """Bounds on ``RT`` at the last *known* point of another processor.

        The last known point of every processor is live, so the optimal
        interval for it is directly available - this is how a monitoring
        node can bound every peer's situation from its own view.
        """
        if self._source_rep is None:
            return ClockBound.unbounded()
        last = self.live.last_event(proc)
        if last is None:
            return ClockBound.unbounded()
        eid, lt = last
        if eid not in self.agdp:
            # the processor's latest claim is excluded (evicted/excised);
            # nothing trustworthy anchors its current clock
            return ClockBound.unbounded()
        d_p_sp = self.agdp.distance(eid, self._source_rep)
        d_sp_p = self.agdp.distance(self._source_rep, eid)
        lower = -math.inf if math.isinf(d_sp_p) else lt - d_sp_p
        upper = math.inf if math.isinf(d_p_sp) else lt + d_p_sp
        return ClockBound(lower, upper)

    def relative_estimate(
        self, proc_a: ProcessorId, proc_b: ProcessorId
    ) -> ClockBound:
        """Optimal bounds on ``RT(a) - RT(b)`` at the two processors' last
        known points (internal-synchronization-style output).

        Theorem 2.1 applies to *any* pair of points, not just pairs with a
        source point, and both processors' last known points are live, so
        their distances sit in the AGDP matrix already:

            ``RT(p_a) - RT(p_b) in [virt_del - d(p_b, p_a),
                                    virt_del + d(p_a, p_b)]``.

        This works even before any source information arrives - it is how
        a system without access to standard time still bounds relative
        offsets (cf. the internal-synchronization literature the paper
        builds on).
        """
        last_a = self.live.last_event(proc_a)
        last_b = self.live.last_event(proc_b)
        if last_a is None or last_b is None:
            return ClockBound.unbounded()
        eid_a, lt_a = last_a
        eid_b, lt_b = last_b
        if eid_a not in self.agdp or eid_b not in self.agdp:
            return ClockBound.unbounded()
        virt_del = lt_a - lt_b
        d_ab = self.agdp.distance(eid_a, eid_b)
        d_ba = self.agdp.distance(eid_b, eid_a)
        lower = -math.inf if math.isinf(d_ba) else virt_del - d_ba
        upper = math.inf if math.isinf(d_ab) else virt_del + d_ab
        return ClockBound(lower, upper)

    # -- accounting ----------------------------------------------------------------

    def stats(self) -> CSAStats:
        return CSAStats(
            max_live_points=self.live.max_live,
            max_agdp_nodes=self.agdp.stats.max_nodes,
            agdp_pair_updates=self.agdp.stats.pair_updates,
            agdp_edges_inserted=self.agdp.stats.edges_inserted,
            max_history_buffer=self.history.stats.max_buffer,
            max_payload_records=self.history.stats.max_payload,
            records_sent=self.history.stats.records_sent,
            events_observed=self.live.events_observed,
        )
