"""Incremental live-point tracking (Definition 3.1).

A point ``p`` of a view is *live* iff

* ``p`` is the last point of its processor in the view, or
* ``p`` is the send event of a message whose receive is not in the view
  (and the message has not been flagged as lost, Sec 3.3).

The efficient algorithm never stores the whole view, so liveness must be
maintained incrementally as events are learned in topological order.  This
tracker holds O(#processors + #in-flight messages) state: the last known
event per processor and the set of undelivered sends, and reports exactly
which nodes *die* at each insertion - the kill-set handed to the AGDP
solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .errors import ProtocolError
from .events import Event, EventId, ProcessorId

__all__ = ["LiveTracker"]


@dataclass(frozen=True)
class _LastEvent:
    seq: int
    lt: float
    is_send: bool


class LiveTracker:
    """Maintains Definition 3.1 liveness over a view learned event-by-event."""

    def __init__(self):
        self._last: Dict[ProcessorId, _LastEvent] = {}
        #: undelivered, unflagged send events and their local times
        self._undelivered: Dict[EventId, float] = {}
        #: sends flagged lost (Sec 3.3); retained to ignore late duplicates
        self._lost: Set[EventId] = set()
        #: total number of events observed (for complexity accounting)
        self.events_observed = 0
        #: peak number of simultaneously live points
        self.max_live = 0
        #: undelivered sends that are *not* their processor's last event;
        #: the live set is {last event per proc} | undelivered, and the
        #: overlap is exactly the undelivered sends still at the frontier,
        #: so live_count = len(_last) + this counter without building a set
        self._undelivered_nonlast = 0

    # -- queries -----------------------------------------------------------------

    def last_event(self, proc: ProcessorId) -> Optional[Tuple[EventId, float]]:
        """The last known event of ``proc`` as ``(eid, lt)``, or ``None``."""
        last = self._last.get(proc)
        if last is None:
            return None
        return EventId(proc, last.seq), last.lt

    def last_seq(self, proc: ProcessorId) -> int:
        last = self._last.get(proc)
        return -1 if last is None else last.seq

    def knows(self, eid: EventId) -> bool:
        """Whether the tracked view contains ``eid``."""
        return eid.seq <= self.last_seq(eid.proc)

    def is_live(self, eid: EventId) -> bool:
        if not self.knows(eid):
            raise ProtocolError(f"liveness of unknown event {eid}")
        if self.last_seq(eid.proc) == eid.seq:
            return True
        return eid in self._undelivered

    def live_points(self) -> Set[EventId]:
        live = {
            EventId(proc, last.seq) for proc, last in self._last.items()
        }
        live.update(self._undelivered)
        return live

    def live_count(self) -> int:
        return len(self._last) + self._undelivered_nonlast

    def undelivered_sends(self) -> Set[EventId]:
        return set(self._undelivered)

    def send_lt(self, send_eid: EventId) -> Optional[float]:
        """Local time of an undelivered tracked send, or ``None``."""
        return self._undelivered.get(send_eid)

    @property
    def processors(self) -> Tuple[ProcessorId, ...]:
        return tuple(sorted(self._last))

    def last_events(self) -> Dict[ProcessorId, Tuple[int, float, bool]]:
        """Export the per-processor frontier as ``proc -> (seq, lt, is_send)``.

        Together with :meth:`undelivered_sends`/:meth:`send_lt` and
        :attr:`lost_flags` this is the full bootstrap-relevant state of the
        tracker (what a sponsor hands a late joiner).
        """
        return {
            proc: (last.seq, last.lt, last.is_send)
            for proc, last in self._last.items()
        }

    # -- mutation ----------------------------------------------------------------

    def adopt(
        self,
        last: Iterable[Tuple[ProcessorId, int, float, bool]],
        undelivered: Iterable[Tuple[ProcessorId, int, float]] = (),
        lost: Iterable[EventId] = (),
    ) -> None:
        """Adopt a sponsor's live frontier wholesale (late-joiner bootstrap).

        Only a *fresh* tracker may adopt - continuity guarantees would be
        spent otherwise - and adopted events do not count as observed
        (``events_observed`` keeps measuring this processor's own run).
        """
        if self.events_observed or self._last or self._undelivered or self._lost:
            raise ProtocolError("only a fresh tracker can adopt a frontier")
        for proc, seq, lt, is_send in last:
            self._last[proc] = _LastEvent(seq, lt, is_send)
        for proc, seq, lt in undelivered:
            eid = EventId(proc, seq)
            if seq > self.last_seq(proc):
                raise ProtocolError(
                    f"adopted undelivered send {eid} beyond frontier"
                )
            self._undelivered[eid] = lt
        self._lost.update(lost)
        self._undelivered_nonlast = sum(
            1 for eid in self._undelivered if self.last_seq(eid.proc) != eid.seq
        )
        self.max_live = max(self.max_live, self.live_count())

    def observe(self, event: Event, *, lenient: bool = False) -> List[EventId]:
        """Record ``event`` (the next event of its processor) and return kills.

        The returned list contains the event ids that were live before this
        insertion and are dead after it.  The caller must feed events in a
        topological order of the view (per-processor sequence numbers must
        be contiguous); violations raise :class:`ProtocolError`.

        With ``lenient=True`` a receive whose send is known as something
        other than an undelivered send is tolerated instead of raising.
        Under honest input that shape is a double delivery (a protocol
        bug), but a Byzantine peer can manufacture it for a perfectly
        honest message by squatting a fabricated event on the real send's
        id; the hardened estimator must keep tracking through it.  The
        check happens *before* any mutation, so the tracker cannot offer
        try/except recovery - continuity would already be spent.
        """
        eid = event.eid
        expected = self.last_seq(eid.proc) + 1
        if eid.seq != expected:
            raise ProtocolError(
                f"event {eid} observed out of order (expected seq {expected})"
            )
        dead: List[EventId] = []
        prev = self._last.get(eid.proc)
        if prev is not None:
            prev_id = EventId(eid.proc, prev.seq)
            # the old last point stays live only as an undelivered send
            if prev_id not in self._undelivered:
                dead.append(prev_id)
            else:
                # superseded at the frontier but still in flight: it now
                # counts toward the undelivered-nonlast overlap correction
                self._undelivered_nonlast += 1
        if event.is_receive:
            send_eid = event.send_eid
            if send_eid in self._undelivered:
                del self._undelivered[send_eid]
                if self.last_seq(send_eid.proc) != send_eid.seq:
                    dead.append(send_eid)
                    self._undelivered_nonlast -= 1
            elif send_eid not in self._lost and self.knows(send_eid):
                if not lenient:
                    raise ProtocolError(
                        f"message {send_eid} delivered twice (receive {eid})"
                    )
        self._last[eid.proc] = _LastEvent(eid.seq, event.lt, event.is_send)
        if event.is_send:
            self._undelivered[eid] = event.lt
        self.events_observed += 1
        self.max_live = max(self.max_live, self.live_count())
        return dead

    def flag_lost(self, send_eid: EventId) -> List[EventId]:
        """Sec 3.3: mark a send's message as lost; return newly dead points.

        Idempotent; flagging an unknown or already-delivered send is a
        no-op (the detector may race with a late delivery elsewhere).
        """
        self._lost.add(send_eid)
        if send_eid not in self._undelivered:
            return []
        del self._undelivered[send_eid]
        if self.last_seq(send_eid.proc) == send_eid.seq:
            return []
        self._undelivered_nonlast -= 1
        return [send_eid]

    @property
    def lost_flags(self) -> Set[EventId]:
        return set(self._lost)
