"""The Accumulated Graph Distance Problem (AGDP) and its solver (Sec 3.2).

AGDP abstracts the on-line synchronization problem as a dynamic graph
problem:

* initially the graph has one node, the *source*, marked live;
* each step adds one new node (marked live) plus edges joining it to live
  nodes, then unmarks ("kills") some endpoints of the new edges;
* the task is to know, at all times, distances between live nodes (in
  particular from the source).

The solver maintains a *complete* weighted digraph ``G`` over the non-dead
nodes whose edge weights equal exact distances in the accumulated graph
(Lemma 3.4).  Edge insertion uses the Ausiello et al. incremental
all-pairs-shortest-paths update - inserting ``(x, y, w)`` can only shorten
paths through the new edge, so

    ``d'(r, s) = min(d(r, s), d(r, x) + w + d(y, s))``

for every pair ``(r, s)``: ``O(L^2)`` time per edge insertion for ``L``
live nodes (Lemma 3.5).  Killing a node simply deletes its row and column;
Lemma 3.4 guarantees no live-live distance is lost.

For the garbage-collection ablation (experiment A1) the solver can be run
with ``gc_enabled=False``: dead nodes are then retained, which preserves
answers trivially but lets the matrix grow with the execution length -
exactly the blow-up the paper's construction avoids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from .errors import InconsistentSpecificationError

__all__ = ["AGDP", "AGDPStats"]

INF = math.inf

NodeKey = Hashable


@dataclass
class AGDPStats:
    """Operation counters for complexity experiments (E4, E6, E7, A1)."""

    nodes_added: int = 0
    nodes_killed: int = 0
    edges_inserted: int = 0
    #: total pair-relaxation candidates examined across all edge insertions
    #: (pairs with finite ``d(r, x)`` and ``d(y, s)``); every backend counts
    #: this same quantity, so complexity plots are backend-independent
    pair_updates: int = 0
    #: largest node-set size ever held (live + in-flight insertions)
    max_nodes: int = 0

    def matrix_cells(self) -> int:
        """Peak memory proxy: cells of the largest distance matrix held."""
        return self.max_nodes * self.max_nodes


class AGDP:
    """Incremental all-pairs distances over the live nodes of a growing graph.

    Node keys are arbitrary hashables.  Weights may be negative; a negative
    cycle (impossible for views of real executions) raises
    :class:`InconsistentSpecificationError`.
    """

    def __init__(self, source: Optional[NodeKey] = None, *, gc_enabled: bool = True):
        self._dist: Dict[NodeKey, Dict[NodeKey, float]] = {}
        self._source = source
        self._gc_enabled = gc_enabled
        #: retained only when gc is disabled, to answer is_live queries
        self._dead: Set[NodeKey] = set()
        self.stats = AGDPStats()
        #: debug-mode callback invoked with ``self`` after every mutating
        #: edge insertion and kill (see repro.testing.invariants); None in
        #: production - the checks are O(n^3) per call
        self.invariant_hook = None
        if source is not None:
            self.add_node(source)

    # -- inspection --------------------------------------------------------------

    @property
    def source(self) -> NodeKey:
        return self._source

    @property
    def gc_enabled(self) -> bool:
        return self._gc_enabled

    def __contains__(self, node: NodeKey) -> bool:
        return node in self._dist

    def __len__(self) -> int:
        return len(self._dist)

    @property
    def nodes(self) -> Set[NodeKey]:
        return set(self._dist)

    @property
    def live_nodes(self) -> Set[NodeKey]:
        return set(self._dist) - self._dead

    def distance(self, x: NodeKey, y: NodeKey) -> float:
        """Exact distance from ``x`` to ``y`` in the accumulated graph.

        ``inf`` when ``y`` is unreachable from ``x``.  Both nodes must be
        present (live, or dead-but-retained when gc is disabled).
        """
        try:
            return self._dist[x][y]
        except KeyError:
            raise KeyError(f"node {x!r} or {y!r} is not tracked by this AGDP") from None

    def distances_from(self, x: NodeKey) -> Dict[NodeKey, float]:
        return dict(self._dist[x])

    def distances_to(self, y: NodeKey) -> Dict[NodeKey, float]:
        if y not in self._dist:
            raise KeyError(f"node {y!r} is not tracked by this AGDP")
        return {x: row[y] for x, row in self._dist.items()}

    # -- mutation ----------------------------------------------------------------

    def add_node(self, node: NodeKey) -> None:
        """Insert a new isolated live node (one AGDP input step starts here)."""
        if node in self._dist:
            raise ValueError(f"node {node!r} already present")
        for row in self._dist.values():
            row[node] = INF
        self._dist[node] = {other: INF for other in self._dist}
        self._dist[node][node] = 0.0
        self.stats.nodes_added += 1
        self.stats.max_nodes = max(self.stats.max_nodes, len(self._dist))

    def insert_edge(self, x: NodeKey, y: NodeKey, weight: float) -> None:
        """Insert edge ``x -> y`` and restore all-pairs exactness.

        Per the AGDP specification at least one endpoint is the newly added
        node and the other is live, but the update is correct for any
        present endpoints; the relaxed precondition is convenient for the
        ablation modes.
        """
        if x not in self._dist or y not in self._dist:
            raise KeyError(f"edge endpoints {x!r}, {y!r} must be present")
        if math.isnan(weight):
            raise ValueError("edge weight must not be NaN")
        if math.isinf(weight):
            return  # a TOP bound carries no information
        if x == y:
            if weight < 0:
                raise InconsistentSpecificationError(
                    f"negative self-loop at {x!r}"
                )
            return
        self.stats.edges_inserted += 1
        back = self._dist[y][x]
        if back + weight < -1e-9:
            raise InconsistentSpecificationError(
                f"inserting ({x!r} -> {y!r}, {weight}) closes a negative cycle "
                f"(d({y!r}, {x!r}) = {back})",
                edge=(x, y, weight),
            )
        if weight >= self._dist[x][y]:
            return  # no path improves
        # Ausiello et al. update: any strictly shorter path uses the new edge
        # exactly once (no negative cycles), so it decomposes r ~> x -> y ~> s.
        # Stored distances are finite or +inf (never NaN/-inf), so the
        # comparisons below are equivalent to math.isinf checks; rows are
        # paired with d(r, x) directly to keep the inner loop free of
        # lookups into the outer matrix.
        to_x = [(row, d_rx) for row in self._dist.values() if (d_rx := row[x]) != INF]
        from_y = [(s, d) for s, d in self._dist[y].items() if d != INF]
        # finite relaxation candidates - the backend-independent cost unit
        # (the numpy backend charges the identical quantity); hoisted out of
        # the inner loop so counting costs O(1) per insertion
        self.stats.pair_updates += len(to_x) * len(from_y)
        for row, d_rx in to_x:
            base = d_rx + weight
            for s, d_ys in from_y:
                candidate = base + d_ys
                if candidate < row[s]:
                    row[s] = candidate
        if self.invariant_hook is not None:
            self.invariant_hook(self)

    def kill(self, node: NodeKey) -> None:
        """Unmark ``node`` as live; with gc enabled, drop its row and column."""
        if node not in self._dist:
            raise KeyError(f"node {node!r} is not present")
        if self._source is not None and node == self._source:
            raise ValueError("the source node is live forever")
        self.stats.nodes_killed += 1
        if not self._gc_enabled:
            self._dead.add(node)
        else:
            del self._dist[node]
            for row in self._dist.values():
                del row[node]
        if self.invariant_hook is not None:
            self.invariant_hook(self)

    def step(
        self,
        node: NodeKey,
        edges: Iterable[Tuple[NodeKey, NodeKey, float]],
        kills: Iterable[NodeKey] = (),
    ) -> None:
        """One AGDP input step: add ``node``, insert ``edges``, kill ``kills``.

        Every edge must have ``node`` as one endpoint (the AGDP contract:
        new edges connect live nodes to the new node).
        """
        self.add_node(node)
        for x, y, w in edges:
            if node not in (x, y):
                raise ValueError(
                    f"AGDP step for {node!r} may only insert incident edges, got ({x!r}, {y!r})"
                )
            self.insert_edge(x, y, w)
        for victim in kills:
            self.kill(victim)

    def step_batch(
        self,
        steps: Iterable[
            Tuple[NodeKey, Iterable[Tuple[NodeKey, NodeKey, float]], Iterable[NodeKey]]
        ],
    ) -> None:
        """Apply many input steps in order (the batch-delivery hot path).

        One delivered payload of ``k`` events becomes one call carrying
        ``k`` ``(node, edges, kills)`` steps; observable behaviour (matrix
        contents, stats counters, invariant-hook firing order, failure
        points) is identical to ``k`` sequential :meth:`step` calls.
        """
        for node, edges, kills in steps:
            self.step(node, edges, kills)

    def matrix_size(self) -> int:
        """Current number of matrix cells held (space proxy for Lemma 3.5)."""
        return len(self._dist) * len(self._dist)
