"""The paper's general model: synchronization from *arbitrary* bounds.

Sections 1-2 emphasise that a CSA is *general* if it works for any bounds
mapping - "unrestricted non-negative parameters (including infinity)" -
not merely the drift + transit family.  :class:`GeneralSynchronizer` is
that generality made concrete: a workbench where you declare points with
their local times and assert any real-time bounds between any pair of
points, then read off optimal intervals via the Clock Synchronization
Theorem.

This is the right tool when timing knowledge does not come from messages:
e.g. "sensor A triggered between 2 and 5 seconds before actuator B", or
one-shot cross-system calibration constraints.  The on-line algorithms in
:mod:`repro.core.csa` specialise this machinery to the drift/transit
family where the efficient live-point structure applies.

Example
-------
>>> sync = GeneralSynchronizer(source="clockhouse")
>>> t0 = sync.add_point("clockhouse", lt=100.0)
>>> a0 = sync.add_point("sensor", lt=7.0)
>>> # the sensor event occurred 2 to 5 seconds after the source point
>>> sync.assert_range(a0, t0, 2.0, 5.0)
>>> sync.external_bounds(a0)
ClockBound(lower=102.0, upper=105.0)
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from .distances import INF, WeightedDigraph, bellman_ford_from, bellman_ford_to
from .errors import SpecificationError, UnknownEventError
from .events import Event, EventId, EventKind, ProcessorId
from .intervals import ClockBound
from .syncgraph import ExplicitBoundsMapping, sync_graph_from_bounds
from .view import View

__all__ = ["GeneralSynchronizer"]


class GeneralSynchronizer:
    """Optimal synchronization over an explicit, arbitrary bounds mapping.

    Points are grouped by named *timelines* (the model's processors); per
    timeline, local times must strictly increase.  No bounds are implied
    automatically - even consecutive points of one timeline are
    unconstrained until asserted - except on the designated source
    timeline, whose local clock *defines* real time: consecutive source
    points are pinned to their exact local-time difference.
    """

    def __init__(self, source: ProcessorId = "source"):
        self.source = source
        self._view = View()
        self._bounds = ExplicitBoundsMapping()
        #: cached synchronization graph, rebuilt lazily after mutations
        self._graph: Optional[WeightedDigraph] = None

    # -- declaring the view -----------------------------------------------------------

    def add_point(self, timeline: ProcessorId, lt: float) -> EventId:
        """Declare the next point of ``timeline`` at local time ``lt``."""
        seq = self._view.last_seq(timeline) + 1
        event = Event(EventId(timeline, seq), lt, EventKind.INTERNAL)
        previous = self._view.last_event(timeline)
        self._view.add(event)
        if timeline == self.source and previous is not None:
            delta = lt - previous.lt
            self._bounds.set_range(event.eid, previous.eid, delta, delta)
        self._graph = None
        return event.eid

    def assert_upper(self, p: EventId, q: EventId, upper: float) -> None:
        """Assert ``RT(p) - RT(q) <= upper`` (the raw bounds-mapping form)."""
        self._require(p)
        self._require(q)
        self._bounds.set(p, q, upper)
        self._graph = None

    def assert_range(self, p: EventId, q: EventId, lower: float, upper: float) -> None:
        """Assert ``RT(p) - RT(q) in [lower, upper]``."""
        if lower > upper:
            raise SpecificationError(f"empty range [{lower}, {upper}]")
        self._require(p)
        self._require(q)
        self._bounds.set_range(p, q, lower, upper)
        self._graph = None

    def assert_drift(self, timeline: ProcessorId, alpha: float, beta: float) -> None:
        """Constrain all *currently declared* consecutive pairs of a
        timeline by a drift band, as the standard model would."""
        if not (0 < alpha <= beta):
            raise SpecificationError(f"bad drift band [{alpha}, {beta}]")
        events = self._view.events_of(timeline)
        for earlier, later in zip(events, events[1:]):
            delta = later.lt - earlier.lt
            self._bounds.set_range(later.eid, earlier.eid, alpha * delta, beta * delta)
        self._graph = None

    def _require(self, eid: EventId) -> None:
        if eid not in self._view:
            raise UnknownEventError(f"point {eid} was never declared")

    # -- queries -----------------------------------------------------------------------

    def _sync_graph(self) -> WeightedDigraph:
        if self._graph is None:
            self._graph = sync_graph_from_bounds(self._view, self._bounds)
        return self._graph

    def relative_bounds(self, p: EventId, q: EventId) -> ClockBound:
        """Theorem 2.1: the optimal interval for ``RT(p) - RT(q)``.

        Raises :class:`InconsistentSpecificationError` if the asserted
        bounds contradict each other (negative cycle).
        """
        self._require(p)
        self._require(q)
        graph = self._sync_graph()
        virt_del = self._view.event(p).lt - self._view.event(q).lt
        d_pq = bellman_ford_from(graph, p).get(q, INF)
        d_qp = bellman_ford_to(graph, p).get(q, INF)
        lower = -INF if math.isinf(d_qp) else virt_del - d_qp
        upper = INF if math.isinf(d_pq) else virt_del + d_pq
        return ClockBound(lower, upper)

    def external_bounds(self, p: EventId) -> ClockBound:
        """Optimal bounds on real time (source clock) at point ``p``."""
        self._require(p)
        sp_event = self._view.last_event(self.source)
        if sp_event is None:
            return ClockBound.unbounded()
        relative = self.relative_bounds(p, sp_event.eid)
        return relative.shift(sp_event.lt)

    def consistent(self) -> bool:
        """Whether the asserted bounds admit any execution at all."""
        from .distances import floyd_warshall
        from .errors import InconsistentSpecificationError

        try:
            floyd_warshall(self._sync_graph())
        except InconsistentSpecificationError:
            return False
        return True

    @property
    def view(self) -> View:
        return self._view

    @property
    def bounds(self) -> ExplicitBoundsMapping:
        return self._bounds

    def __len__(self) -> int:
        return len(self._view)
