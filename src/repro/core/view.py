"""Execution views as Lamport graphs.

A *view* is an execution with the real-time attributes projected away: a DAG
whose nodes are events labelled with local times, with an edge ``(p, q)``
when ``q`` receives the message sent at ``p`` or when ``q`` directly follows
``p`` at the same processor.  The *view from a point* ``p`` is the sub-view
induced by the events that happen-before ``p`` (including ``p`` itself).

Structural invariants maintained here:

* per processor, the events present form a contiguous prefix ``0..last``
  with strictly increasing local times (a causally closed set of events
  always induces per-processor prefixes);
* a receive event may only be added once its send event is present;
* events are immutable: re-adding an event with different attributes fails.

The full-information reference algorithm (Sec 2.3) and the test oracles keep
entire views; the efficient algorithm of Sec 3 deliberately does not.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .errors import UnknownEventError, ViewConflictError, ViewError
from .events import Event, EventId, EventKind, ProcessorId

__all__ = ["View"]


class View:
    """A causally closed set of events, queryable as a Lamport graph."""

    def __init__(self, events: Iterable[Event] = ()):
        self._events: Dict[EventId, Event] = {}
        #: highest sequence number present per processor (prefix property)
        self._last_seq: Dict[ProcessorId, int] = {}
        #: send events whose receive is not (yet) in the view
        self._undelivered: Set[EventId] = set()
        #: receive event id per send event id, for delivered messages
        self._delivery: Dict[EventId, EventId] = {}
        #: insertion order; a valid topological order of the view DAG
        self._order: List[EventId] = []
        for event in events:
            self.add(event)

    # -- construction ----------------------------------------------------------

    def add(self, event: Event) -> None:
        """Insert ``event``, enforcing causal closure and prefix integrity."""
        eid = event.eid
        existing = self._events.get(eid)
        if existing is not None:
            if existing != event:
                raise ViewConflictError(
                    f"event {eid} re-added with conflicting attributes: "
                    f"held {existing}, offered {event} "
                    f"(originating processor {eid.proc!r})",
                    ours=existing,
                    theirs=event,
                )
            return
        expected = self._last_seq.get(eid.proc, -1) + 1
        if eid.seq != expected:
            raise ViewError(
                f"event {eid} breaks the per-processor prefix: expected seq {expected}"
            )
        pred = eid.pred()
        if pred is not None and self._events[pred].lt >= event.lt:
            raise ViewError(
                f"local times must strictly increase at {eid.proc}: "
                f"{self._events[pred].lt} then {event.lt}"
            )
        if event.is_receive:
            send = self._events.get(event.send_eid)
            if send is None:
                raise ViewError(
                    f"receive {eid} added before its send {event.send_eid}"
                )
            if not send.is_send:
                raise ViewError(f"{event.send_eid} is not a send event")
            if send.dest != eid.proc:
                raise ViewError(
                    f"receive {eid} claims message {event.send_eid} addressed to {send.dest!r}"
                )
            if event.send_eid in self._delivery:
                raise ViewError(f"message {event.send_eid} delivered twice")
            self._undelivered.discard(event.send_eid)
            self._delivery[event.send_eid] = eid
        self._events[eid] = event
        self._last_seq[eid.proc] = eid.seq
        self._order.append(eid)
        if event.is_send:
            self._undelivered.add(eid)

    def merge(self, other: "View") -> None:
        """Union with another view (e.g. a received report).

        Events are inserted in the other view's topological order; shared
        events must agree.  A disagreement raises
        :class:`~repro.core.errors.ViewConflictError` carrying both copies
        and naming the originating processor - two views holding divergent
        copies of one event means that processor equivocated somewhere
        upstream (or state was corrupted), and the caller needs to know
        *who*, not just which event id.
        """
        for eid in other._order:
            event = other._events[eid]
            if eid not in self._events:
                self.add(event)
            elif self._events[eid] != event:
                raise ViewConflictError(
                    f"merge conflict at event {eid}: ours {self._events[eid]}, "
                    f"theirs {event} (originating processor {eid.proc!r})",
                    ours=self._events[eid],
                    theirs=event,
                )

    def copy(self) -> "View":
        dup = View()
        dup._events = dict(self._events)
        dup._last_seq = dict(self._last_seq)
        dup._undelivered = set(self._undelivered)
        dup._delivery = dict(self._delivery)
        dup._order = list(self._order)
        return dup

    # -- basic queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, eid: EventId) -> bool:
        return eid in self._events

    def __iter__(self) -> Iterator[EventId]:
        """Iterate event ids in a valid topological (insertion) order."""
        return iter(self._order)

    def event(self, eid: EventId) -> Event:
        try:
            return self._events[eid]
        except KeyError:
            raise UnknownEventError(f"event {eid} is not in the view") from None

    def events(self) -> Iterator[Event]:
        """All events in topological (insertion) order."""
        return (self._events[eid] for eid in self._order)

    @property
    def processors(self) -> Tuple[ProcessorId, ...]:
        return tuple(sorted(self._last_seq))

    def last_event(self, proc: ProcessorId) -> Optional[Event]:
        """The most recent event of ``proc`` in this view, if any."""
        seq = self._last_seq.get(proc)
        if seq is None:
            return None
        return self._events[EventId(proc, seq)]

    def last_seq(self, proc: ProcessorId) -> int:
        """Highest sequence number of ``proc`` present, or -1 if none."""
        return self._last_seq.get(proc, -1)

    def events_of(self, proc: ProcessorId) -> List[Event]:
        """All events of ``proc`` in sequence order."""
        return [
            self._events[EventId(proc, seq)]
            for seq in range(self._last_seq.get(proc, -1) + 1)
        ]

    def receive_of(self, send_eid: EventId) -> Optional[EventId]:
        """The receive event of the message sent at ``send_eid``, if delivered."""
        return self._delivery.get(send_eid)

    @property
    def undelivered_sends(self) -> Set[EventId]:
        """Sends whose matching receive is absent from this view."""
        return set(self._undelivered)

    # -- Lamport-graph structure -------------------------------------------------

    def parents(self, eid: EventId) -> List[EventId]:
        """Immediate happens-before predecessors of ``eid`` in the view DAG."""
        event = self.event(eid)
        out: List[EventId] = []
        pred = eid.pred()
        if pred is not None:
            out.append(pred)
        if event.is_receive:
            out.append(event.send_eid)
        return out

    def children(self, eid: EventId) -> List[EventId]:
        """Immediate happens-before successors of ``eid`` in the view DAG."""
        event = self.event(eid)
        out: List[EventId] = []
        succ = eid.succ()
        if succ in self._events:
            out.append(succ)
        if event.is_send and eid in self._delivery:
            out.append(self._delivery[eid])
        return out

    def happens_before(self, p: EventId, q: EventId) -> bool:
        """Lamport's ``p -> q`` (reflexive, per the paper's 'possibly empty path')."""
        if p not in self._events or q not in self._events:
            raise UnknownEventError(f"{p} or {q} not in view")
        if p == q:
            return True
        # Walk backwards from q; prune by per-processor sequence numbers.
        seen: Set[EventId] = {q}
        frontier = deque([q])
        while frontier:
            node = frontier.popleft()
            for parent in self.parents(node):
                if parent == p:
                    return True
                if parent in seen:
                    continue
                if parent.proc == p.proc and parent.seq < p.seq:
                    continue  # everything before p at p's processor is a dead end
                seen.add(parent)
                frontier.append(parent)
        return False

    def view_from(self, point: EventId) -> "View":
        """The local view from ``point``: events ``q`` with ``q -> point``.

        This is the complete information an on-line algorithm may use at
        ``point`` (Sec 2.2).
        """
        if point not in self._events:
            raise UnknownEventError(f"point {point} is not in the view")
        past: Set[EventId] = set()
        frontier = deque([point])
        while frontier:
            node = frontier.popleft()
            if node in past:
                continue
            past.add(node)
            for parent in self.parents(node):
                if parent not in past:
                    frontier.append(parent)
        sub = View()
        for eid in self._order:
            if eid in past:
                sub.add(self._events[eid])
        return sub

    def without_events(self, eids: Iterable[EventId]) -> "View":
        """A copy of this view with ``eids`` *and their causal futures* removed.

        Dropping an event forces dropping everything that happens-after it
        (later events at the same processor, receives of its sends, and so
        on transitively), keeping the result a valid causally closed view.
        This is the view-level quarantine primitive: evidence implicated in
        a specification violation can be excised wholesale, and any estimate
        computed from the remainder is sound (fewer constraints only widen
        bounds).  Unknown ids are ignored.
        """
        doomed: Set[EventId] = set()
        frontier = deque(eid for eid in eids if eid in self._events)
        while frontier:
            node = frontier.popleft()
            if node in doomed:
                continue
            doomed.add(node)
            frontier.extend(self.children(node))
        sub = View()
        for eid in self._order:
            if eid not in doomed:
                sub.add(self._events[eid])
        return sub

    # -- liveness (Definition 3.1) ------------------------------------------------

    def is_live(self, eid: EventId) -> bool:
        """Definition 3.1: last point at its processor, or undelivered send."""
        event = self.event(eid)
        if self._last_seq[event.proc] == eid.seq:
            return True
        return eid in self._undelivered

    def live_points(self) -> Set[EventId]:
        """All live points of the view (Definition 3.1)."""
        live = {
            EventId(proc, seq) for proc, seq in self._last_seq.items()
        }
        live.update(self._undelivered)
        return live

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"View({len(self._events)} events, {len(self._last_seq)} processors)"
