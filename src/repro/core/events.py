"""Events, event identifiers, and messages.

The paper models an execution as a sequence of *points* (message sends and
receives, plus any other locally observable steps).  Each point ``p`` has

* a unique processor ``loc(p)`` at which it occurs,
* a local time ``LT(p)`` read off that processor's hardware clock, and
* (only in the analysis, never visible to the algorithm) a real time
  ``RT(p)``.

We identify an event by the pair ``(processor, seq)`` where ``seq`` is the
0-based index of the event at its processor.  Per-processor local times are
required to be strictly increasing, so ``seq`` order and ``LT`` order agree;
using the integer sequence number avoids floating-point comparisons in
protocol watermarks.

A message is identified by its send event: every send event sends exactly
one message, so the send's :class:`EventId` doubles as the message id.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "ProcessorId",
    "EventId",
    "EventKind",
    "Event",
    "LinkId",
    "link_id",
]

#: Processors are identified by arbitrary (hashable, comparable) strings.
ProcessorId = str

#: Links are identified by the unordered pair of their endpoints, stored
#: as a sorted tuple so that ``link_id(u, v) == link_id(v, u)``.
LinkId = tuple

def link_id(u, v):
    """Return the canonical identifier of the (bidirectional) link ``{u, v}``.

    >>> link_id("b", "a")
    ('a', 'b')
    """
    if u == v:
        raise ValueError(f"a link must join two distinct processors, got {u!r} twice")
    return (u, v) if u <= v else (v, u)


class EventKind(enum.Enum):
    """Classification of a point of the execution."""

    SEND = "send"
    RECEIVE = "receive"
    INTERNAL = "internal"

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"EventKind.{self.name}"


@dataclass(frozen=True, order=True)
class EventId:
    """Globally unique identifier of an event: processor plus sequence number.

    Ordering is lexicographic ``(proc, seq)``; note that this is *not* the
    happens-before order, merely a stable total order convenient for
    deterministic iteration.
    """

    proc: ProcessorId
    seq: int
    #: cached ``hash((proc, seq))``; event ids are the keys of every hot
    #: protocol table (AGDP rows, history buffers, live sets), and the
    #: dataclass-generated hash allocates a fresh tuple per call
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.seq < 0:
            raise ValueError(f"event sequence numbers are non-negative, got {self.seq}")
        object.__setattr__(self, "_hash", hash((self.proc, self.seq)))

    def __hash__(self):
        return self._hash

    def pred(self) -> Optional["EventId"]:
        """The id of the previous event at the same processor, or ``None``."""
        if self.seq == 0:
            return None
        return EventId(self.proc, self.seq - 1)

    def succ(self) -> "EventId":
        """The id of the next event at the same processor."""
        return EventId(self.proc, self.seq + 1)

    def __str__(self):
        return f"{self.proc}#{self.seq}"


@dataclass(frozen=True)
class Event:
    """A point of the execution together with its locally observable data.

    Attributes
    ----------
    eid:
        The event's identifier (``loc`` and per-processor index).
    lt:
        Local time at which the event occurred, read from the hardware
        clock of ``eid.proc``.  Strictly increasing per processor.
    kind:
        Send, receive, or internal.
    dest:
        For sends: the processor the message is addressed to.
    send_eid:
        For receives: the id of the matching send event.  This is locally
        observable because every message carries its sender's id and
        sequence number.
    link:
        For sends and receives: the canonical id of the link the message
        travels on, used to look up the link's transit-time specification.
    """

    eid: EventId
    lt: float
    kind: EventKind
    dest: Optional[ProcessorId] = None
    send_eid: Optional[EventId] = None
    link: Optional[LinkId] = field(default=None)

    def __post_init__(self):
        if self.kind is EventKind.SEND:
            if self.dest is None:
                raise ValueError(f"send event {self.eid} needs a destination")
            if self.send_eid is not None:
                raise ValueError(f"send event {self.eid} must not reference another send")
            object.__setattr__(self, "link", link_id(self.eid.proc, self.dest))
        elif self.kind is EventKind.RECEIVE:
            if self.send_eid is None:
                raise ValueError(f"receive event {self.eid} needs its send event id")
            if self.send_eid.proc == self.eid.proc:
                raise ValueError(
                    f"receive event {self.eid} cannot receive from its own processor"
                )
            object.__setattr__(self, "link", link_id(self.eid.proc, self.send_eid.proc))
        else:
            if self.dest is not None or self.send_eid is not None:
                raise ValueError(f"internal event {self.eid} carries message attributes")

    @property
    def proc(self) -> ProcessorId:
        """The processor at which this event occurred (``loc`` in the paper)."""
        return self.eid.proc

    @property
    def seq(self) -> int:
        """The index of this event among the events of its processor."""
        return self.eid.seq

    @property
    def is_send(self) -> bool:
        return self.kind is EventKind.SEND

    @property
    def is_receive(self) -> bool:
        return self.kind is EventKind.RECEIVE

    def __str__(self):
        tag = {EventKind.SEND: "s", EventKind.RECEIVE: "r", EventKind.INTERNAL: "i"}[self.kind]
        return f"{self.eid}{tag}@{self.lt:g}"

    # -- JSON codec -------------------------------------------------------------

    def to_dict(self) -> Dict:
        """This event as a flat JSON-safe mapping.

        The shape matches the per-event entries of the archived-run format
        (:mod:`repro.sim.serialize`): ``proc``/``seq``/``lt``/``kind`` plus
        ``dest`` for sends and ``send: [proc, seq]`` for receives.  The
        derived ``link`` attribute is not stored; :meth:`from_dict`
        recomputes it.
        """
        entry: Dict = {
            "proc": self.eid.proc,
            "seq": self.eid.seq,
            "lt": self.lt,
            "kind": self.kind.value,
        }
        if self.is_send:
            entry["dest"] = self.dest
        if self.is_receive:
            entry["send"] = [self.send_eid.proc, self.send_eid.seq]
        return entry

    @classmethod
    def from_dict(cls, data: Dict) -> "Event":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad input.

        Built for untrusted bytes (the wire protocol decodes payload
        records through here), so every field is type-checked explicitly
        rather than trusted to crash somewhere downstream.
        """
        if not isinstance(data, dict):
            raise ValueError(f"event record must be a mapping, got {type(data).__name__}")
        proc = data.get("proc")
        if not isinstance(proc, str) or not proc:
            raise ValueError(f"event record needs a non-empty 'proc' string, got {proc!r}")
        seq = data.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise ValueError(f"event record needs a non-negative integer 'seq', got {seq!r}")
        lt = data.get("lt")
        if isinstance(lt, bool) or not isinstance(lt, (int, float)):
            raise ValueError(f"event record needs a numeric 'lt', got {lt!r}")
        lt = float(lt)
        if lt != lt or lt in (float("inf"), float("-inf")):
            raise ValueError(f"event local time must be finite, got {lt!r}")
        try:
            kind = EventKind(data.get("kind"))
        except ValueError:
            raise ValueError(f"unknown event kind {data.get('kind')!r}") from None
        dest = None
        send_eid = None
        if kind is EventKind.SEND:
            dest = data.get("dest")
            if not isinstance(dest, str) or not dest:
                raise ValueError(f"send record needs a non-empty 'dest' string, got {dest!r}")
        elif kind is EventKind.RECEIVE:
            ref = data.get("send")
            if (
                not isinstance(ref, (list, tuple))
                or len(ref) != 2
                or not isinstance(ref[0], str)
                or not ref[0]
                or not isinstance(ref[1], int)
                or isinstance(ref[1], bool)
                or ref[1] < 0
            ):
                raise ValueError(f"receive record needs 'send': [proc, seq], got {ref!r}")
            send_eid = EventId(ref[0], ref[1])
        return cls(eid=EventId(proc, seq), lt=lt, kind=kind, dest=dest, send_eid=send_eid)
