"""Real-time specifications: drift bounds, transit bounds, bounds mappings.

The paper expresses all timing knowledge uniformly as a *bounds mapping*
``B`` assigning to ordered event pairs an upper bound on the real-time
difference: an execution satisfies ``B`` iff ``RT(p) - RT(q) <= B(p, q)``
for all pairs.  Two families of bounds cover the systems studied:

* **Clock drift bounds.**  If ``p`` follows ``q`` at the same processor and
  the local clock advanced by ``delta = LT(p) - LT(q) >= 0`` between them,
  then ``RT(p) - RT(q)`` lies in ``[alpha * delta, beta * delta]`` where
  ``0 < alpha <= beta`` characterise the clock.  The paper's 100 ppm example
  is ``alpha = 0.9999``, ``beta = 1.0001``.  The source clock runs at real
  time: ``alpha = beta = 1``.

* **Message transit bounds.**  If ``q`` receives the message sent at ``p``
  over some link, then ``RT(q) - RT(p)`` lies in ``[lower, upper]`` with
  ``0 <= lower <= upper <= inf``.

A :class:`SystemSpec` bundles per-processor drift specs and per-link transit
specs together with the designated source processor; it is the static,
globally known configuration the synchronization algorithm interprets
timestamps against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .errors import SpecificationError
from .events import LinkId, ProcessorId, link_id

__all__ = [
    "TOP",
    "DriftSpec",
    "TransitSpec",
    "SystemSpec",
]

#: The paper's ``⊤``: the trivial upper bound meaning "no information".
TOP = math.inf


@dataclass(frozen=True)
class DriftSpec:
    """Bounds on elapsed real time per unit of elapsed local time.

    If a processor's clock advances by ``delta >= 0`` local time units
    between events ``q`` and ``p`` (``p`` later), then
    ``RT(p) - RT(q) in [alpha * delta, beta * delta]``.

    ``alpha = beta = 1`` describes a drift-free clock (e.g. the source).
    """

    alpha: float
    beta: float

    def __post_init__(self):
        if not (0 < self.alpha <= self.beta):
            raise SpecificationError(
                f"drift spec requires 0 < alpha <= beta, got alpha={self.alpha}, beta={self.beta}"
            )
        if math.isinf(self.beta):
            raise SpecificationError("drift spec beta must be finite")

    @classmethod
    def perfect(cls) -> "DriftSpec":
        """A drift-free clock: local elapsed time equals real elapsed time."""
        return cls(1.0, 1.0)

    @classmethod
    def from_ppm(cls, ppm: float) -> "DriftSpec":
        """Drift spec in the paper's parts-per-million style.

        A ``ppm``-accurate clock showing ``delta`` elapsed local units
        guarantees real elapsed time in
        ``[(1 - ppm*1e-6) * delta, (1 + ppm*1e-6) * delta]``.
        """
        if ppm < 0:
            raise SpecificationError(f"ppm must be non-negative, got {ppm}")
        rho = ppm * 1e-6
        if rho >= 1:
            raise SpecificationError(f"ppm={ppm} implies a clock that can stop")
        return cls(1.0 - rho, 1.0 + rho)

    @classmethod
    def from_rate_bounds(cls, r_min: float, r_max: float) -> "DriftSpec":
        """Drift spec for a clock whose rate ``dLT/dRT`` stays in [r_min, r_max].

        A rate-``r`` clock showing ``delta`` local units took ``delta / r``
        real units, hence ``alpha = 1 / r_max`` and ``beta = 1 / r_min``.
        """
        if not (0 < r_min <= r_max) or math.isinf(r_max):
            raise SpecificationError(
                f"rate bounds require 0 < r_min <= r_max < inf, got [{r_min}, {r_max}]"
            )
        return cls(1.0 / r_max, 1.0 / r_min)

    @property
    def is_drift_free(self) -> bool:
        return self.alpha == 1.0 and self.beta == 1.0

    @property
    def max_deviation(self) -> float:
        """Worst one-sided deviation per local time unit, ``max(beta-1, 1-alpha)``."""
        return max(self.beta - 1.0, 1.0 - self.alpha)

    def elapsed_real_bounds(self, delta_lt: float) -> Tuple[float, float]:
        """Bounds on elapsed real time for ``delta_lt >= 0`` elapsed local time."""
        if delta_lt < 0:
            raise SpecificationError(f"elapsed local time must be >= 0, got {delta_lt}")
        return self.alpha * delta_lt, self.beta * delta_lt


@dataclass(frozen=True)
class TransitSpec:
    """Bounds on the transit time of a message over a link.

    ``RT(receive) - RT(send) in [lower, upper]``; ``upper`` may be
    ``math.inf`` (the paper's ``⊤``) when no upper bound is known, and in
    any physical system ``lower >= 0``.
    """

    lower: float = 0.0
    upper: float = TOP

    def __post_init__(self):
        if not (0 <= self.lower <= self.upper):
            raise SpecificationError(
                f"transit spec requires 0 <= lower <= upper, got [{self.lower}, {self.upper}]"
            )
        if math.isinf(self.lower):
            raise SpecificationError("transit spec lower bound must be finite")

    @classmethod
    def unbounded(cls) -> "TransitSpec":
        """Completely arbitrary delivery time (only non-negativity known)."""
        return cls(0.0, TOP)

    @classmethod
    def exactly(cls, delay: float) -> "TransitSpec":
        """A link with a known, fixed transit time."""
        return cls(delay, delay)

    @property
    def is_bounded(self) -> bool:
        return not math.isinf(self.upper)

    @property
    def slack(self) -> float:
        """The uncertainty window ``upper - lower`` of the link."""
        return self.upper - self.lower


@dataclass
class SystemSpec:
    """The full, static real-time specification of a system.

    Attributes
    ----------
    source:
        The designated source processor, whose clock runs at real time.
        Its drift spec is forced to :meth:`DriftSpec.perfect`.
    drift:
        Advertised drift bounds per processor.
    transit:
        Transit bounds per link.  Bidirectional links may be asymmetric:
        the key is the canonical :func:`link_id` and the value maps the
        *sending* processor to that direction's spec; a plain
        :class:`TransitSpec` value means both directions share it.
    """

    source: ProcessorId
    drift: Dict[ProcessorId, DriftSpec] = field(default_factory=dict)
    transit: Dict[LinkId, object] = field(default_factory=dict)

    def __post_init__(self):
        self.drift = dict(self.drift)
        self.drift[self.source] = DriftSpec.perfect()
        normalized: Dict[LinkId, Dict[ProcessorId, TransitSpec]] = {}
        for lid, spec in self.transit.items():
            u, v = lid
            canon = link_id(u, v)
            if isinstance(spec, TransitSpec):
                normalized[canon] = {u: spec, v: spec}
            else:
                directions = dict(spec)
                unknown = set(directions) - {u, v}
                if unknown:
                    raise SpecificationError(
                        f"transit spec for link {canon} names non-endpoint(s) {sorted(unknown)}"
                    )
                for endpoint in (u, v):
                    directions.setdefault(endpoint, TransitSpec.unbounded())
                normalized[canon] = directions
        self.transit = normalized

    # -- construction helpers -------------------------------------------------

    @classmethod
    def build(
        cls,
        source: ProcessorId,
        processors: Iterable[ProcessorId],
        links: Iterable[Tuple[ProcessorId, ProcessorId]],
        *,
        drift: Optional[Mapping[ProcessorId, DriftSpec]] = None,
        default_drift: Optional[DriftSpec] = None,
        transit: Optional[Mapping[LinkId, TransitSpec]] = None,
        default_transit: Optional[TransitSpec] = None,
    ) -> "SystemSpec":
        """Assemble a spec from a topology plus per-item or default bounds."""
        default_drift = default_drift or DriftSpec.from_ppm(100)
        default_transit = default_transit or TransitSpec.unbounded()
        drift = dict(drift or {})
        transit = dict(transit or {})
        drift_map = {p: drift.get(p, default_drift) for p in processors}
        transit_map: Dict[LinkId, object] = {}
        for u, v in links:
            lid = link_id(u, v)
            transit_map[lid] = transit.get(lid, default_transit)
        return cls(source=source, drift=drift_map, transit=transit_map)

    # -- lookups ---------------------------------------------------------------

    @property
    def processors(self) -> Tuple[ProcessorId, ...]:
        return tuple(sorted(self.drift))

    @property
    def links(self) -> Tuple[LinkId, ...]:
        return tuple(sorted(self.transit))

    def drift_of(self, proc: ProcessorId) -> DriftSpec:
        try:
            return self.drift[proc]
        except KeyError:
            raise SpecificationError(f"no drift spec for processor {proc!r}") from None

    def transit_of(self, sender: ProcessorId, receiver: ProcessorId) -> TransitSpec:
        """The transit spec for messages sent from ``sender`` to ``receiver``."""
        lid = link_id(sender, receiver)
        try:
            return self.transit[lid][sender]
        except KeyError:
            raise SpecificationError(
                f"no transit spec for link {lid} (direction {sender!r} -> {receiver!r})"
            ) from None

    def has_link(self, u: ProcessorId, v: ProcessorId) -> bool:
        return link_id(u, v) in self.transit

    def neighbors(self, proc: ProcessorId) -> Tuple[ProcessorId, ...]:
        """All processors sharing a link with ``proc``, sorted."""
        out = []
        for u, v in self.transit:
            if u == proc:
                out.append(v)
            elif v == proc:
                out.append(u)
        return tuple(sorted(out))

    def max_degree(self) -> int:
        degree: Dict[ProcessorId, int] = {p: 0 for p in self.drift}
        for u, v in self.transit:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        return max(degree.values(), default=0)

    def diameter(self) -> int:
        """Hop diameter of the link topology (BFS from every node)."""
        procs = self.processors
        adjacency: Dict[ProcessorId, list] = {p: [] for p in procs}
        for u, v in self.transit:
            adjacency[u].append(v)
            adjacency[v].append(u)
        worst = 0
        for start in procs:
            dist = {start: 0}
            frontier = [start]
            while frontier:
                nxt = []
                for node in frontier:
                    for nb in adjacency[node]:
                        if nb not in dist:
                            dist[nb] = dist[node] + 1
                            nxt.append(nb)
                frontier = nxt
            if len(dist) != len(procs):
                raise SpecificationError("topology is disconnected; diameter undefined")
            worst = max(worst, max(dist.values()))
        return worst
