"""Witness paths: *why* is the optimal interval exactly this wide?

By Theorem 2.1 each endpoint of an optimal interval is a shortest-path
distance in the synchronization graph, so each endpoint has a *witness*:
the chain of concrete constraints (message transit bounds and drift
bounds between specific events) whose weights sum to it.  This module
reconstructs and renders those chains - the production-debugging answer
to "which link/clock do I improve to tighten my synchronization?".

A witness step is one constraint:

* ``drift`` - consecutive events at one processor, contributing
  ``(beta - 1) * delta`` or ``(1 - alpha) * delta``;
* ``transit-upper`` / ``transit-lower`` - a message's bound, contributing
  ``upper - observed`` or ``observed - lower``.

The sum of contributions equals the distance, i.e. the slack the endpoint
adds beyond the raw local-time difference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from .distances import INF, WeightedDigraph
from .errors import InconsistentSpecificationError, UnknownEventError
from .events import EventId
from .specs import SystemSpec
from .syncgraph import build_sync_graph
from .theorem import source_point
from .view import View

__all__ = ["WitnessStep", "Witness", "explain_external_bounds"]


@dataclass(frozen=True)
class WitnessStep:
    """One constraint on the witness path."""

    tail: EventId
    head: EventId
    weight: float
    kind: str  # "drift" | "transit-upper" | "transit-lower"

    def describe(self) -> str:
        return f"{self.tail} -> {self.head}  {self.kind:14s} {self.weight:+.6g}"


@dataclass(frozen=True)
class Witness:
    """A full witness: the path certifying one interval endpoint."""

    endpoint: str  # "upper" | "lower"
    distance: float
    steps: Tuple[WitnessStep, ...]

    def describe(self) -> str:
        lines = [
            f"{self.endpoint} endpoint: slack {self.distance:.6g} over "
            f"{len(self.steps)} constraint(s)"
        ]
        lines += ["  " + step.describe() for step in self.steps]
        return "\n".join(lines)

    def dominant_step(self) -> Optional[WitnessStep]:
        """The single constraint contributing the most slack.

        Most meaningful when the witness slack is positive (the typical
        lower-endpoint witness): it names the lever to pull - usually a
        sloppy link's transit bound or a long silent period's drift.
        """
        if not self.steps:
            return None
        return max(self.steps, key=lambda step: step.weight)

    def condensed(self) -> List[str]:
        """Human-scale summary: consecutive drift steps at one processor
        are merged into a single line; transit steps stay individual."""
        lines: List[str] = []
        run_proc: Optional[str] = None
        run_weight = 0.0
        run_count = 0

        def flush():
            nonlocal run_proc, run_weight, run_count
            if run_proc is not None:
                lines.append(
                    f"{run_proc}: {run_count} drift step(s)  {run_weight:+.6g}"
                )
                run_proc = None
                run_weight = 0.0
                run_count = 0

        for step in self.steps:
            if step.kind == "drift":
                if run_proc != step.tail.proc:
                    flush()
                    run_proc = step.tail.proc
                run_weight += step.weight
                run_count += 1
            else:
                flush()
                lines.append(step.describe())
        flush()
        return lines

    def describe_condensed(self) -> str:
        header = (
            f"{self.endpoint} endpoint: slack {self.distance:+.6g} over "
            f"{len(self.steps)} constraint(s)"
        )
        return "\n".join([header] + ["  " + line for line in self.condensed()])


def _shortest_path_with_parents(
    graph: WeightedDigraph, start: Hashable
) -> Tuple[Dict, Dict]:
    """Bellman-Ford (SPFA) that also records predecessor edges."""
    dist: Dict = {start: 0.0}
    parent: Dict = {}
    queue = [start]
    in_queue = {start}
    passes: Dict = {}
    limit = len(graph) + 1
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        in_queue.discard(node)
        if head > 1024 and head * 2 > len(queue):
            queue = queue[head:]
            head = 0
        base = dist[node]
        for succ, weight in graph.successors(node).items():
            candidate = base + weight
            if candidate < dist.get(succ, INF) - 1e-18:
                dist[succ] = candidate
                parent[succ] = node
                passes[succ] = passes.get(succ, 0) + 1
                if passes[succ] > limit:
                    raise InconsistentSpecificationError(
                        "negative cycle while reconstructing a witness path"
                    )
                if succ not in in_queue:
                    in_queue.add(succ)
                    queue.append(succ)
    return dist, parent


def _classify_edge(view: View, spec: SystemSpec, tail: EventId, head: EventId) -> str:
    if tail.proc == head.proc:
        return "drift"
    tail_event = view.event(tail)
    head_event = view.event(head)
    if tail_event.is_receive and tail_event.send_eid == head:
        return "transit-upper"   # receive -> send carries the upper bound
    if head_event.is_receive and head_event.send_eid == tail:
        return "transit-lower"   # send -> receive carries the lower bound
    return "explicit"


def _walk(
    graph: WeightedDigraph,
    parent: Dict,
    view: View,
    spec: SystemSpec,
    start: EventId,
    goal: EventId,
) -> Tuple[WitnessStep, ...]:
    chain: List[WitnessStep] = []
    node = goal
    while node != start:
        previous = parent[node]
        chain.append(
            WitnessStep(
                tail=previous,
                head=node,
                weight=graph.weight(previous, node),
                kind=_classify_edge(view, spec, previous, node),
            )
        )
        node = previous
    chain.reverse()
    return tuple(chain)


def explain_external_bounds(
    view: View, spec: SystemSpec, p: EventId
) -> Dict[str, Optional[Witness]]:
    """Witnesses for both endpoints of the optimal interval at ``p``.

    Returns ``{"upper": Witness | None, "lower": Witness | None}`` with
    ``None`` for infinite (unconstrained) endpoints.  The ``upper``
    witness is the shortest path ``p -> sp`` (its slack is added above
    ``LT(p)``); the ``lower`` witness is the shortest path ``sp -> p``.
    """
    if p not in view:
        raise UnknownEventError(f"point {p} is not in the view")
    sp = source_point(view, spec)
    out: Dict[str, Optional[Witness]] = {"upper": None, "lower": None}
    if sp is None:
        return out
    graph = build_sync_graph(view, spec)
    dist_from_p, parent_from_p = _shortest_path_with_parents(graph, p)
    if not math.isinf(dist_from_p.get(sp, INF)):
        out["upper"] = Witness(
            endpoint="upper",
            distance=dist_from_p[sp],
            steps=_walk(graph, parent_from_p, view, spec, p, sp),
        )
    dist_from_sp, parent_from_sp = _shortest_path_with_parents(graph, sp)
    if not math.isinf(dist_from_sp.get(p, INF)):
        out["lower"] = Witness(
            endpoint="lower",
            distance=dist_from_sp[p],
            steps=_walk(graph, parent_from_sp, view, spec, sp, p),
        )
    return out
