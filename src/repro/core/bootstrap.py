"""Late-joiner bootstrap snapshots (dynamic membership support).

A processor that joins an execution late cannot replay the whole run; it
needs exactly the state that Theorem 2.1 says matters.  Lemmas 3.4/3.5
make that state small: every future synchronization-graph edge is
incident only to *live* points, and garbage collection preserves exact
distances between live points, so a sponsor's

* live-point set (last event per processor + undelivered sends),
* finite live-live distance matrix,
* history knowledge frontier (the watermark handoff - what the joiner
  may claim to already know), and
* loss flags (Sec 3.3)

are a sufficient interface for the joiner to continue as if it had
absorbed the sponsor's entire view.  Re-inserting the distance entries
as edges reconstructs the metric closure exactly (triangle inequality +
the Ausiello relaxation), and by Lemma 3.1 the sponsor's view at its
latest point *is* the causal past of the handshake message, so a
bootstrap followed by the handshake receive is information-equivalent to
full replay - the joiner's first estimate is already optimal.

The snapshot is a dumb, JSON-codable container: it crosses the wire in
the runtime's ``join`` handshake and rides inside the simulator's
membership events, so the codec is strict about shapes (untrusted-bytes
path, like :meth:`~repro.core.history.HistoryPayload.from_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .events import EventId, ProcessorId

__all__ = ["BootstrapSnapshot"]


def _check_eid_pair(entry, what: str) -> EventId:
    if (
        not isinstance(entry, (list, tuple))
        or len(entry) != 2
        or not isinstance(entry[0], str)
        or not entry[0]
        or not isinstance(entry[1], int)
        or isinstance(entry[1], bool)
        or entry[1] < 0
    ):
        raise ValueError(f"{what} must be [proc, seq], got {entry!r}")
    return EventId(entry[0], entry[1])


def _check_number(value, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{what} must be a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class BootstrapSnapshot:
    """One sponsor's handoff state for a late joiner.

    ``last`` holds ``(proc, seq, lt, is_send)`` per known processor;
    ``undelivered`` the in-flight sends ``(proc, seq, lt)``;
    ``known`` the history frontier ``(proc, seq)`` (sequence watermarks);
    ``loss_flags`` the Sec 3.3 flags; ``distances`` every finite
    live-live distance ``(x_proc, x_seq, y_proc, y_seq, weight)``;
    ``source_rep`` the sponsor's latest known source point, if any.
    """

    sponsor: ProcessorId
    last: Tuple[Tuple[ProcessorId, int, float, bool], ...]
    undelivered: Tuple[Tuple[ProcessorId, int, float], ...] = ()
    known: Tuple[Tuple[ProcessorId, int], ...] = ()
    loss_flags: Tuple[EventId, ...] = ()
    distances: Tuple[Tuple[ProcessorId, int, ProcessorId, int, float], ...] = ()
    source_rep: Optional[EventId] = None

    def live_points(self) -> Tuple[EventId, ...]:
        """Every live point of the snapshot, sorted for determinism."""
        points = {EventId(proc, seq) for proc, seq, _lt, _is_send in self.last}
        points.update(EventId(proc, seq) for proc, seq, _lt in self.undelivered)
        return tuple(sorted(points))

    def frontier(self) -> Dict[ProcessorId, int]:
        return dict(self.known)

    # -- JSON codec -------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe form; exact inverse of :meth:`from_dict`."""
        return {
            "sponsor": self.sponsor,
            "last": [[p, s, lt, send] for p, s, lt, send in self.last],
            "undelivered": [[p, s, lt] for p, s, lt in self.undelivered],
            "known": [[p, s] for p, s in self.known],
            "loss_flags": [[eid.proc, eid.seq] for eid in self.loss_flags],
            "distances": [[xp, xs, yp, ys, w] for xp, xs, yp, ys, w in self.distances],
            "source_rep": (
                None
                if self.source_rep is None
                else [self.source_rep.proc, self.source_rep.seq]
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BootstrapSnapshot":
        """Strict decode for untrusted bytes; raises ``ValueError`` on bad shapes."""
        if not isinstance(data, dict):
            raise ValueError(
                f"bootstrap snapshot must be a mapping, got {type(data).__name__}"
            )
        sponsor = data.get("sponsor")
        if not isinstance(sponsor, str) or not sponsor:
            raise ValueError(f"snapshot sponsor must be a processor id, got {sponsor!r}")
        last = []
        for entry in cls._seq(data, "last"):
            if not isinstance(entry, (list, tuple)) or len(entry) != 4:
                raise ValueError(f"last entry must be [proc, seq, lt, is_send], got {entry!r}")
            eid = _check_eid_pair(entry[:2], "last entry")
            lt = _check_number(entry[2], "last entry lt")
            if not isinstance(entry[3], bool):
                raise ValueError(f"last entry is_send must be a bool, got {entry[3]!r}")
            last.append((eid.proc, eid.seq, lt, entry[3]))
        undelivered = []
        for entry in cls._seq(data, "undelivered"):
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise ValueError(f"undelivered entry must be [proc, seq, lt], got {entry!r}")
            eid = _check_eid_pair(entry[:2], "undelivered entry")
            undelivered.append((eid.proc, eid.seq, _check_number(entry[2], "undelivered lt")))
        known = []
        for entry in cls._seq(data, "known"):
            eid = _check_eid_pair(entry, "known entry")
            known.append((eid.proc, eid.seq))
        flags = tuple(
            _check_eid_pair(entry, "loss flag") for entry in cls._seq(data, "loss_flags")
        )
        distances = []
        for entry in cls._seq(data, "distances"):
            if not isinstance(entry, (list, tuple)) or len(entry) != 5:
                raise ValueError(
                    f"distance entry must be [xp, xs, yp, ys, w], got {entry!r}"
                )
            x = _check_eid_pair(entry[:2], "distance endpoint")
            y = _check_eid_pair(entry[2:4], "distance endpoint")
            distances.append(
                (x.proc, x.seq, y.proc, y.seq, _check_number(entry[4], "distance weight"))
            )
        rep_raw = data.get("source_rep")
        source_rep = None if rep_raw is None else _check_eid_pair(rep_raw, "source_rep")
        return cls(
            sponsor=sponsor,
            last=tuple(last),
            undelivered=tuple(undelivered),
            known=tuple(known),
            loss_flags=flags,
            distances=tuple(distances),
            source_rep=source_rep,
        )

    @staticmethod
    def _seq(data: Dict, key: str):
        raw = data.get(key, [])
        if not isinstance(raw, (list, tuple)):
            raise ValueError(f"'{key}' must be a list, got {type(raw).__name__}")
        return raw
