"""The passive clock-synchronization-algorithm (CSA) interface (Sec 2.2).

The paper studies *passive* algorithms: a CSA is a layer between the send
module (which decides when messages flow) and the network.  It may fill
information into outgoing messages and read information from incoming
ones, but it never initiates traffic and never alters timing.  This module
defines that interface; the optimal algorithms and every baseline implement
it, which is what lets experiment E8 attach several estimators to the same
execution and compare them point-for-point.

Lifecycle per processor:

* ``on_send(event)`` - called at each send event of this processor;
  returns an opaque payload the network will carry alongside the
  application message.
* ``on_receive(event, payload)`` - called at each receive event with the
  payload produced by the *same estimator type* at the sender.
* ``on_internal(event)`` - any other locally observable point.
* ``on_delivery_confirmed(send_eid)`` / ``on_loss_detected(send_eid)`` -
  optional signals from the system's delivery/loss detection mechanism
  (Sec 3.3); reliable-network runs never call them.
* ``estimate()`` - the external-synchronization interval at the last local
  point; ``estimate_now(local_time)`` - the interval for the present local
  clock reading, advanced by the processor's own drift bounds.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .errors import EstimateUnavailableError
from .events import Event, EventId, ProcessorId
from .intervals import ClockBound
from .specs import SystemSpec

__all__ = [
    "DEFAULT_BLAME_WEIGHTS",
    "Estimator",
    "EvictionEvent",
    "SuspicionPolicy",
    "SuspicionTracker",
]


# -- Byzantine-input suspicion (see docs/FAULTS.md) -------------------------------
#
# Dropping constraints is always sound (Theorem 2.1: fewer edges only widen
# bounds), so an estimator may *evict* a processor it distrusts without ever
# jeopardising validity - the only cost of a wrong eviction is precision.
# That asymmetry is what makes a simple additive suspicion score safe: blame
# is attributed by the validation layer (:mod:`repro.core.validate`) and by
# quarantined negative-cycle edges; past a threshold the accused processor's
# events are excluded from the synchronization graph; after a blame-free
# window it is rehabilitated, re-admitting only events *after* the frontier
# known at rehabilitation time (old, possibly poisoned claims stay excised).


#: Default blame weight per anomaly kind (``threshold`` defaults to 3.0).
#:
#: The grading encodes how *attributable* each shape is:
#:
#: * weight >= threshold - evidence only the accused can have produced
#:   (self-contradictory claims of one processor, a negative cycle
#:   anchored on the receiver's own events): instant eviction.
#: * 1.0 - sender-attributed shapes an honest relay cannot ship (fresh
#:   gaps, malformed records), recurring holes in an
#:   already-suspected origin's stream (what keeps a persistent liar
#:   from rehabilitating), and negative cycles spanning several
#:   untrusted processors (someone on the cycle lied, but any single
#:   accused may be an honest bystander - sustained lying, not one
#:   shared sighting, is what evicts).
#: * 0.0 - ledger-only: shapes that honest processors legitimately
#:   produce downstream of *someone else's* quarantine (a receive whose
#:   send was refused here, echoes).  Blaming these lets one liar get
#:   its honest neighbors evicted - the chaos suite's first Byzantine
#:   run demonstrated exactly that cascade.
DEFAULT_BLAME_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("implausible", 3.0),
    ("equivocation", 3.0),
    ("non-monotone", 3.0),
    ("forged-self", 3.0),
    ("conflict", 1.5),
    ("implausible-shared", 1.0),
    ("malformed", 1.0),
    ("gap", 1.0),
    ("quarantine", 1.0),
    ("phantom-send", 1.0),
    ("dangling-send", 0.0),
    ("bad-send-ref", 0.0),
    ("double-delivery", 0.0),
    ("bad-flag", 0.0),
)


@dataclass(frozen=True)
class SuspicionPolicy:
    """Tunables for per-processor suspicion scoring.

    ``threshold`` is the cumulative blame weight at which a processor is
    evicted; ``clean_window`` is the local-time span without new blame
    after which an evicted processor is rehabilitated.  ``blame_weights``
    overrides the per-kind weight; kinds not listed fall back to
    :data:`DEFAULT_BLAME_WEIGHTS` and then to 1.0.  A kind weighing 0 is
    ledgered by the validator but never scores.
    """

    threshold: float = 3.0
    clean_window: float = 60.0
    blame_weights: Tuple[Tuple[str, float], ...] = ()

    def weight(self, kind: str) -> float:
        for name, value in self.blame_weights:
            if name == kind:
                return value
        for name, value in DEFAULT_BLAME_WEIGHTS:
            if name == kind:
                return value
        return 1.0


@dataclass(frozen=True)
class EvictionEvent:
    """One transition of the suspicion state machine, for surfacing in results."""

    proc: ProcessorId
    #: ``"evicted"`` or ``"rehabilitated"``
    action: str
    #: local time (at the judging processor) of the transition
    at_lt: float
    #: suspicion score at the moment of transition
    score: float
    detail: str = ""


class SuspicionTracker:
    """Per-processor blame accounting with eviction and rehabilitation.

    One tracker lives inside each hardened estimator and judges *remote*
    processors from that estimator's standpoint; protected processors
    (self and the source) are never blamed.  The tracker only does the
    bookkeeping - excluding evicted evidence from the synchronization
    graph is the owning estimator's job (it knows how to rebuild).
    """

    def __init__(
        self,
        policy: SuspicionPolicy,
        protect: Iterable[ProcessorId] = (),
    ):
        self.policy = policy
        self.protected: FrozenSet[ProcessorId] = frozenset(protect)
        #: cumulative blame weight per processor
        self.scores: Dict[ProcessorId, float] = {}
        #: blame multiplicity per (processor, kind), for diagnostics
        self.blame_counts: Dict[Tuple[ProcessorId, str], int] = {}
        #: local time of the most recent blame per processor
        self.last_blame_lt: Dict[ProcessorId, float] = {}
        #: rehabilitated processors re-admit only events with seq > this
        self.excised_until: Dict[ProcessorId, int] = {}
        #: chronological log of evictions and rehabilitations
        self.events: List[EvictionEvent] = []
        self._evicted: Dict[ProcessorId, float] = {}

    # -- blame -------------------------------------------------------------------

    def blame(
        self, proc: ProcessorId, kind: str, at_lt: float, detail: str = ""
    ) -> bool:
        """Attribute one unit of ``kind`` blame; return True on new eviction."""
        if proc in self.protected:
            return False
        weight = self.policy.weight(kind)
        if weight <= 0:
            return False
        self.scores[proc] = self.scores.get(proc, 0.0) + weight
        key = (proc, kind)
        self.blame_counts[key] = self.blame_counts.get(key, 0) + 1
        self.last_blame_lt[proc] = at_lt
        if proc not in self._evicted and self.scores[proc] >= self.policy.threshold:
            self._evicted[proc] = at_lt
            self.events.append(
                EvictionEvent(proc, "evicted", at_lt, self.scores[proc], detail or kind)
            )
            return True
        return False

    # -- state queries -----------------------------------------------------------

    def is_evicted(self, proc: ProcessorId) -> bool:
        return proc in self._evicted

    @property
    def evicted_procs(self) -> FrozenSet[ProcessorId]:
        return frozenset(self._evicted)

    def suspected(self) -> FrozenSet[ProcessorId]:
        """Processors with any positive score (including the evicted)."""
        return frozenset(p for p, s in self.scores.items() if s > 0)

    def is_excluded(self, eid: EventId) -> bool:
        """Should this event stay out of the synchronization graph?"""
        if eid.proc in self._evicted:
            return True
        return eid.seq <= self.excised_until.get(eid.proc, -1)

    # -- rehabilitation ----------------------------------------------------------

    def due_for_rehabilitation(self, now_lt: float) -> List[ProcessorId]:
        """Evicted processors whose blame-free window has elapsed."""
        return sorted(
            proc
            for proc in self._evicted
            if now_lt - self.last_blame_lt.get(proc, now_lt)
            >= self.policy.clean_window
        )

    def rehabilitate(self, proc: ProcessorId, at_lt: float, frontier: int) -> None:
        """Un-evict ``proc``; events up to ``frontier`` stay excised forever.

        Re-admitting the pre-eviction claims would re-import whatever
        earned the eviction, so rehabilitation is forward-only: the score
        resets and only events with ``seq > frontier`` enter the graph.
        """
        if proc not in self._evicted:
            raise ValueError(f"{proc!r} is not evicted")
        del self._evicted[proc]
        self.scores[proc] = 0.0
        self.excised_until[proc] = max(frontier, self.excised_until.get(proc, -1))
        self.events.append(
            EvictionEvent(
                proc,
                "rehabilitated",
                at_lt,
                0.0,
                f"events up to seq {frontier} remain excised",
            )
        )


class Estimator(abc.ABC):
    """Abstract passive external-synchronization estimator."""

    #: short identifier used to route payloads between peer estimators
    name: str = "estimator"

    def __init__(self, proc: ProcessorId, spec: SystemSpec):
        self.proc = proc
        self.spec = spec
        self._last_local: Optional[Event] = None

    # -- event hooks -------------------------------------------------------------

    @abc.abstractmethod
    def on_send(self, event: Event) -> object:
        """Handle a local send event; return the payload to piggyback."""

    @abc.abstractmethod
    def on_receive(self, event: Event, payload: object) -> None:
        """Handle a local receive event carrying a peer's payload."""

    def on_internal(self, event: Event) -> None:
        """Handle a local internal event (default: just track it)."""
        self._track_local(event)

    def on_delivery_confirmed(self, send_eid: EventId) -> None:
        """The message sent at ``send_eid`` is known to have been delivered."""

    def on_loss_detected(self, send_eid: EventId) -> None:
        """The message sent at ``send_eid`` is known to have been lost."""

    # -- estimates ----------------------------------------------------------------

    @abc.abstractmethod
    def estimate(self) -> ClockBound:
        """Source-clock bounds at this processor's last local event."""

    def estimate_now(self, local_time: float) -> ClockBound:
        """Source-clock bounds at the current local clock reading.

        Derived from :meth:`estimate` by advancing through this processor's
        drift spec over the local time elapsed since the last event.
        """
        base = self.estimate()
        if self._last_local is None:
            return base
        elapsed = local_time - self._last_local.lt
        if elapsed < 0:
            raise ValueError(
                f"local time {local_time} precedes last event at {self._last_local.lt}"
            )
        if not base.is_bounded and base.lower == -base.upper:
            return base  # still completely uninformed
        return base.advance(elapsed, self.spec.drift_of(self.proc))

    def estimate_strict(self) -> ClockBound:
        """Like :meth:`estimate`, but raises
        :class:`~repro.core.errors.EstimateUnavailableError` instead of
        returning an interval with an infinite endpoint.
        """
        bound = self.estimate()
        if not bound.is_bounded:
            raise EstimateUnavailableError(
                f"{self.proc!r} has no bounded source estimate yet"
            )
        return bound

    # -- shared helpers -------------------------------------------------------------

    @property
    def last_local_event(self) -> Optional[Event]:
        return self._last_local

    def _track_local(self, event: Event) -> None:
        if event.proc != self.proc:
            raise ValueError(
                f"estimator of {self.proc!r} given event of {event.proc!r}"
            )
        if self._last_local is not None and event.lt <= self._last_local.lt:
            raise ValueError(
                f"local time went backwards at {self.proc!r}: "
                f"{self._last_local.lt} then {event.lt}"
            )
        self._last_local = event
