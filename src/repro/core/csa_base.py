"""The passive clock-synchronization-algorithm (CSA) interface (Sec 2.2).

The paper studies *passive* algorithms: a CSA is a layer between the send
module (which decides when messages flow) and the network.  It may fill
information into outgoing messages and read information from incoming
ones, but it never initiates traffic and never alters timing.  This module
defines that interface; the optimal algorithms and every baseline implement
it, which is what lets experiment E8 attach several estimators to the same
execution and compare them point-for-point.

Lifecycle per processor:

* ``on_send(event)`` - called at each send event of this processor;
  returns an opaque payload the network will carry alongside the
  application message.
* ``on_receive(event, payload)`` - called at each receive event with the
  payload produced by the *same estimator type* at the sender.
* ``on_internal(event)`` - any other locally observable point.
* ``on_delivery_confirmed(send_eid)`` / ``on_loss_detected(send_eid)`` -
  optional signals from the system's delivery/loss detection mechanism
  (Sec 3.3); reliable-network runs never call them.
* ``estimate()`` - the external-synchronization interval at the last local
  point; ``estimate_now(local_time)`` - the interval for the present local
  clock reading, advanced by the processor's own drift bounds.
"""

from __future__ import annotations

import abc
from typing import Optional

from .errors import EstimateUnavailableError
from .events import Event, EventId, ProcessorId
from .intervals import ClockBound
from .specs import SystemSpec

__all__ = ["Estimator"]


class Estimator(abc.ABC):
    """Abstract passive external-synchronization estimator."""

    #: short identifier used to route payloads between peer estimators
    name: str = "estimator"

    def __init__(self, proc: ProcessorId, spec: SystemSpec):
        self.proc = proc
        self.spec = spec
        self._last_local: Optional[Event] = None

    # -- event hooks -------------------------------------------------------------

    @abc.abstractmethod
    def on_send(self, event: Event) -> object:
        """Handle a local send event; return the payload to piggyback."""

    @abc.abstractmethod
    def on_receive(self, event: Event, payload: object) -> None:
        """Handle a local receive event carrying a peer's payload."""

    def on_internal(self, event: Event) -> None:
        """Handle a local internal event (default: just track it)."""
        self._track_local(event)

    def on_delivery_confirmed(self, send_eid: EventId) -> None:
        """The message sent at ``send_eid`` is known to have been delivered."""

    def on_loss_detected(self, send_eid: EventId) -> None:
        """The message sent at ``send_eid`` is known to have been lost."""

    # -- estimates ----------------------------------------------------------------

    @abc.abstractmethod
    def estimate(self) -> ClockBound:
        """Source-clock bounds at this processor's last local event."""

    def estimate_now(self, local_time: float) -> ClockBound:
        """Source-clock bounds at the current local clock reading.

        Derived from :meth:`estimate` by advancing through this processor's
        drift spec over the local time elapsed since the last event.
        """
        base = self.estimate()
        if self._last_local is None:
            return base
        elapsed = local_time - self._last_local.lt
        if elapsed < 0:
            raise ValueError(
                f"local time {local_time} precedes last event at {self._last_local.lt}"
            )
        if not base.is_bounded and base.lower == -base.upper:
            return base  # still completely uninformed
        return base.advance(elapsed, self.spec.drift_of(self.proc))

    def estimate_strict(self) -> ClockBound:
        """Like :meth:`estimate`, but raises
        :class:`~repro.core.errors.EstimateUnavailableError` instead of
        returning an interval with an infinite endpoint.
        """
        bound = self.estimate()
        if not bound.is_bounded:
            raise EstimateUnavailableError(
                f"{self.proc!r} has no bounded source estimate yet"
            )
        return bound

    # -- shared helpers -------------------------------------------------------------

    @property
    def last_local_event(self) -> Optional[Event]:
        return self._last_local

    def _track_local(self, event: Event) -> None:
        if event.proc != self.proc:
            raise ValueError(
                f"estimator of {self.proc!r} given event of {event.proc!r}"
            )
        if self._last_local is not None and event.lt <= self._last_local.lt:
            raise ValueError(
                f"local time went backwards at {self.proc!r}: "
                f"{self._last_local.lt} then {event.lt}"
            )
        self._last_local = event
