"""Interval arithmetic for clock estimates.

An external synchronization estimate is an interval ``[lower, upper]``
guaranteed to contain the source clock's value (i.e. real time).  Intervals
may be half- or fully unbounded before source information arrives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import SpecificationError
from .specs import DriftSpec

__all__ = ["ClockBound"]


@dataclass(frozen=True)
class ClockBound:
    """A closed interval ``[lower, upper]`` (endpoints may be infinite)."""

    lower: float
    upper: float

    def __post_init__(self):
        if math.isnan(self.lower) or math.isnan(self.upper):
            raise SpecificationError("clock bound endpoints must not be NaN")
        if self.lower > self.upper:
            raise SpecificationError(
                f"empty clock bound [{self.lower}, {self.upper}]"
            )

    @classmethod
    def unbounded(cls) -> "ClockBound":
        """The trivial estimate: no information about the source clock."""
        return cls(-math.inf, math.inf)

    @classmethod
    def exact(cls, value: float) -> "ClockBound":
        return cls(value, value)

    @property
    def width(self) -> float:
        """Interval width; ``inf`` when either endpoint is unbounded."""
        return self.upper - self.lower

    @property
    def is_bounded(self) -> bool:
        return not (math.isinf(self.lower) or math.isinf(self.upper))

    @property
    def midpoint(self) -> float:
        """Midpoint; only defined for bounded intervals."""
        if not self.is_bounded:
            raise SpecificationError("midpoint of an unbounded clock bound")
        return 0.5 * (self.lower + self.upper)

    def contains(self, value: float, *, tolerance: float = 0.0) -> bool:
        """Whether ``value`` lies inside the interval (with slack for floats)."""
        return self.lower - tolerance <= value <= self.upper + tolerance

    def intersect(self, other: "ClockBound") -> "ClockBound":
        """Tightest interval implied by both; raises if they are disjoint."""
        lower = max(self.lower, other.lower)
        upper = min(self.upper, other.upper)
        if lower > upper:
            raise SpecificationError(
                f"inconsistent clock bounds {self} and {other}"
            )
        return ClockBound(lower, upper)

    def shift(self, delta: float) -> "ClockBound":
        """Translate both endpoints by ``delta``."""
        return ClockBound(self.lower + delta, self.upper + delta)

    def widen(self, lower_slack: float, upper_slack: float) -> "ClockBound":
        """Relax the interval outwards by the given non-negative slacks."""
        if lower_slack < 0 or upper_slack < 0:
            raise SpecificationError("widening slacks must be non-negative")
        return ClockBound(self.lower - lower_slack, self.upper + upper_slack)

    def advance(self, elapsed_lt: float, drift: DriftSpec) -> "ClockBound":
        """Propagate the estimate forward by ``elapsed_lt`` local time units.

        If the source clock was in ``[lower, upper]`` at some point and the
        local clock has since advanced by ``elapsed_lt``, the real elapsed
        time lies in ``[alpha * elapsed_lt, beta * elapsed_lt]``, so the
        source clock is now in
        ``[lower + alpha * elapsed_lt, upper + beta * elapsed_lt]``.
        """
        low_elapsed, high_elapsed = drift.elapsed_real_bounds(elapsed_lt)
        return ClockBound(self.lower + low_elapsed, self.upper + high_elapsed)

    def __str__(self):
        return f"[{self.lower:g}, {self.upper:g}]"
