"""The general optimal algorithm of Sec 2.3 (full-information reference).

    "Send, in every message, the complete local view from the send point.
    Merge local views in the natural way.  At any point, compute the
    synchronization graph defined by the local view from that point and
    the associated bounds mapping.  Set ext_L = LT(p) - d(sp, p) and
    ext_U = LT(p) + d(p, sp)."

This is optimal but impractical: views, messages, and per-query work all
grow with the length of the execution.  We implement it verbatim as the
correctness oracle against which the efficient Sec 3 algorithm is compared
(they must produce *identical* intervals), and as the non-garbage-collected
arm of the ablation experiments.
"""

from __future__ import annotations

from typing import Optional

from .csa_base import Estimator
from .events import Event, EventId, ProcessorId
from .intervals import ClockBound
from .specs import SystemSpec
from .theorem import external_bounds
from .view import View

__all__ = ["FullInformationCSA"]


class FullInformationCSA(Estimator):
    """Keeps the entire local view; ships it whole in every message."""

    name = "full"

    def __init__(self, proc: ProcessorId, spec: SystemSpec):
        super().__init__(proc, spec)
        self.view = View()
        #: peak view size, for the ablation space accounting
        self.max_view_events = 0
        #: total events shipped (message size accounting)
        self.events_shipped = 0

    # -- event hooks -------------------------------------------------------------

    def on_send(self, event: Event) -> View:
        self._absorb_local(event)
        payload = self.view.copy()
        self.events_shipped += len(payload)
        return payload

    def on_receive(self, event: Event, payload: View) -> None:
        if not isinstance(payload, View):
            raise TypeError(
                f"full-information CSA expected a View payload, got {type(payload).__name__}"
            )
        self.view.merge(payload)
        self._absorb_local(event)

    def on_internal(self, event: Event) -> None:
        self._absorb_local(event)

    def on_loss_detected(self, send_eid: EventId) -> None:
        """The reference algorithm keeps lost sends; views are never pruned."""

    def _absorb_local(self, event: Event) -> None:
        self._track_local(event)
        self.view.add(event)
        self.max_view_events = max(self.max_view_events, len(self.view))

    # -- estimates ----------------------------------------------------------------

    def estimate(self) -> ClockBound:
        if self._last_local is None:
            return ClockBound.unbounded()
        return external_bounds(self.view, self.spec, self._last_local.eid)

    def estimate_at(self, point: EventId) -> ClockBound:
        """Oracle helper: the optimal estimate at any point of the kept view."""
        return external_bounds(self.view, self.spec, point)
