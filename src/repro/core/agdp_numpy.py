"""A vectorised AGDP backend (numpy dense matrix).

Drop-in alternative to :class:`repro.core.agdp.AGDP` with the same
observable behaviour, for large live-sets: the Ausiello pairwise update

    ``d'(r, s) = min(d(r, s), d(r, x) + w + d(y, s))``

is one outer-sum + elementwise-min over the active block of a dense
``float64`` matrix, instead of a Python double loop.  Node slots are
managed with a free-list and capacity doubling, so kills are O(1) and no
reallocation happens per step.

The contract (and the Lemma 3.4/3.5 semantics) is identical; the
equivalence is enforced property-based in ``tests/core/test_agdp_numpy.py``
and the speed difference measured in ``benchmarks/bench_e4_agdp.py``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from .agdp import AGDPStats
from .errors import InconsistentSpecificationError

__all__ = ["NumpyAGDP"]

INF = math.inf

NodeKey = Hashable

_INITIAL_CAPACITY = 16


class NumpyAGDP:
    """Dense-matrix AGDP solver; see :class:`repro.core.agdp.AGDP`."""

    def __init__(self, source: Optional[NodeKey] = None, *, gc_enabled: bool = True):
        self._capacity = _INITIAL_CAPACITY
        self._matrix = np.full((self._capacity, self._capacity), np.inf)
        self._slot: Dict[NodeKey, int] = {}
        self._key_of: Dict[int, NodeKey] = {}
        self._free: List[int] = list(range(self._capacity - 1, -1, -1))
        self._source = source
        self._gc_enabled = gc_enabled
        self._dead: Set[NodeKey] = set()
        self.stats = AGDPStats()
        #: debug-mode callback invoked with ``self`` after every mutating
        #: edge insertion and kill (see repro.testing.invariants); None in
        #: production - the checks are O(n^3) per call
        self.invariant_hook = None
        if source is not None:
            self.add_node(source)

    # -- inspection --------------------------------------------------------------

    @property
    def source(self) -> Optional[NodeKey]:
        return self._source

    @property
    def gc_enabled(self) -> bool:
        return self._gc_enabled

    def __contains__(self, node: NodeKey) -> bool:
        return node in self._slot

    def __len__(self) -> int:
        return len(self._slot)

    @property
    def nodes(self) -> Set[NodeKey]:
        return set(self._slot)

    @property
    def live_nodes(self) -> Set[NodeKey]:
        return set(self._slot) - self._dead

    def _slot_of(self, node: NodeKey) -> int:
        try:
            return self._slot[node]
        except KeyError:
            raise KeyError(f"node {node!r} is not tracked by this AGDP") from None

    def distance(self, x: NodeKey, y: NodeKey) -> float:
        return float(self._matrix[self._slot_of(x), self._slot_of(y)])

    def distances_from(self, x: NodeKey) -> Dict[NodeKey, float]:
        row = self._matrix[self._slot_of(x)]
        return {key: float(row[i]) for key, i in self._slot.items()}

    def distances_to(self, y: NodeKey) -> Dict[NodeKey, float]:
        col = self._matrix[:, self._slot_of(y)]
        return {key: float(col[i]) for key, i in self._slot.items()}

    # -- mutation ----------------------------------------------------------------

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        grown = np.full((new_capacity, new_capacity), np.inf)
        grown[: self._capacity, : self._capacity] = self._matrix
        self._free.extend(range(new_capacity - 1, self._capacity - 1, -1))
        self._matrix = grown
        self._capacity = new_capacity

    def add_node(self, node: NodeKey) -> None:
        if node in self._slot:
            raise ValueError(f"node {node!r} already present")
        if not self._free:
            self._grow()
        index = self._free.pop()
        self._matrix[index, :] = np.inf
        self._matrix[:, index] = np.inf
        self._matrix[index, index] = 0.0
        self._slot[node] = index
        self._key_of[index] = node
        self.stats.nodes_added += 1
        self.stats.max_nodes = max(self.stats.max_nodes, len(self._slot))

    def insert_edge(self, x: NodeKey, y: NodeKey, weight: float) -> None:
        xi = self._slot_of(x)
        yi = self._slot_of(y)
        if math.isnan(weight):
            raise ValueError("edge weight must not be NaN")
        if math.isinf(weight):
            return
        if x == y:
            if weight < 0:
                raise InconsistentSpecificationError(f"negative self-loop at {x!r}")
            return
        self.stats.edges_inserted += 1
        back = self._matrix[yi, xi]
        if back + weight < -1e-9:
            raise InconsistentSpecificationError(
                f"inserting ({x!r} -> {y!r}, {weight}) closes a negative cycle "
                f"(d({y!r}, {x!r}) = {back})",
                edge=(x, y, weight),
            )
        if weight >= self._matrix[xi, yi]:
            return
        active = sorted(self._slot.values())
        idx = np.array(active)
        block = self._matrix[np.ix_(idx, idx)]
        to_x = self._matrix[idx, xi]
        from_y = self._matrix[yi, idx]
        candidate = to_x[:, None] + weight + from_y[None, :]
        self.stats.pair_updates += idx.size * idx.size
        np.minimum(block, candidate, out=block)
        self._matrix[np.ix_(idx, idx)] = block
        if self.invariant_hook is not None:
            self.invariant_hook(self)

    def kill(self, node: NodeKey) -> None:
        if node not in self._slot:
            raise KeyError(f"node {node!r} is not present")
        if self._source is not None and node == self._source:
            raise ValueError("the source node is live forever")
        self.stats.nodes_killed += 1
        if not self._gc_enabled:
            self._dead.add(node)
        else:
            index = self._slot.pop(node)
            del self._key_of[index]
            self._matrix[index, :] = np.inf
            self._matrix[:, index] = np.inf
            self._free.append(index)
        if self.invariant_hook is not None:
            self.invariant_hook(self)

    def step(
        self,
        node: NodeKey,
        edges: Iterable[Tuple[NodeKey, NodeKey, float]],
        kills: Iterable[NodeKey] = (),
    ) -> None:
        self.add_node(node)
        for x, y, w in edges:
            if node not in (x, y):
                raise ValueError(
                    f"AGDP step for {node!r} may only insert incident edges, got ({x!r}, {y!r})"
                )
            self.insert_edge(x, y, w)
        for victim in kills:
            self.kill(victim)

    def matrix_size(self) -> int:
        return len(self._slot) * len(self._slot)
