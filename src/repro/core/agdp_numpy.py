"""A vectorised AGDP backend (numpy dense matrix, compacted slots).

Drop-in alternative to :class:`repro.core.agdp.AGDP` with the same
observable behaviour, for large live-sets: the Ausiello pairwise update

    ``d'(r, s) = min(d(r, s), d(r, x) + w + d(y, s))``

is one outer-sum + elementwise-min over the active block of a dense
``float64`` matrix, instead of a Python double loop.

**Compacted-slot invariant.**  The present nodes always occupy the
contiguous slot prefix ``[0, n)`` of the matrix, so the active block is
the plain view ``matrix[:n, :n]`` - no sorted slot list, no fancy-indexed
block copies.  :meth:`kill` vacates a slot by swapping the last occupied
row/column into it (two row/column copies, O(n)) and shrinking the
prefix; :meth:`add_node` appends at slot ``n`` (amortised O(n) with
capacity doubling).  The Ausiello update then runs as an in-place
``np.minimum`` against an outer sum of two *views* of the active block -
the only per-edge allocation is the candidate matrix itself.

``pair_updates`` counts exactly what the dict backend counts: finite
``d(r, x)`` rows times finite ``d(y, s)`` columns (the real relaxation
candidates), so complexity plots are backend-independent.

**Source-only mode** (``source_only=True``): for consumers that only ever
read distances to/from one *anchor* node (the estimator's current source
representative), the dense matrix is overkill - ``O(L^2)`` work per edge
to maintain rows nobody reads.  In this mode the solver keeps just the
anchor's distance row ``d(anchor, .)`` and column ``d(., anchor)``,
updated *exactly* by label-correcting relaxation over the retained
accumulated-graph adjacency; an edge insertion costs O(affected edges)
instead of O(L^2).  The trade-offs, documented in docs/PERFORMANCE.md:

* only anchor-incident distances are queryable (:meth:`distance` raises
  ``ValueError`` for other pairs);
* re-anchoring (:meth:`set_anchor`, called by the estimator when a new
  source event arrives) recomputes both vectors from scratch;
* dead nodes' adjacency is retained so shortest paths through collected
  points survive (the Lemma 3.4 guarantee) - space is O(total edges)
  rather than the collected O(L^2), which is why the mode is opt-in;
* negative cycles are detected by a relaxation budget *after* the edge
  entered the adjacency, so the mode cannot back the degraded/hardened
  estimator (those need refusal-before-mutation).

The contract (and the Lemma 3.4/3.5 semantics) is identical to the dict
solver; the equivalence is enforced property-based in
``tests/core/test_agdp_numpy.py`` and the speed difference measured in
``benchmarks/bench_e4_agdp.py``.  The previous (uncompacted) backend is
preserved as :class:`repro.testing.reference.ReferenceNumpyAGDP` for
differential tests.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from .agdp import AGDPStats
from .errors import InconsistentSpecificationError

__all__ = ["NumpyAGDP"]

INF = math.inf

NodeKey = Hashable

_INITIAL_CAPACITY = 16


class NumpyAGDP:
    """Dense-matrix AGDP solver; see :class:`repro.core.agdp.AGDP`."""

    def __init__(
        self,
        source: Optional[NodeKey] = None,
        *,
        gc_enabled: bool = True,
        source_only: bool = False,
    ):
        self._source = source
        self._gc_enabled = gc_enabled
        self._source_only = source_only
        self._dead: Set[NodeKey] = set()
        self.stats = AGDPStats()
        #: debug-mode callback invoked with ``self`` after every mutating
        #: edge insertion and kill (see repro.testing.invariants); None in
        #: production - the checks are O(n^3) per call
        self.invariant_hook = None
        if source_only:
            #: anchor-incident exact distances (see module docstring)
            self._anchor: Optional[NodeKey] = None
            self._row: Dict[NodeKey, float] = {}  # d(anchor, .)
            self._col: Dict[NodeKey, float] = {}  # d(., anchor)
            #: retained adjacency of the accumulated graph, dead nodes
            #: included (paths through collected points must survive)
            self._adj_out: Dict[NodeKey, List[Tuple[NodeKey, float]]] = {}
            self._adj_in: Dict[NodeKey, List[Tuple[NodeKey, float]]] = {}
            self._edge_count = 0
            self._members: Set[NodeKey] = set()
        else:
            self._capacity = _INITIAL_CAPACITY
            # cells outside the active prefix are never read before being
            # re-initialised by add_node, so the backing store is empty
            self._matrix = np.empty((self._capacity, self._capacity))
            #: reusable candidate buffer for the Ausiello outer sum, grown
            #: with the matrix - keeps the per-edge hot path allocation-free
            self._scratch = np.empty((self._capacity, self._capacity))
            self._vec = np.empty(self._capacity)
            self._n = 0
            self._slot: Dict[NodeKey, int] = {}
            self._keys: List[NodeKey] = []  # slot index -> node key
        if source is not None:
            self.add_node(source)
            if source_only:
                self.set_anchor(source)

    # -- inspection --------------------------------------------------------------

    @property
    def source(self) -> Optional[NodeKey]:
        return self._source

    @property
    def gc_enabled(self) -> bool:
        return self._gc_enabled

    @property
    def source_only(self) -> bool:
        return self._source_only

    @property
    def anchor(self) -> Optional[NodeKey]:
        """The anchor node of source-only mode (None in dense mode)."""
        return self._anchor if self._source_only else None

    def __contains__(self, node: NodeKey) -> bool:
        if self._source_only:
            return node in self._members
        return node in self._slot

    def __len__(self) -> int:
        if self._source_only:
            return len(self._members)
        return len(self._slot)

    @property
    def nodes(self) -> Set[NodeKey]:
        if self._source_only:
            return set(self._members)
        return set(self._slot)

    @property
    def live_nodes(self) -> Set[NodeKey]:
        return self.nodes - self._dead

    def _slot_of(self, node: NodeKey) -> int:
        try:
            return self._slot[node]
        except KeyError:
            raise KeyError(f"node {node!r} is not tracked by this AGDP") from None

    def distance(self, x: NodeKey, y: NodeKey) -> float:
        if self._source_only:
            return self._so_distance(x, y)
        return float(self._matrix[self._slot_of(x), self._slot_of(y)])

    def distances_from(self, x: NodeKey) -> Dict[NodeKey, float]:
        if self._source_only:
            self._so_require_anchor(x, "distances_from")
            return {node: self._row.get(node, INF) for node in self._members}
        row = self._matrix[self._slot_of(x)]
        return {key: float(row[i]) for key, i in self._slot.items()}

    def distances_to(self, y: NodeKey) -> Dict[NodeKey, float]:
        if self._source_only:
            self._so_require_anchor(y, "distances_to")
            return {node: self._col.get(node, INF) for node in self._members}
        col = self._matrix[:, self._slot_of(y)]
        return {key: float(col[i]) for key, i in self._slot.items()}

    # -- mutation ----------------------------------------------------------------

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        grown = np.empty((new_capacity, new_capacity))
        n = self._n
        grown[:n, :n] = self._matrix[:n, :n]
        self._matrix = grown
        self._scratch = np.empty((new_capacity, new_capacity))
        self._vec = np.empty(new_capacity)
        self._capacity = new_capacity

    def add_node(self, node: NodeKey) -> None:
        if node in self:
            raise ValueError(f"node {node!r} already present")
        if self._source_only:
            self._members.add(node)
            self._row.setdefault(node, 0.0 if node == self._anchor else INF)
            self._col.setdefault(node, 0.0 if node == self._anchor else INF)
        else:
            if self._n == self._capacity:
                self._grow()
            index = self._n
            self._n += 1
            m = self._matrix
            m[index, : self._n] = np.inf
            m[: self._n, index] = np.inf
            m[index, index] = 0.0
            self._slot[node] = index
            self._keys.append(node)
        self.stats.nodes_added += 1
        self.stats.max_nodes = max(self.stats.max_nodes, len(self))

    def insert_edge(self, x: NodeKey, y: NodeKey, weight: float) -> None:
        if self._source_only:
            self._so_insert_edge(x, y, weight)
            return
        xi = self._slot_of(x)
        yi = self._slot_of(y)
        if math.isnan(weight):
            raise ValueError("edge weight must not be NaN")
        if math.isinf(weight):
            return
        if x == y:
            if weight < 0:
                raise InconsistentSpecificationError(f"negative self-loop at {x!r}")
            return
        n = self._n
        self._relax_block(self._matrix[:n, :n], x, y, xi, yi, weight)
        if self.invariant_hook is not None:
            self.invariant_hook(self)

    def _relax_block(self, block, x, y, xi: int, yi: int, weight: float) -> None:
        """Ausiello update of the active block through edge ``x -> y``.

        ``block`` is the in-place ``[:n, :n]`` view; the only allocation is
        the candidate outer-sum matrix.
        """
        self.stats.edges_inserted += 1
        back = block[yi, xi]
        if back + weight < -1e-9:
            raise InconsistentSpecificationError(
                f"inserting ({x!r} -> {y!r}, {weight}) closes a negative cycle "
                f"(d({y!r}, {x!r}) = {back})",
                edge=(x, y, weight),
            )
        if weight >= block[xi, yi]:
            return
        to_x = block[:, xi]
        from_y = block[yi, :]
        # the same quantity the dict backend counts: finite relaxation
        # candidates, not the full n^2 block (stored distances are finite
        # or +inf, never NaN/-inf, so ``< inf`` is the finiteness test)
        self.stats.pair_updates += np.count_nonzero(to_x < np.inf) * np.count_nonzero(
            from_y < np.inf
        )
        # (d(r, x) + w) + d(y, s): association matches the dict backend so
        # both produce bit-identical floats; the candidate matrix lands in
        # the preallocated scratch block instead of a fresh allocation
        n = block.shape[0]
        shifted = self._vec[:n]
        np.add(to_x, weight, out=shifted)
        scratch = self._scratch[:n, :n]
        np.add.outer(shifted, from_y, out=scratch)
        np.minimum(block, scratch, out=block)

    def kill(self, node: NodeKey) -> None:
        if node not in self:
            raise KeyError(f"node {node!r} is not present")
        if self._source is not None and node == self._source:
            raise ValueError("the source node is live forever")
        self.stats.nodes_killed += 1
        if not self._gc_enabled:
            self._dead.add(node)
        elif self._source_only:
            # row/col/adjacency entries are retained: future relaxations may
            # route through this node (Lemma 3.4); only queryability ends
            self._members.discard(node)
        else:
            index = self._slot.pop(node)
            n = self._n
            last = n - 1
            if index != last:
                # swap-with-last keeps the occupied slots a contiguous
                # prefix; the vacated row/column need no clearing because
                # add_node re-initialises slot ``n`` on reuse
                m = self._matrix
                m[index, :n] = m[last, :n]
                m[:n, index] = m[:n, last]
                moved = self._keys[last]
                self._slot[moved] = index
                self._keys[index] = moved
            self._keys.pop()
            self._n = last
        if self.invariant_hook is not None:
            self.invariant_hook(self)

    def step(
        self,
        node: NodeKey,
        edges: Iterable[Tuple[NodeKey, NodeKey, float]],
        kills: Iterable[NodeKey] = (),
    ) -> None:
        """One AGDP input step, batched.

        In dense mode the slot resolution and active-block view are hoisted
        out of the per-edge path: all of the event's incident edges relax
        the same ``[:n, :n]`` view (no node is added or killed between
        them, so the prefix is stable).
        """
        self.add_node(node)
        if self._source_only:
            for x, y, w in edges:
                if node not in (x, y):
                    raise ValueError(
                        f"AGDP step for {node!r} may only insert incident edges, "
                        f"got ({x!r}, {y!r})"
                    )
                self.insert_edge(x, y, w)
        else:
            n = self._n
            block = self._matrix[:n, :n]
            for x, y, w in edges:
                if node not in (x, y):
                    raise ValueError(
                        f"AGDP step for {node!r} may only insert incident edges, "
                        f"got ({x!r}, {y!r})"
                    )
                xi = self._slot_of(x)
                yi = self._slot_of(y)
                if math.isnan(w):
                    raise ValueError("edge weight must not be NaN")
                if math.isinf(w):
                    continue
                if x == y:
                    if w < 0:
                        raise InconsistentSpecificationError(
                            f"negative self-loop at {x!r}"
                        )
                    continue
                self._relax_block(block, x, y, xi, yi, w)
                if self.invariant_hook is not None:
                    self.invariant_hook(self)
        for victim in kills:
            self.kill(victim)

    def step_batch(
        self,
        steps: Iterable[
            Tuple[NodeKey, Iterable[Tuple[NodeKey, NodeKey, float]], Iterable[NodeKey]]
        ],
    ) -> None:
        """Apply many input steps in order (the batch-delivery hot path).

        Same contract as :meth:`repro.core.agdp.AGDP.step_batch`:
        observable behaviour is identical to sequential :meth:`step` calls.
        """
        for node, edges, kills in steps:
            self.step(node, edges, kills)

    def matrix_size(self) -> int:
        """Current number of distance cells held (space proxy, Lemma 3.5).

        In source-only mode: the two anchor vectors (the matrix is never
        materialised); adjacency space is reported by ``edge_space()``.
        """
        if self._source_only:
            return 2 * len(self._row)
        return len(self._slot) * len(self._slot)

    def edge_space(self) -> int:
        """Retained adjacency entries (source-only mode; 0 in dense mode)."""
        return 2 * self._edge_count if self._source_only else 0

    # -- source-only mode ---------------------------------------------------------

    def set_anchor(self, node: NodeKey) -> None:
        """Re-anchor the maintained row/column at ``node`` (source-only mode).

        Recomputes ``d(node, .)`` and ``d(., node)`` from scratch over the
        retained adjacency - O(V * E) worst case, called only when the
        source representative changes.
        """
        if not self._source_only:
            raise ValueError("set_anchor is only meaningful in source_only mode")
        if node not in self._members:
            raise KeyError(f"node {node!r} is not present")
        self._anchor = node
        self._row = {n: INF for n in self._row}
        self._col = {n: INF for n in self._col}
        self._row[node] = 0.0
        self._col[node] = 0.0
        self._so_propagate(self._row, self._adj_out, [node])
        self._so_propagate(self._col, self._adj_in, [node])

    def _so_require_anchor(self, node: NodeKey, op: str) -> None:
        if node not in self._members:
            raise KeyError(f"node {node!r} is not tracked by this AGDP")
        if node != self._anchor:
            raise ValueError(
                f"source-only AGDP can answer {op} only at its anchor "
                f"({self._anchor!r}), not {node!r}; use the full backend for "
                "arbitrary pairs"
            )

    def _so_distance(self, x: NodeKey, y: NodeKey) -> float:
        if x not in self._members or y not in self._members:
            raise KeyError(f"node {x!r} or {y!r} is not tracked by this AGDP")
        if x == self._anchor:
            return self._row.get(y, INF)
        if y == self._anchor:
            return self._col.get(x, INF)
        if x == y:
            return 0.0
        raise ValueError(
            f"source-only AGDP cannot answer d({x!r}, {y!r}): neither endpoint "
            f"is the anchor ({self._anchor!r}); use the full backend for "
            "arbitrary pairs"
        )

    def _so_insert_edge(self, x: NodeKey, y: NodeKey, weight: float) -> None:
        if x not in self._members or y not in self._members:
            raise KeyError(f"edge endpoints {x!r}, {y!r} must be present")
        if math.isnan(weight):
            raise ValueError("edge weight must not be NaN")
        if math.isinf(weight):
            return
        if x == y:
            if weight < 0:
                raise InconsistentSpecificationError(f"negative self-loop at {x!r}")
            return
        self.stats.edges_inserted += 1
        # the one cycle visible without the full matrix: through the anchor
        if self._anchor is not None:
            back = self._col.get(y, INF) + self._row.get(x, INF)
            if back + weight < -1e-9:
                raise InconsistentSpecificationError(
                    f"inserting ({x!r} -> {y!r}, {weight}) closes a negative "
                    f"cycle through the anchor (d({y!r}, {x!r}) <= {back})",
                    edge=(x, y, weight),
                )
        self._adj_out.setdefault(x, []).append((y, weight))
        self._adj_in.setdefault(y, []).append((x, weight))
        self._edge_count += 1
        if self._anchor is None:
            return
        if self._row[x] + weight < self._row[y]:
            self._row[y] = self._row[x] + weight
            self._so_propagate(self._row, self._adj_out, [y])
        if self._col[y] + weight < self._col[x]:
            self._col[x] = self._col[y] + weight
            self._so_propagate(self._col, self._adj_in, [x])
        if self.invariant_hook is not None:
            self.invariant_hook(self)

    def _so_propagate(
        self,
        dist: Dict[NodeKey, float],
        adjacency: Dict[NodeKey, List[Tuple[NodeKey, float]]],
        seeds: List[NodeKey],
    ) -> None:
        """Label-correcting relaxation from ``seeds`` (queue Bellman-Ford).

        Exact for graphs without negative cycles; a FIFO queue pops each
        node at most V times, so exceeding ``(V + 1)^2`` pops proves a
        negative cycle (raised as inconsistency - the adversary's problem,
        not ours, but detected after the adjacency mutation; see the module
        docstring for why degraded mode cannot use this backend).
        """
        queue = deque(seeds)
        pops = 0
        limit = (len(dist) + 1) ** 2
        while queue:
            u = queue.popleft()
            pops += 1
            if pops > limit:
                raise InconsistentSpecificationError(
                    "relaxation did not converge: the inserted constraints "
                    "contain a negative cycle"
                )
            du = dist[u]
            for v, w in adjacency.get(u, ()):
                self.stats.pair_updates += 1
                if du + w < dist[v]:
                    dist[v] = du + w
                    queue.append(v)
