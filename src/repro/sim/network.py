"""Network topology for the simulator: processors, links, delay models.

A :class:`Network` bundles

* one :class:`~repro.sim.clock.ClockModel` per processor (the source gets
  a :class:`~repro.sim.clock.PerfectClock`),
* one :class:`LinkConfig` per link: per-direction transit specs, the
  *actual* delay distribution (which must lie inside the spec), and an
  independent loss probability,

and derives the static :class:`~repro.core.specs.SystemSpec` that all
estimators interpret timestamps against.

Links are FIFO per direction: the Figure 2 watermark accounting (like any
vector-clock scheme) relies on reports over one link arriving in send
order, and the paper's reliable-communication model is read accordingly.
The engine enforces FIFO delivery by scheduling; see
:meth:`LinkConfig.sample_delay` and the engine's arrival clamping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import SimulationError, SpecificationError
from ..core.events import LinkId, ProcessorId, link_id
from ..core.specs import DriftSpec, SystemSpec, TransitSpec
from .clock import ClockModel, PerfectClock

__all__ = ["LinkConfig", "Network", "topologies"]


@dataclass
class LinkConfig:
    """One bidirectional link: specs, true delay behaviour, loss.

    ``transit`` is the advertised per-direction spec (a single spec applies
    to both directions unless ``transit_back`` is given, keyed as
    ``a -> b`` and ``b -> a`` respectively).  The *actual* delays are drawn
    uniformly from ``[lower, lower + span]`` where ``span`` is the spec
    slack when finite, else ``unbounded_span``; the draw always satisfies
    the spec, which the engine asserts.
    """

    a: ProcessorId
    b: ProcessorId
    transit: TransitSpec = field(default_factory=TransitSpec.unbounded)
    transit_back: Optional[TransitSpec] = None
    loss_prob: float = 0.0
    #: width of the actual-delay band used when the spec upper bound is inf
    unbounded_span: float = 1.0

    def __post_init__(self):
        if self.a == self.b:
            raise SimulationError(f"link endpoints must differ, got {self.a!r}")
        if not (0 <= self.loss_prob < 1):
            raise SimulationError(f"loss probability must be in [0, 1), got {self.loss_prob}")
        if self.unbounded_span <= 0:
            raise SimulationError("unbounded_span must be positive")

    @property
    def lid(self) -> LinkId:
        return link_id(self.a, self.b)

    def spec_for(self, sender: ProcessorId) -> TransitSpec:
        if sender == self.a:
            return self.transit
        if sender == self.b:
            return self.transit_back if self.transit_back is not None else self.transit
        raise SimulationError(f"{sender!r} is not an endpoint of link {self.lid}")

    def sample_delay(self, sender: ProcessorId, rng: random.Random) -> float:
        spec = self.spec_for(sender)
        span = spec.slack if spec.is_bounded else self.unbounded_span
        return spec.lower + rng.random() * span

    def to_spec_entry(self) -> Tuple[LinkId, Dict[ProcessorId, TransitSpec]]:
        back = self.transit_back if self.transit_back is not None else self.transit
        return self.lid, {self.a: self.transit, self.b: back}


class Network:
    """Topology plus true clock/delay behaviour; derives the SystemSpec."""

    def __init__(
        self,
        source: ProcessorId,
        clocks: Dict[ProcessorId, ClockModel],
        links: Iterable[LinkConfig],
    ):
        clocks = dict(clocks)
        clocks.setdefault(source, PerfectClock())
        if not isinstance(clocks[source], PerfectClock):
            raise SimulationError(
                "the source processor's clock must be a PerfectClock "
                "(the source defines real time)"
            )
        self.source = source
        self.clocks = clocks
        self.links: Dict[LinkId, LinkConfig] = {}
        for link in links:
            if link.lid in self.links:
                raise SimulationError(f"duplicate link {link.lid}")
            for endpoint in link.lid:
                if endpoint not in clocks:
                    raise SimulationError(
                        f"link {link.lid} references unknown processor {endpoint!r}"
                    )
            self.links[link.lid] = link
        transit_entries = dict(cfg.to_spec_entry() for cfg in self.links.values())
        self.spec = SystemSpec(
            source=source,
            drift={p: c.advertised for p, c in clocks.items()},
            transit=transit_entries,
        )

    @property
    def processors(self) -> Tuple[ProcessorId, ...]:
        return tuple(sorted(self.clocks))

    def link_between(self, u: ProcessorId, v: ProcessorId) -> LinkConfig:
        try:
            return self.links[link_id(u, v)]
        except KeyError:
            raise SimulationError(f"no link between {u!r} and {v!r}") from None

    def neighbors(self, proc: ProcessorId) -> Tuple[ProcessorId, ...]:
        return self.spec.neighbors(proc)


class topologies:
    """Factory helpers producing ``(processor_names, link_pairs)`` shapes.

    Processor 0 is conventionally the source.  These are plain structural
    helpers; clock and link behaviour is layered on by the runner.
    """

    @staticmethod
    def line(n: int) -> Tuple[List[ProcessorId], List[Tuple[ProcessorId, ProcessorId]]]:
        names = [f"p{i}" for i in range(n)]
        return names, [(names[i], names[i + 1]) for i in range(n - 1)]

    @staticmethod
    def ring(n: int) -> Tuple[List[ProcessorId], List[Tuple[ProcessorId, ProcessorId]]]:
        names = [f"p{i}" for i in range(n)]
        pairs = [(names[i], names[(i + 1) % n]) for i in range(n)]
        return names, pairs

    @staticmethod
    def star(n: int) -> Tuple[List[ProcessorId], List[Tuple[ProcessorId, ProcessorId]]]:
        """A hub (``p0``) with ``n - 1`` leaves."""
        names = [f"p{i}" for i in range(n)]
        return names, [(names[0], names[i]) for i in range(1, n)]

    @staticmethod
    def grid(rows: int, cols: int) -> Tuple[List[ProcessorId], List[Tuple[ProcessorId, ProcessorId]]]:
        names = [f"p{r}_{c}" for r in range(rows) for c in range(cols)]

        def name(r, c):
            return f"p{r}_{c}"

        pairs = []
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    pairs.append((name(r, c), name(r, c + 1)))
                if r + 1 < rows:
                    pairs.append((name(r, c), name(r + 1, c)))
        return names, pairs

    @staticmethod
    def random_connected(
        n: int, extra_edges: int, seed: int
    ) -> Tuple[List[ProcessorId], List[Tuple[ProcessorId, ProcessorId]]]:
        """A random tree plus ``extra_edges`` random chords (deterministic).

        Raises :class:`~repro.core.errors.SimulationError` when the
        requested chords cannot all be placed - either because the complete
        graph has no room or because rejection sampling hit its attempt cap
        - rather than silently returning a sparser topology than asked for.
        """
        max_chords = n * (n - 1) // 2 - (n - 1)
        if extra_edges > max_chords:
            raise SimulationError(
                f"random_connected(n={n}) can host at most {max_chords} chords, "
                f"requested {extra_edges}"
            )
        rng = random.Random(seed)
        names = [f"p{i}" for i in range(n)]
        pairs = []
        for i in range(1, n):
            parent = rng.randrange(i)
            pairs.append((names[parent], names[i]))
        existing = {link_id(u, v) for u, v in pairs}
        remaining = extra_edges
        attempts = 0
        while remaining > 0 and attempts < 100 * (extra_edges + 1):
            attempts += 1
            u, v = rng.sample(names, 2)
            lid = link_id(u, v)
            if lid in existing:
                continue
            existing.add(lid)
            pairs.append((u, v))
            remaining -= 1
        if remaining > 0:
            raise SimulationError(
                f"random_connected(n={n}, extra_edges={extra_edges}, seed={seed}) "
                f"placed only {extra_edges - remaining} chords after {attempts} "
                f"attempts; use a larger n or fewer chords"
            )
        return names, pairs

    @staticmethod
    def tree(n: int, fanout: int) -> Tuple[List[ProcessorId], List[Tuple[ProcessorId, ProcessorId]]]:
        names = [f"p{i}" for i in range(n)]
        pairs = [(names[(i - 1) // fanout], names[i]) for i in range(1, n)]
        return names, pairs
