"""Cristian-style probabilistic synchronization traffic (Sec 4).

Cristian's observation [5]: link delays behave probabilistically, and a
quick round trip - which yields a tight bound - is likely within a few
attempts.  A client that notices its synchronization interval has grown
too loose (clock drift widens it between contacts) fires a *burst* of
round-trip probes until the bound is tight again or the attempt budget is
exhausted.

The paper analyses this pattern with parameters ``p0`` (probability a
succession of trials finishes quickly within time ``T``) and ``p1`` (the
probability a processor loses synchronization at a given time), concluding
``K1 = O(p1 |V| T)`` and ``K2 = 2``, hence ``O(|E|^2)`` complexity with
high probability.  Experiment E7 measures ``K1``, ``K2`` and live points
under this workload.

The workload reads the *width* of a designated estimator channel - this is
legal: the paper's send module may use CSA output; passivity only requires
that the CSA itself not initiate traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.events import Event, ProcessorId
from ...core.specs import TransitSpec
from ..clock import PiecewiseDriftingClock
from ..engine import Simulation
from ..network import LinkConfig, Network

__all__ = ["CristianWorkload", "make_cristian_system"]

_PROBE = "cristian-probe"
_REPLY = "cristian-reply"


@dataclass
class CristianWorkload:
    """Width-triggered probe bursts from each client to its server.

    Parameters
    ----------
    servers:
        client -> the server it probes.
    width_threshold:
        Fire a burst when the monitored estimate's width exceeds this.
    check_period:
        Local-time interval between width checks at each client.
    burst_gap:
        Local-time gap between consecutive probes within a burst.
    max_burst:
        Probe budget per burst.
    monitor_channel:
        Name of the estimator channel whose width is monitored.
    """

    servers: Dict[ProcessorId, ProcessorId]
    width_threshold: float = 0.05
    check_period: float = 5.0
    burst_gap: float = 0.2
    max_burst: int = 8
    monitor_channel: str = "efficient"
    seed: int = 0
    #: filled during the run: bursts fired per client
    bursts: Dict[ProcessorId, int] = field(default_factory=dict)

    def install(self, sim: Simulation) -> None:
        rng = random.Random(self.seed)
        self._in_burst: Dict[ProcessorId, int] = {}
        previous_hook = sim.on_message

        def on_message(sim_: Simulation, receive_event: Event, info: object) -> None:
            if info == _PROBE:
                prober = receive_event.send_eid.proc
                sim_.send(receive_event.proc, prober, _REPLY)
            elif info == _REPLY:
                self._on_reply(sim_, receive_event.proc)
            if previous_hook is not None:
                previous_hook(sim_, receive_event, info)

        sim.on_message = on_message
        for client in sorted(self.servers):
            self.bursts.setdefault(client, 0)
            self._in_burst[client] = 0
            phase = rng.uniform(0.1, 1.0) * self.check_period
            self._schedule_check(sim, client, phase)

    # -- width monitoring -----------------------------------------------------------

    def _width(self, sim: Simulation, client: ProcessorId) -> float:
        estimator = sim.estimator(client, self.monitor_channel)
        return estimator.estimate_now(sim.local_time(client)).width

    def _schedule_check(
        self, sim: Simulation, client: ProcessorId, delay_lt: float
    ) -> None:
        target_lt = sim.local_time(client) + delay_lt

        def fire():
            if self._in_burst[client] == 0 and self._width(sim, client) > self.width_threshold:
                self.bursts[client] = self.bursts.get(client, 0) + 1
                self._in_burst[client] = self.max_burst
                self._probe(sim, client)
            self._schedule_check(sim, client, self.check_period)

        sim.schedule_local(client, target_lt, fire)

    # -- probing ---------------------------------------------------------------------

    def _probe(self, sim: Simulation, client: ProcessorId) -> None:
        self._in_burst[client] -= 1
        sim.send(client, self.servers[client], _PROBE)

    def _on_reply(self, sim: Simulation, client: ProcessorId) -> None:
        if self._in_burst.get(client, 0) <= 0:
            return
        if self._width(sim, client) <= self.width_threshold:
            self._in_burst[client] = 0
            return

        def fire():
            if self._in_burst.get(client, 0) > 0:
                self._probe(sim, client)

        sim.schedule_local(client, sim.local_time(client) + self.burst_gap, fire)


def make_cristian_system(
    n_clients: int,
    *,
    width_threshold: float = 0.08,
    check_period: float = 5.0,
    drift_ppm: float = 200.0,
    server_accuracy: Tuple[float, float] = (0.0005, 0.002),
    link_delay: Tuple[float, float] = (0.002, 0.05),
    seed: int = 0,
    monitor_channel: str = "efficient",
) -> Tuple[Network, CristianWorkload]:
    """A two-level probabilistic system: one time server, many clients.

    The server sits next to the source (standard time) over a
    high-accuracy link and keeps itself synchronized by polling the source
    periodically (folded into the same workload via a permanent "client"
    role for the server against the source).
    """
    rng = random.Random(seed)
    source = "source"
    server = "server"
    clocks = {
        server: PiecewiseDriftingClock(
            seed=rng.randrange(2**31),
            r_min=1 - 20e-6,
            r_max=1 + 20e-6,
            offset=rng.uniform(-1.0, 1.0),
        )
    }
    links = [
        LinkConfig(source, server, transit=TransitSpec(server_accuracy[0], server_accuracy[1]))
    ]
    servers: Dict[ProcessorId, ProcessorId] = {server: source}
    for i in range(n_clients):
        name = f"client{i}"
        clocks[name] = PiecewiseDriftingClock(
            seed=rng.randrange(2**31),
            r_min=1 - drift_ppm * 1e-6,
            r_max=1 + drift_ppm * 1e-6,
            offset=rng.uniform(-5.0, 5.0),
        )
        links.append(
            LinkConfig(server, name, transit=TransitSpec(link_delay[0], link_delay[1]))
        )
        servers[name] = server
    network = Network(source=source, clocks=clocks, links=links)
    workload = CristianWorkload(
        servers=servers,
        width_threshold=width_threshold,
        check_period=check_period,
        seed=rng.randrange(2**31),
        monitor_channel=monitor_channel,
    )
    return network, workload
