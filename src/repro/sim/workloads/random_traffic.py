"""Poisson traffic on random directed links - the fuzzing send module.

Used by property-based and integration tests: arbitrary interleavings of
sends across the topology stress the history protocol's watermark
accounting and the AGDP liveness bookkeeping far harder than regular
patterns do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ...core.events import ProcessorId
from ..engine import Simulation

__all__ = ["RandomTraffic"]


@dataclass
class RandomTraffic:
    """Fire sends at global rate ``rate`` per real-time unit, on random links.

    Each firing picks a uniformly random directed link.  With
    ``internal_prob`` an internal event at a random processor is generated
    instead of a send.
    """

    rate: float = 1.0
    seed: int = 0
    internal_prob: float = 0.0

    def install(self, sim: Simulation) -> None:
        rng = random.Random(self.seed)
        directed: List[Tuple[ProcessorId, ProcessorId]] = []
        for u, v in sim.network.links:
            directed.append((u, v))
            directed.append((v, u))
        if not directed:
            return

        def fire():
            if self.internal_prob > 0 and rng.random() < self.internal_prob:
                proc = rng.choice(sorted(sim.network.processors))
                sim.internal_event(proc)
            else:
                src, dest = directed[rng.randrange(len(directed))]
                sim.send(src, dest)
            sim.schedule_after(rng.expovariate(self.rate), fire)

        sim.schedule_after(rng.expovariate(self.rate), fire)
