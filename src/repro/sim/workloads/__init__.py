"""Send modules (Sec 2.2): the traffic patterns the passive CSAs ride on.

The paper separates the *send module*, which decides when messages flow,
from the CSA, which only annotates them.  Each workload here is a send
module:

* :class:`~repro.sim.workloads.periodic.PeriodicGossip` - every processor
  messages each neighbor periodically on its own clock; the generic
  pattern used by most experiments.
* :mod:`~repro.sim.workloads.ntp` - the NTP-like server hierarchy of
  Sec 4: levelled time servers polled by RPC every ``C`` minutes.
* :mod:`~repro.sim.workloads.cristian` - Cristian-style probabilistic
  synchronization: clients fire bursts of round-trip probes whenever their
  bound drifts loose.
* :class:`~repro.sim.workloads.random_traffic.RandomTraffic` - Poisson
  traffic on random links, for property-style fuzzing of the protocol.
"""

from .adaptive import AdaptivePolling
from .bursty import AsymmetricPing
from .periodic import PeriodicGossip
from .random_traffic import RandomTraffic
from .ntp import NTPWorkload, make_ntp_system
from .cristian import CristianWorkload, make_cristian_system

__all__ = [
    "AdaptivePolling",
    "AsymmetricPing",
    "PeriodicGossip",
    "RandomTraffic",
    "NTPWorkload",
    "make_ntp_system",
    "CristianWorkload",
    "make_cristian_system",
]
