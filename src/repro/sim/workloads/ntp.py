"""The NTP-like time-server hierarchy of Sec 4.

The paper models NTP as a levelled system: an abstract source node stands
for standard time, level-0 servers attach to it over links whose transit
bounds represent those servers' accuracies, and each level-``k`` server
periodically polls one or more level-``(k-1)`` servers by RPC, with poll
period ``C`` minutes, ``1 <= C <= 16``.

Under this pattern the paper claims ``K1 <= 16 |V|`` and ``K2 <= 2``
(each request is answered before the next request on that link), giving
the efficient algorithm ``O(|E|^2)`` space.  Experiment E6 measures all
three quantities on this workload.

:func:`make_ntp_system` builds the levelled topology (with clocks and
links) and the matching workload in one call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.events import Event, ProcessorId
from ...core.specs import TransitSpec
from ..clock import PiecewiseDriftingClock
from ..engine import Simulation
from ..network import LinkConfig, Network

__all__ = ["NTPWorkload", "make_ntp_system"]

_REQUEST = "ntp-request"
_RESPONSE = "ntp-response"


@dataclass
class NTPWorkload:
    """Each server polls each of its parents every ``poll_period`` local units.

    A poll is a request message; the parent answers immediately upon
    receipt (the RPC model of the paper).  ``poll_period`` corresponds to
    the paper's ``C`` minutes - the experiments scale it freely.
    """

    #: child -> its parents (the servers it polls)
    parents: Dict[ProcessorId, Tuple[ProcessorId, ...]]
    poll_period: float = 60.0
    jitter: float = 0.1
    seed: int = 0

    def install(self, sim: Simulation) -> None:
        rng = random.Random(self.seed)
        previous_hook = sim.on_message

        def on_message(sim_: Simulation, receive_event: Event, info: object) -> None:
            if info == _REQUEST:
                requester = receive_event.send_eid.proc
                sim_.send(receive_event.proc, requester, _RESPONSE)
            if previous_hook is not None:
                previous_hook(sim_, receive_event, info)

        sim.on_message = on_message
        for child, parent_list in sorted(self.parents.items()):
            for parent in parent_list:
                phase = rng.uniform(0.1, 1.0) * self.poll_period
                self._schedule_poll(sim, rng, child, parent, phase)

    def _schedule_poll(
        self,
        sim: Simulation,
        rng: random.Random,
        child: ProcessorId,
        parent: ProcessorId,
        delay_lt: float,
    ) -> None:
        target_lt = sim.local_time(child) + delay_lt

        def fire():
            sim.send(child, parent, _REQUEST)
            interval = self.poll_period * (1 + self.jitter * (2 * rng.random() - 1))
            self._schedule_poll(sim, rng, child, parent, max(interval, 1e-6))

        sim.schedule_local(child, target_lt, fire)


def make_ntp_system(
    level_sizes: Sequence[int],
    *,
    parents_per_server: int = 2,
    poll_period: float = 60.0,
    drift_ppm: float = 100.0,
    stratum0_accuracy: Tuple[float, float] = (0.0005, 0.002),
    link_delay: Tuple[float, float] = (0.005, 0.06),
    seed: int = 0,
) -> Tuple[Network, NTPWorkload]:
    """Build a levelled NTP-like system.

    ``level_sizes[k]`` is the number of level-``k`` servers (level 0 are
    the radio-clock servers attached directly to the abstract source).
    Every server at level ``k >= 1`` links to and polls
    ``parents_per_server`` distinct servers of level ``k - 1`` (or all of
    them if fewer exist).  Level-0 servers poll the source itself over
    high-accuracy links (``stratum0_accuracy`` transit bounds).
    """
    if not level_sizes or any(s <= 0 for s in level_sizes):
        raise ValueError(f"level sizes must be positive, got {level_sizes!r}")
    rng = random.Random(seed)
    source = "source"
    levels: List[List[ProcessorId]] = []
    clocks = {}
    for k, size in enumerate(level_sizes):
        level = [f"s{k}_{i}" for i in range(size)]
        levels.append(level)
        for name in level:
            clocks[name] = PiecewiseDriftingClock(
                seed=rng.randrange(2**31),
                r_min=1 - drift_ppm * 1e-6,
                r_max=1 + drift_ppm * 1e-6,
                offset=rng.uniform(-5.0, 5.0),
            )
    links: List[LinkConfig] = []
    parents: Dict[ProcessorId, Tuple[ProcessorId, ...]] = {}
    for name in levels[0]:
        links.append(
            LinkConfig(
                source,
                name,
                transit=TransitSpec(stratum0_accuracy[0], stratum0_accuracy[1]),
            )
        )
        parents[name] = (source,)
    for k in range(1, len(levels)):
        for name in levels[k]:
            pool = levels[k - 1]
            chosen = tuple(
                sorted(rng.sample(pool, min(parents_per_server, len(pool))))
            )
            parents[name] = chosen
            for parent in chosen:
                links.append(
                    LinkConfig(
                        parent,
                        name,
                        transit=TransitSpec(link_delay[0], link_delay[1]),
                    )
                )
    network = Network(source=source, clocks=clocks, links=links)
    workload = NTPWorkload(
        parents=parents, poll_period=poll_period, seed=rng.randrange(2**31)
    )
    return network, workload
