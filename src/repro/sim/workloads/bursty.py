"""Asymmetric ping: a workload with a controlled ``K2``.

Lemma 4.1 bounds live points by ``O(K2 |E|)`` where ``K2`` is the maximum
number of sends one way on a link between two consecutive sends the other
way.  To *measure* that bound we need traffic whose ``K2`` is a dial: on
every link, one endpoint fires a burst of exactly ``burst`` messages, then
the other endpoint replies once, then the cycle repeats.  The empirical
``K2`` of such a run is ``burst`` (the reply resets the run-length), and
each link can hold up to ``burst + 1`` undelivered sends at a time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from ...core.events import Event, ProcessorId
from ..engine import Simulation

__all__ = ["AsymmetricPing"]

_REPLY_DUE = "bursty-reply-due"


@dataclass
class AsymmetricPing:
    """Per link: ``burst`` sends ``a -> b``, one reply ``b -> a``, repeat."""

    burst: int = 2
    gap: float = 0.5
    cycle_pause: float = 2.0
    seed: int = 0

    def install(self, sim: Simulation) -> None:
        rng = random.Random(self.seed)
        previous_hook = sim.on_message

        def on_message(sim_: Simulation, receive_event: Event, info: object) -> None:
            if info == _REPLY_DUE:
                origin = receive_event.send_eid.proc
                sim_.send(receive_event.proc, origin, None)
            if previous_hook is not None:
                previous_hook(sim_, receive_event, info)

        sim.on_message = on_message
        for u, v in sorted(sim.network.links):
            phase = rng.uniform(0.1, 1.0) * self.cycle_pause
            self._schedule_cycle(sim, u, v, phase)

    def _schedule_cycle(
        self, sim: Simulation, a: ProcessorId, b: ProcessorId, delay: float
    ) -> None:
        def start_cycle():
            self._fire_burst(sim, a, b, self.burst)

        sim.schedule_after(delay, start_cycle)

    def _fire_burst(
        self, sim: Simulation, a: ProcessorId, b: ProcessorId, remaining: int
    ) -> None:
        # the last message of the burst asks b to reply once
        info = _REPLY_DUE if remaining == 1 else None
        sim.send(a, b, info)
        if remaining > 1:
            sim.schedule_after(
                self.gap, lambda: self._fire_burst(sim, a, b, remaining - 1)
            )
        else:
            sim.schedule_after(
                self.cycle_pause, lambda: self._fire_burst(sim, a, b, self.burst)
            )
