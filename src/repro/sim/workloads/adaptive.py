"""Adaptive polling: spend messages only when the bound needs them.

NTP famously adapts its poll interval (RFC 1305's poll-adjust): stable
peers get polled less often.  With *certified* intervals the adaptation
becomes principled - the client knows exactly how loose its bound is:

* width above ``high_water``  -> halve the poll interval (more traffic);
* width below ``low_water``   -> double it (less traffic);

bounded to ``[min_interval, max_interval]``.  Experiment X2 compares this
against fixed-rate polling: matching accuracy for a fraction of the
messages, the practical payoff of optimal bounds the paper's efficiency
result makes affordable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ...core.events import Event, ProcessorId
from ..engine import Simulation

__all__ = ["AdaptivePolling"]

_REQUEST = "adaptive-request"
_RESPONSE = "adaptive-response"


@dataclass
class AdaptivePolling:
    """Width-driven poll-interval adaptation for a client/server set.

    ``servers`` maps each polling processor to the processor it polls
    (the server replies immediately upon request, RPC style).
    """

    servers: Dict[ProcessorId, ProcessorId]
    low_water: float = 0.02
    high_water: float = 0.06
    min_interval: float = 2.0
    max_interval: float = 64.0
    start_interval: float = 8.0
    monitor_channel: str = "efficient"
    seed: int = 0
    #: current per-client interval (observable by experiments)
    intervals: Dict[ProcessorId, float] = field(default_factory=dict)

    def install(self, sim: Simulation) -> None:
        rng = random.Random(self.seed)
        previous_hook = sim.on_message

        def on_message(sim_: Simulation, receive_event: Event, info: object) -> None:
            if info == _REQUEST:
                requester = receive_event.send_eid.proc
                sim_.send(receive_event.proc, requester, _RESPONSE)
            if previous_hook is not None:
                previous_hook(sim_, receive_event, info)

        sim.on_message = on_message
        for client in sorted(self.servers):
            self.intervals[client] = self.start_interval
            phase = rng.uniform(0.1, 1.0) * self.start_interval
            self._schedule_poll(sim, client, phase)

    def _adapt(self, sim: Simulation, client: ProcessorId) -> None:
        estimator = sim.estimator(client, self.monitor_channel)
        width = estimator.estimate_now(sim.local_time(client)).width
        interval = self.intervals[client]
        if width > self.high_water:
            interval = max(self.min_interval, interval / 2)
        elif width < self.low_water:
            interval = min(self.max_interval, interval * 2)
        self.intervals[client] = interval

    def _schedule_poll(
        self, sim: Simulation, client: ProcessorId, delay_lt: float
    ) -> None:
        target_lt = sim.local_time(client) + delay_lt

        def fire():
            sim.send(client, self.servers[client], _REQUEST)
            self._adapt(sim, client)
            self._schedule_poll(sim, client, self.intervals[client])

        sim.schedule_local(client, target_lt, fire)
