"""Periodic gossip: each processor messages each neighbor on its own clock.

This is the bread-and-butter send module.  Each (processor, neighbor) pair
fires independently with a per-pair phase and a jittered local-time period,
so traffic is steady but not lock-stepped.  Optional internal events let
experiments inflate the *relative system speed* ``K1`` (events elsewhere
between two events at one processor) without extra messages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ...core.events import ProcessorId
from ..engine import Simulation

__all__ = ["PeriodicGossip"]


@dataclass
class PeriodicGossip:
    """Send one message per (proc, neighbor) pair every ~``period`` local units.

    Parameters
    ----------
    period:
        Mean local-time interval between sends on each directed pair.
    jitter:
        Fractional uniform jitter applied to every interval (0 = strict).
    seed:
        Workload-private randomness (phases and jitter draws).
    internal_per_period:
        If positive, each processor additionally generates this many
        internal events per period (on average), raising ``K1``.
    until_lt:
        Stop scheduling once a processor's local clock passes this value
        (``None`` = keep going for the whole run).
    """

    period: float = 10.0
    jitter: float = 0.2
    seed: int = 0
    internal_per_period: float = 0.0
    until_lt: Optional[float] = None

    def install(self, sim: Simulation) -> None:
        rng = random.Random(self.seed)
        for proc in sim.network.processors:
            for neighbor in sim.network.neighbors(proc):
                phase = rng.uniform(0.05, 1.0) * self.period
                self._schedule_send(sim, rng, proc, neighbor, phase)
            if self.internal_per_period > 0:
                gap = self.period / self.internal_per_period
                self._schedule_internal(sim, rng, proc, rng.uniform(0.05, 1.0) * gap)

    # -- recurring actions -----------------------------------------------------------

    def _schedule_send(
        self,
        sim: Simulation,
        rng: random.Random,
        proc: ProcessorId,
        neighbor: ProcessorId,
        delay_lt: float,
    ) -> None:
        target_lt = sim.local_time(proc) + delay_lt
        if self.until_lt is not None and target_lt > self.until_lt:
            return

        def fire():
            sim.send(proc, neighbor)
            interval = self.period * (1 + self.jitter * (2 * rng.random() - 1))
            self._schedule_send(sim, rng, proc, neighbor, max(interval, 1e-6))

        sim.schedule_local(proc, target_lt, fire)

    def _schedule_internal(
        self,
        sim: Simulation,
        rng: random.Random,
        proc: ProcessorId,
        delay_lt: float,
    ) -> None:
        target_lt = sim.local_time(proc) + delay_lt
        if self.until_lt is not None and target_lt > self.until_lt:
            return
        gap = self.period / self.internal_per_period

        def fire():
            sim.internal_event(proc)
            interval = gap * (1 + self.jitter * (2 * rng.random() - 1))
            self._schedule_internal(sim, rng, proc, max(interval, 1e-6))

        sim.schedule_local(proc, target_lt, fire)
