"""Discrete-event simulation substrate.

The paper's model is abstract (processors, links, bounds); this package
realises it as a deterministic, seeded simulator so that every theorem can
be checked against concrete executions:

* :mod:`~repro.sim.clock` - drifting hardware-clock models that honour
  their advertised :class:`~repro.core.specs.DriftSpec`;
* :mod:`~repro.sim.network` - topologies, per-direction transit specs,
  actual delay sampling, loss;
* :mod:`~repro.sim.engine` - the event loop driving workloads, passive
  estimators, and loss detection;
* :mod:`~repro.sim.faults` - declarative, seeded fault injection (crashes,
  partitions, burst loss, duplication, out-of-spec excursions) and the
  retransmission policy;
* :mod:`~repro.sim.schedule` - explicit step-by-step adversarial
  schedules (with deterministic Byzantine tampering) and a replay
  harness, used by the conformance/differential test suite;
* :mod:`~repro.sim.trace` - the omniscient execution record used by all
  test oracles;
* :mod:`~repro.sim.workloads` - send modules (periodic gossip, NTP
  hierarchy, Cristian probe bursts, random traffic);
* :mod:`~repro.sim.runner` - one-call orchestration with estimate
  sampling.
"""

from .clock import (
    AffineClock,
    ClockModel,
    ExcursionClock,
    PerfectClock,
    PiecewiseDriftingClock,
    SinusoidalDriftClock,
)
from .engine import LinkCounters, Message, SimProcessor, Simulation
from .faults import (
    CORRUPTION_SCOPES,
    BurstLoss,
    ByzantineProcessor,
    CrashWindow,
    DelayExcursion,
    DriftExcursion,
    Duplication,
    FaultPlan,
    LateJoin,
    PartitionWindow,
    RetransmitPolicy,
    StateCorruption,
    scramble_estimator,
)
from .network import LinkConfig, Network, topologies
from .runner import EstimateSample, RunResult, run_workload, standard_network
from .schedule import CHURN_OPS, Schedule, ScheduleHarness, TamperSpec
from .serialize import dump_run, load_run
from .trace import ExecutionTrace, TracedEvent

__all__ = [
    "AffineClock",
    "BurstLoss",
    "ByzantineProcessor",
    "CHURN_OPS",
    "CORRUPTION_SCOPES",
    "ClockModel",
    "CrashWindow",
    "DelayExcursion",
    "DriftExcursion",
    "Duplication",
    "EstimateSample",
    "ExcursionClock",
    "ExecutionTrace",
    "FaultPlan",
    "LateJoin",
    "LinkConfig",
    "LinkCounters",
    "Message",
    "Network",
    "PartitionWindow",
    "PerfectClock",
    "PiecewiseDriftingClock",
    "RetransmitPolicy",
    "RunResult",
    "Schedule",
    "ScheduleHarness",
    "SimProcessor",
    "SinusoidalDriftClock",
    "Simulation",
    "StateCorruption",
    "TamperSpec",
    "TracedEvent",
    "dump_run",
    "load_run",
    "run_workload",
    "scramble_estimator",
    "standard_network",
    "topologies",
]
