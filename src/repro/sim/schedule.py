"""Deterministic adversarial schedules and their replay harness.

The property-based conformance suite (:mod:`repro.testing`) does not drive
the discrete-event simulator: it drives the protocol *directly* through a
:class:`Schedule` - a fully explicit, JSON-serializable list of steps
(sends, FIFO deliveries, drops) over hidden affine clocks.  Determinism is
the point: a schedule replays bit-identically, so any divergence found by
the differential driver can be committed to the corpus and replayed
forever (see ``docs/TESTING.md``).

A schedule may carry a :class:`TamperSpec` describing a single Byzantine
processor.  Tampering mutates only the history payloads the liar ships
(never the events of the real execution and never the full-information
reference's view payloads, mirroring
:meth:`repro.sim.faults.ActiveFaults.tamper_payloads`), and every lie is a
deterministic function of the schedule - no RNG - so tampered runs replay
exactly too.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.csa import EfficientCSA
from ..core.csa_full import FullInformationCSA
from ..core.events import Event, EventId, EventKind, ProcessorId
from ..core.history import HistoryPayload
from ..core.specs import DriftSpec, SystemSpec, TransitSpec
from ..core.view import View
from .faults import CORRUPTION_SCOPES, scramble_estimator

__all__ = [
    "Schedule",
    "ScheduleHarness",
    "TamperSpec",
    "TAMPER_MODES",
    "CHURN_OPS",
]

#: Byzantine payload mutations a :class:`TamperSpec` may combine.  The
#: deterministic counterparts of :data:`repro.sim.faults.BYZANTINE_MODES`
#: ("lie" ~ lie_timestamps, "equivocate", "truncate"); fabrication is left
#: to the seeded chaos path, which owns the RNG needed for fresh events.
TAMPER_MODES = ("lie", "equivocate", "truncate")


@dataclass(frozen=True)
class TamperSpec:
    """One Byzantine processor, described without any randomness.

    ``liar`` is the processor index (never 0 - the source is the trust
    anchor).  Every ``period``-th history payload the liar ships is
    tampered according to ``modes``:

    * ``"lie"`` - the liar's own records get ``lt + magnitude`` (cached
      per event so the liar stays self-consistent across re-reports, the
      hardest case for the validator);
    * ``"equivocate"`` - like ``"lie"``, but the offset is
      ``magnitude * (1 + dest_index)``: different destinations hear
      different clocks;
    * ``"truncate"`` - the newest record is silently dropped, planting a
      gap the receiver only notices on the next payload.
    """

    liar: int
    modes: Tuple[str, ...]
    magnitude: float = 0.5
    period: int = 2

    def __post_init__(self):
        if self.liar <= 0:
            raise ValueError("the source (index 0) cannot be the liar")
        if not self.modes:
            raise ValueError("a tamper spec needs at least one mode")
        bad = set(self.modes) - set(TAMPER_MODES)
        if bad:
            raise ValueError(f"unknown tamper modes {sorted(bad)}")
        if self.period < 1:
            raise ValueError("tamper period must be >= 1")

    def to_dict(self) -> Dict:
        return {
            "liar": self.liar,
            "modes": list(self.modes),
            "magnitude": self.magnitude,
            "period": self.period,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TamperSpec":
        return cls(
            liar=int(data["liar"]),
            modes=tuple(data["modes"]),
            magnitude=float(data["magnitude"]),
            period=int(data["period"]),
        )


#: Step kinds a schedule may contain.  Every step is a 4-tuple
#: ``(op, src, dest, dt)``: advance real time by ``dt``, then apply ``op``
#: on the directed link ``src -> dest`` (indices into the processor list).
STEP_OPS = ("send", "deliver", "drop")

#: Membership / self-stabilization step kinds (the churn extension).  Same
#: 4-tuple shape, with the second pair reinterpreted per op:
#:
#: * ``("join", joiner, sponsor, dt)`` - admit an absent ``joiner`` via a
#:   bootstrap handshake from ``sponsor`` (must be a link neighbor);
#: * ``("leave", u, u, dt)`` - ``u`` departs; in-flight messages *to* it
#:   are purged and truthfully flagged at their senders;
#: * ``("rejoin", u, u, dt)`` - a departed ``u`` returns with durable
#:   state (no handshake - its estimator survived the absence);
#: * ``("corrupt", u, scope_index, dt)`` - scramble subsystem
#:   ``CORRUPTION_SCOPES[scope_index]`` of ``u``'s efficient estimator
#:   (self-stabilization fault; deterministic per occurrence);
#: * ``("link_down", u, v, dt)`` / ``("link_up", u, v, dt)`` - the edge
#:   disappears/reappears (Pabico-style time-varying edges); going down
#:   purges both direction queues with sender-side loss flags.
#:
#: Every churn op degrades to a no-op when its precondition does not hold
#: (already present, already down, empty queue, ...), preserving the
#: every-subsequence-is-valid property that makes shrinking sound.
CHURN_OPS = ("join", "leave", "rejoin", "corrupt", "link_down", "link_up")

#: ops that purge in-flight queues and therefore need ``lossy=True``
#: (purging under reliable-mode history semantics would leave receivers
#: with a permanent knowledge gap: watermarks already advanced at send)
_PURGING_OPS = ("leave", "rejoin", "link_down", "link_up")


@dataclass(frozen=True)
class Schedule:
    """A deterministic protocol schedule over hidden affine clocks.

    ``rates`` lists the hidden clock rate of each processor (index 0 is
    the source; its rate is forced to 1.0 - the source defines real
    time).  ``edges`` lists undirected links as index pairs.  ``steps``
    drive the run; ``deliver``/``drop`` on an empty queue are no-ops, so
    *every* subsequence of a valid schedule is again a valid schedule -
    the property that makes shrinking and delta-debugging sound.
    """

    rates: Tuple[float, ...]
    edges: Tuple[Tuple[int, int], ...]
    steps: Tuple[Tuple, ...]
    lossy: bool = False
    tamper: Optional[TamperSpec] = None
    #: processors present from the start (indices); ``None`` means all.
    #: Absent processors can only enter via a ``join`` step.  Must contain
    #: 0 - the source anchors real time and cannot join late.
    initial: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        n = len(self.rates)
        if n < 2:
            raise ValueError("a schedule needs at least two processors")
        edge_keys = set()
        for u, v in self.edges:
            if not (0 <= u < n and 0 <= v < n and u != v):
                raise ValueError(f"bad edge ({u}, {v}) for {n} processors")
            edge_keys.add((min(u, v), max(u, v)))
        if self.initial is not None:
            if 0 not in self.initial:
                raise ValueError("the source (index 0) must be present initially")
            if len(set(self.initial)) != len(self.initial):
                raise ValueError("duplicate indices in initial membership")
            for i in self.initial:
                if not (0 <= i < n):
                    raise ValueError(f"initial member {i} out of range for {n} processors")
        for step in self.steps:
            op, u, v, dt = step
            if op not in STEP_OPS and op not in CHURN_OPS:
                raise ValueError(f"unknown step op {op!r}")
            if op == "drop" and not self.lossy:
                raise ValueError("drop steps require a lossy schedule")
            if op in _PURGING_OPS and not self.lossy:
                raise ValueError(
                    f"{op} steps require a lossy schedule (they purge "
                    "in-flight messages)"
                )
            if dt < 0:
                raise ValueError(f"step {step} rewinds time")
            if op in ("join", "leave", "rejoin") and u == 0:
                raise ValueError("the source (index 0) cannot churn")
            if op == "corrupt":
                if not (0 <= u < n):
                    raise ValueError(f"corrupt victim {u} out of range")
                if not (0 <= v < len(CORRUPTION_SCOPES)):
                    raise ValueError(
                        f"corrupt scope index {v} out of range for "
                        f"{CORRUPTION_SCOPES}"
                    )
            elif op in ("join", "link_down", "link_up"):
                if u == v or not (0 <= u < n and 0 <= v < n):
                    raise ValueError(f"bad endpoints in step {step}")
                if (min(u, v), max(u, v)) not in edge_keys:
                    raise ValueError(
                        f"step {step} references ({u}, {v}), which is not an edge"
                    )
            elif op in ("leave", "rejoin"):
                if not (0 <= u < n):
                    raise ValueError(f"bad processor index in step {step}")
        if self.tamper is not None and self.tamper.liar >= n:
            raise ValueError("tamper liar index out of range")

    @property
    def n_procs(self) -> int:
        return len(self.rates)

    @property
    def names(self) -> Tuple[ProcessorId, ...]:
        return tuple(f"q{i}" for i in range(len(self.rates)))

    def directed_links(self) -> List[Tuple[int, int]]:
        out = []
        for u, v in self.edges:
            out.append((u, v))
            out.append((v, u))
        return sorted(set(out))

    # -- persistence (the corpus format, docs/TESTING.md) ----------------------

    def to_dict(self) -> Dict:
        data = {
            "rates": list(self.rates),
            "edges": [list(e) for e in self.edges],
            "steps": [[op, u, v, dt] for op, u, v, dt in self.steps],
            "lossy": self.lossy,
            "tamper": None if self.tamper is None else self.tamper.to_dict(),
        }
        if self.initial is not None:
            data["initial"] = list(self.initial)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "Schedule":
        initial = data.get("initial")
        return cls(
            rates=tuple(float(r) for r in data["rates"]),
            edges=tuple((int(u), int(v)) for u, v in data["edges"]),
            steps=tuple(
                (str(op), int(u), int(v), float(dt))
                for op, u, v, dt in data["steps"]
            ),
            lossy=bool(data.get("lossy", False)),
            tamper=(
                None
                if data.get("tamper") is None
                else TamperSpec.from_dict(data["tamper"])
            ),
            initial=None if initial is None else tuple(int(i) for i in initial),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))

    def build_spec(self) -> SystemSpec:
        """The advertised specification every replay of this schedule obeys.

        The drift band covers all hidden rates with a hair of slack, and
        links advertise only ``transit >= 0`` - so every generated
        execution satisfies its specification by construction.
        """
        rates = self.true_rates()
        band = (min(rates), max(rates))
        names = self.names
        return SystemSpec.build(
            source=names[0],
            processors=list(names),
            links=[(names[u], names[v]) for u, v in self.edges],
            default_drift=DriftSpec.from_rate_bounds(band[0] - 1e-9, band[1] + 1e-9),
            default_transit=TransitSpec(0.0, math.inf),
        )

    def true_rates(self) -> Tuple[float, ...]:
        """Hidden clock rates with the source pinned to real time."""
        return (1.0,) + tuple(self.rates[1:])


class ScheduleHarness:
    """Replays a :class:`Schedule` against live estimators, deterministically.

    One :class:`~repro.core.csa.EfficientCSA` per processor (customizable
    via ``estimator_factory``), optionally shadowed by a
    :class:`~repro.core.csa_full.FullInformationCSA` reference receiving
    untampered view payloads over the same executions.  The harness records
    the omniscient ground truth (events in learn order, real times, a
    causally closed :class:`~repro.core.view.View`) for the oracles in
    :mod:`repro.testing`.
    """

    def __init__(
        self,
        schedule: Schedule,
        *,
        estimator_factory: Optional[
            Callable[[ProcessorId, SystemSpec], EfficientCSA]
        ] = None,
        attach_full: bool = True,
    ):
        self.schedule = schedule
        self.names = list(schedule.names)
        self.rates = dict(zip(self.names, schedule.true_rates()))
        self.spec = schedule.build_spec()
        if estimator_factory is None:
            reliable = not schedule.lossy
            estimator_factory = lambda p, s: EfficientCSA(p, s, reliable=reliable)
        self.csas: Dict[ProcessorId, EfficientCSA] = {
            name: estimator_factory(name, self.spec) for name in self.names
        }
        self.fulls: Dict[ProcessorId, FullInformationCSA] = (
            {name: FullInformationCSA(name, self.spec) for name in self.names}
            if attach_full
            else {}
        )
        self.now = 0.0
        self.seq = {name: 0 for name in self.names}
        #: FIFO queues of (send_event, payload, full_payload) per directed link
        self.in_flight: Dict[Tuple[ProcessorId, ProcessorId], deque] = {}
        for u, v in schedule.edges:
            self.in_flight[(self.names[u], self.names[v])] = deque()
            self.in_flight[(self.names[v], self.names[u])] = deque()
        #: every event of the real execution, in a topological (learn) order
        self.events: Dict[EventId, Event] = {}
        #: the same events as a causally closed View (legacy oracle surface)
        self.view = View()
        #: hidden real time of each event
        self.truth: Dict[EventId, float] = {}
        #: sends dropped and truthfully flagged so far
        self.flagged: Set[EventId] = set()
        #: processors whose state may causally depend on tampered payloads
        self.tainted: Set[ProcessorId] = set()
        # -- dynamic membership state --
        #: processors currently part of the execution
        self.present: Set[ProcessorId] = (
            set(self.names)
            if schedule.initial is None
            else {self.names[i] for i in schedule.initial}
        )
        #: canonical (min, max) name pairs of currently-up links
        self.links_up: Set[Tuple[ProcessorId, ProcessorId]] = {
            tuple(sorted((self.names[u], self.names[v]))) for u, v in schedule.edges
        }
        #: processors whose efficient estimator is corrupted and has not
        #: yet recovered (skipped by end-of-run checks if still dirty)
        self.dirty: Set[ProcessorId] = set()
        self._corrupt_count = 0
        # -- deterministic tampering state --
        self._tamper = schedule.tamper
        self._liar: Optional[ProcessorId] = (
            self.names[self._tamper.liar] if self._tamper is not None else None
        )
        if self._liar is not None:
            self.tainted.add(self._liar)
        self._payload_count = 0
        self._lie_lt: Dict[Tuple[EventId, Optional[ProcessorId]], float] = {}

    # -- clock plumbing ---------------------------------------------------------

    def _lt(self, proc: ProcessorId) -> float:
        return self.rates[proc] * self.now

    def _next_event(self, proc: ProcessorId, kind: EventKind, **kwargs) -> Event:
        event = Event(
            eid=EventId(proc, self.seq[proc]), lt=self._lt(proc), kind=kind, **kwargs
        )
        self.seq[proc] += 1
        self.events[event.eid] = event
        self.view.add(event)
        self.truth[event.eid] = self.now
        return event

    # -- step application -------------------------------------------------------

    def advance(self, dt: float) -> None:
        self.now += dt

    def send(self, src: ProcessorId, dest: ProcessorId) -> None:
        if src not in self.present or dest not in self.present:
            return  # departed endpoints cannot exchange messages
        if tuple(sorted((src, dest))) not in self.links_up:
            return
        event = self._next_event(src, EventKind.SEND, dest=dest)
        payload = self.csas[src].on_send(event)
        if src == self._liar:
            payload = self._tamper_payload(dest, payload)
        full_payload = (
            self.fulls[src].on_send(event) if self.fulls else None
        )
        self.in_flight[(src, dest)].append((event, payload, full_payload))
        self._note_recovered(src)

    def deliver(self, src: ProcessorId, dest: ProcessorId) -> Optional[ProcessorId]:
        """Deliver the oldest in-flight message; returns the receiver or None."""
        queue = self.in_flight[(src, dest)]
        if not queue:
            return None
        send_event, payload, full_payload = queue.popleft()
        event = self._next_event(dest, EventKind.RECEIVE, send_eid=send_event.eid)
        self.csas[dest].on_receive(event, payload)
        if self.fulls:
            self.fulls[dest].on_receive(event, full_payload)
        if self.schedule.lossy:
            self.csas[src].on_delivery_confirmed(send_event.eid)
            if self.fulls:
                self.fulls[src].on_delivery_confirmed(send_event.eid)
        if src in self.tainted:
            self.tainted.add(dest)
        self._note_recovered(dest)
        return dest

    def drop(self, src: ProcessorId, dest: ProcessorId) -> Optional[ProcessorId]:
        """Drop the oldest in-flight message, truthfully detected at the sender."""
        queue = self.in_flight[(src, dest)]
        if not queue:
            return None
        send_event, _payload, _full = queue.popleft()
        self.flagged.add(send_event.eid)
        self.csas[src].on_loss_detected(send_event.eid)
        if self.fulls:
            self.fulls[src].on_loss_detected(send_event.eid)
        return src

    # -- dynamic membership (churn) ---------------------------------------------

    def _purge_queue(self, src: ProcessorId, dest: ProcessorId) -> None:
        """Drop every in-flight message on ``src -> dest``, truthfully
        flagging each at the sender (the schedule is lossy, so the sender's
        loss-detection path re-ships the lost knowledge later)."""
        queue = self.in_flight[(src, dest)]
        while queue:
            send_event, _payload, _full = queue.popleft()
            self.flagged.add(send_event.eid)
            self.csas[src].on_loss_detected(send_event.eid)
            if self.fulls:
                self.fulls[src].on_loss_detected(send_event.eid)

    def _note_recovered(self, proc: ProcessorId) -> None:
        """Clear ``proc`` from the dirty set once its estimator audits clean."""
        if proc in self.dirty and self.csas[proc].self_check():
            self.dirty.discard(proc)

    def leave(self, u: ProcessorId) -> None:
        """``u`` departs: messages in flight *to* it are purged (flagged at
        their senders); messages *from* it stay deliverable (already on the
        wire).  Its estimator state is retained for a durable rejoin."""
        if u not in self.present:
            return
        self.present.discard(u)
        for v in self.names:
            if (v, u) in self.in_flight:
                self._purge_queue(v, u)

    def rejoin(self, u: ProcessorId) -> None:
        """A departed ``u`` returns with durable state - no handshake."""
        if u in self.present:
            return
        self.present.add(u)

    def join(
        self, joiner: ProcessorId, sponsor: ProcessorId
    ) -> Optional[ProcessorId]:
        """Admit ``joiner`` via a bootstrap handshake from ``sponsor``.

        The sponsor performs an ordinary send event toward the joiner; the
        snapshot is taken *after* that send so the handshake message itself
        is covered as an adopted undelivered live point (Lemma 3.1: the
        sponsor's view is the causal past of its latest event, so snapshot
        + handshake receive is information-equivalent to a full replay -
        the joiner's first estimate is already optimal).  A joiner whose
        estimator is not completely fresh (a durable restart) declines the
        snapshot and processes the handshake as a normal delivery.
        Returns the joiner if the handshake happened, else ``None``.
        """
        if joiner in self.present or sponsor not in self.present:
            return None
        if tuple(sorted((joiner, sponsor))) not in self.links_up:
            return None
        event = self._next_event(sponsor, EventKind.SEND, dest=joiner)
        payload = self.csas[sponsor].on_send(event)
        if sponsor == self._liar:
            payload = self._tamper_payload(joiner, payload)
        full_payload = self.fulls[sponsor].on_send(event) if self.fulls else None
        self._note_recovered(sponsor)
        snapshot = self.csas[sponsor].bootstrap_snapshot()
        self.present.add(joiner)
        adopted = self.csas[joiner].bootstrap_from(snapshot)
        recv = self._next_event(joiner, EventKind.RECEIVE, send_eid=event.eid)
        self.csas[joiner].on_receive(recv, payload)
        if self.fulls:
            self.fulls[joiner].on_receive(recv, full_payload)
        if self.schedule.lossy:
            self.csas[sponsor].on_delivery_confirmed(event.eid)
            if self.fulls:
                self.fulls[sponsor].on_delivery_confirmed(event.eid)
        if adopted:
            # watermark handoff: neighbors of the joiner need not re-ship
            # knowledge the snapshot already carried
            frontier = snapshot.frontier()
            for peer in self.present:
                if peer == joiner:
                    continue
                if joiner in self.spec.neighbors(peer):
                    self.csas[peer].history.absorb_peer_frontier(joiner, frontier)
        if sponsor in self.tainted:
            self.tainted.add(joiner)
        self._note_recovered(joiner)
        return joiner

    def corrupt(self, proc: ProcessorId, scope_index: int) -> None:
        """Scramble one subsystem of ``proc``'s efficient estimator.

        Deterministic per occurrence: the RNG is seeded from the running
        corruption count, the victim, and the scope (string seeding hashes
        via SHA-512, so replays agree across processes - unlike ``hash``).
        The full-information reference is never corrupted; it stays the
        clean oracle the recovered estimator is compared against.
        """
        if proc not in self.present:
            return
        scope = CORRUPTION_SCOPES[scope_index]
        self._corrupt_count += 1
        rng = random.Random(f"{self._corrupt_count}|{proc}|{scope}")
        if scramble_estimator(self.csas[proc], scope, rng):
            self.dirty.add(proc)

    def link_down(self, a: ProcessorId, b: ProcessorId) -> None:
        """The edge disappears; both direction queues are purged with
        sender-side loss flags (a lossy-mode-only operation)."""
        key = tuple(sorted((a, b)))
        if key not in self.links_up:
            return
        self.links_up.discard(key)
        self._purge_queue(a, b)
        self._purge_queue(b, a)

    def link_up(self, a: ProcessorId, b: ProcessorId) -> None:
        key = tuple(sorted((a, b)))
        if key in self.links_up:
            return
        if (a, b) in self.in_flight:  # only real edges can come back up
            self.links_up.add(key)

    def run(
        self,
        on_checkpoint: Optional[Callable[[int, ProcessorId], None]] = None,
    ) -> None:
        """Replay every step; call ``on_checkpoint(step_index, proc)`` after
        each effective delivery (at the receiver) or drop (at the sender)."""
        for index, (op, u, v, dt) in enumerate(self.schedule.steps):
            self.advance(dt)
            if op == "corrupt":
                self.corrupt(self.names[u], v)
                continue
            if op in ("leave", "rejoin"):
                getattr(self, op)(self.names[u])
                continue
            src, dest = self.names[u], self.names[v]
            if (src, dest) not in self.in_flight:
                continue  # a shrunk schedule may reference a removed edge
            if op == "send":
                self.send(src, dest)
            elif op == "deliver":
                at = self.deliver(src, dest)
                if at is not None and on_checkpoint is not None:
                    on_checkpoint(index, at)
            elif op == "drop":
                at = self.drop(src, dest)
                if at is not None and on_checkpoint is not None:
                    on_checkpoint(index, at)
            elif op == "join":
                at = self.join(src, dest)
                if at is not None and on_checkpoint is not None:
                    on_checkpoint(index, at)
            elif op == "link_down":
                self.link_down(src, dest)
            else:  # link_up
                self.link_up(src, dest)

    # -- deterministic Byzantine tampering --------------------------------------

    def _tamper_payload(
        self, dest: ProcessorId, payload: HistoryPayload
    ) -> HistoryPayload:
        """Apply the schedule's tamper spec to one outgoing payload.

        Lies are cached per (event, destination) so the liar never
        contradicts itself to the same listener; the cache is consulted on
        every payload (not only firing ones) because an honest-looking
        re-report of an already-told lie must repeat the lie.
        """
        tamper = self._tamper
        self._payload_count += 1
        firing = self._payload_count % tamper.period == 0
        records: List[Event] = []
        mutated = False
        for record in payload.records:
            if record.eid.proc == self._liar and (
                "lie" in tamper.modes or "equivocate" in tamper.modes
            ):
                claimed = self._claimed_lt(dest, record, firing)
                if claimed != record.lt:
                    record = dataclasses.replace(record, lt=claimed)
                    mutated = True
            records.append(record)
        if firing and "truncate" in tamper.modes and len(records) > 1:
            records.pop()
            mutated = True
        if not mutated:
            return payload
        return HistoryPayload(records=tuple(records), loss_flags=payload.loss_flags)

    def _claimed_lt(self, dest: ProcessorId, record: Event, firing: bool) -> float:
        equivocate = "equivocate" in self._tamper.modes
        key = (record.eid, dest if equivocate else None)
        cached = self._lie_lt.get(key)
        if cached is not None:
            return cached
        if not firing:
            return record.lt
        offset = self._tamper.magnitude
        if equivocate:
            offset *= 1.0 + self.names.index(dest)
        claimed = record.lt + offset
        self._lie_lt[key] = claimed
        return claimed
