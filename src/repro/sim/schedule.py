"""Deterministic adversarial schedules and their replay harness.

The property-based conformance suite (:mod:`repro.testing`) does not drive
the discrete-event simulator: it drives the protocol *directly* through a
:class:`Schedule` - a fully explicit, JSON-serializable list of steps
(sends, FIFO deliveries, drops) over hidden affine clocks.  Determinism is
the point: a schedule replays bit-identically, so any divergence found by
the differential driver can be committed to the corpus and replayed
forever (see ``docs/TESTING.md``).

A schedule may carry a :class:`TamperSpec` describing a single Byzantine
processor.  Tampering mutates only the history payloads the liar ships
(never the events of the real execution and never the full-information
reference's view payloads, mirroring
:meth:`repro.sim.faults.ActiveFaults.tamper_payloads`), and every lie is a
deterministic function of the schedule - no RNG - so tampered runs replay
exactly too.
"""

from __future__ import annotations

import dataclasses
import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.csa import EfficientCSA
from ..core.csa_full import FullInformationCSA
from ..core.events import Event, EventId, EventKind, ProcessorId
from ..core.history import HistoryPayload
from ..core.specs import DriftSpec, SystemSpec, TransitSpec
from ..core.view import View

__all__ = ["Schedule", "ScheduleHarness", "TamperSpec", "TAMPER_MODES"]

#: Byzantine payload mutations a :class:`TamperSpec` may combine.  The
#: deterministic counterparts of :data:`repro.sim.faults.BYZANTINE_MODES`
#: ("lie" ~ lie_timestamps, "equivocate", "truncate"); fabrication is left
#: to the seeded chaos path, which owns the RNG needed for fresh events.
TAMPER_MODES = ("lie", "equivocate", "truncate")


@dataclass(frozen=True)
class TamperSpec:
    """One Byzantine processor, described without any randomness.

    ``liar`` is the processor index (never 0 - the source is the trust
    anchor).  Every ``period``-th history payload the liar ships is
    tampered according to ``modes``:

    * ``"lie"`` - the liar's own records get ``lt + magnitude`` (cached
      per event so the liar stays self-consistent across re-reports, the
      hardest case for the validator);
    * ``"equivocate"`` - like ``"lie"``, but the offset is
      ``magnitude * (1 + dest_index)``: different destinations hear
      different clocks;
    * ``"truncate"`` - the newest record is silently dropped, planting a
      gap the receiver only notices on the next payload.
    """

    liar: int
    modes: Tuple[str, ...]
    magnitude: float = 0.5
    period: int = 2

    def __post_init__(self):
        if self.liar <= 0:
            raise ValueError("the source (index 0) cannot be the liar")
        if not self.modes:
            raise ValueError("a tamper spec needs at least one mode")
        bad = set(self.modes) - set(TAMPER_MODES)
        if bad:
            raise ValueError(f"unknown tamper modes {sorted(bad)}")
        if self.period < 1:
            raise ValueError("tamper period must be >= 1")

    def to_dict(self) -> Dict:
        return {
            "liar": self.liar,
            "modes": list(self.modes),
            "magnitude": self.magnitude,
            "period": self.period,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TamperSpec":
        return cls(
            liar=int(data["liar"]),
            modes=tuple(data["modes"]),
            magnitude=float(data["magnitude"]),
            period=int(data["period"]),
        )


#: Step kinds a schedule may contain.  Every step is a 4-tuple
#: ``(op, src, dest, dt)``: advance real time by ``dt``, then apply ``op``
#: on the directed link ``src -> dest`` (indices into the processor list).
STEP_OPS = ("send", "deliver", "drop")


@dataclass(frozen=True)
class Schedule:
    """A deterministic protocol schedule over hidden affine clocks.

    ``rates`` lists the hidden clock rate of each processor (index 0 is
    the source; its rate is forced to 1.0 - the source defines real
    time).  ``edges`` lists undirected links as index pairs.  ``steps``
    drive the run; ``deliver``/``drop`` on an empty queue are no-ops, so
    *every* subsequence of a valid schedule is again a valid schedule -
    the property that makes shrinking and delta-debugging sound.
    """

    rates: Tuple[float, ...]
    edges: Tuple[Tuple[int, int], ...]
    steps: Tuple[Tuple, ...]
    lossy: bool = False
    tamper: Optional[TamperSpec] = None

    def __post_init__(self):
        n = len(self.rates)
        if n < 2:
            raise ValueError("a schedule needs at least two processors")
        for u, v in self.edges:
            if not (0 <= u < n and 0 <= v < n and u != v):
                raise ValueError(f"bad edge ({u}, {v}) for {n} processors")
        for step in self.steps:
            op, u, v, dt = step
            if op not in STEP_OPS:
                raise ValueError(f"unknown step op {op!r}")
            if op == "drop" and not self.lossy:
                raise ValueError("drop steps require a lossy schedule")
            if dt < 0:
                raise ValueError(f"step {step} rewinds time")
        if self.tamper is not None and self.tamper.liar >= n:
            raise ValueError("tamper liar index out of range")

    @property
    def n_procs(self) -> int:
        return len(self.rates)

    @property
    def names(self) -> Tuple[ProcessorId, ...]:
        return tuple(f"q{i}" for i in range(len(self.rates)))

    def directed_links(self) -> List[Tuple[int, int]]:
        out = []
        for u, v in self.edges:
            out.append((u, v))
            out.append((v, u))
        return sorted(set(out))

    # -- persistence (the corpus format, docs/TESTING.md) ----------------------

    def to_dict(self) -> Dict:
        return {
            "rates": list(self.rates),
            "edges": [list(e) for e in self.edges],
            "steps": [[op, u, v, dt] for op, u, v, dt in self.steps],
            "lossy": self.lossy,
            "tamper": None if self.tamper is None else self.tamper.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Schedule":
        return cls(
            rates=tuple(float(r) for r in data["rates"]),
            edges=tuple((int(u), int(v)) for u, v in data["edges"]),
            steps=tuple(
                (str(op), int(u), int(v), float(dt))
                for op, u, v, dt in data["steps"]
            ),
            lossy=bool(data.get("lossy", False)),
            tamper=(
                None
                if data.get("tamper") is None
                else TamperSpec.from_dict(data["tamper"])
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))

    def build_spec(self) -> SystemSpec:
        """The advertised specification every replay of this schedule obeys.

        The drift band covers all hidden rates with a hair of slack, and
        links advertise only ``transit >= 0`` - so every generated
        execution satisfies its specification by construction.
        """
        rates = self.true_rates()
        band = (min(rates), max(rates))
        names = self.names
        return SystemSpec.build(
            source=names[0],
            processors=list(names),
            links=[(names[u], names[v]) for u, v in self.edges],
            default_drift=DriftSpec.from_rate_bounds(band[0] - 1e-9, band[1] + 1e-9),
            default_transit=TransitSpec(0.0, math.inf),
        )

    def true_rates(self) -> Tuple[float, ...]:
        """Hidden clock rates with the source pinned to real time."""
        return (1.0,) + tuple(self.rates[1:])


class ScheduleHarness:
    """Replays a :class:`Schedule` against live estimators, deterministically.

    One :class:`~repro.core.csa.EfficientCSA` per processor (customizable
    via ``estimator_factory``), optionally shadowed by a
    :class:`~repro.core.csa_full.FullInformationCSA` reference receiving
    untampered view payloads over the same executions.  The harness records
    the omniscient ground truth (events in learn order, real times, a
    causally closed :class:`~repro.core.view.View`) for the oracles in
    :mod:`repro.testing`.
    """

    def __init__(
        self,
        schedule: Schedule,
        *,
        estimator_factory: Optional[
            Callable[[ProcessorId, SystemSpec], EfficientCSA]
        ] = None,
        attach_full: bool = True,
    ):
        self.schedule = schedule
        self.names = list(schedule.names)
        self.rates = dict(zip(self.names, schedule.true_rates()))
        self.spec = schedule.build_spec()
        if estimator_factory is None:
            reliable = not schedule.lossy
            estimator_factory = lambda p, s: EfficientCSA(p, s, reliable=reliable)
        self.csas: Dict[ProcessorId, EfficientCSA] = {
            name: estimator_factory(name, self.spec) for name in self.names
        }
        self.fulls: Dict[ProcessorId, FullInformationCSA] = (
            {name: FullInformationCSA(name, self.spec) for name in self.names}
            if attach_full
            else {}
        )
        self.now = 0.0
        self.seq = {name: 0 for name in self.names}
        #: FIFO queues of (send_event, payload, full_payload) per directed link
        self.in_flight: Dict[Tuple[ProcessorId, ProcessorId], deque] = {}
        for u, v in schedule.edges:
            self.in_flight[(self.names[u], self.names[v])] = deque()
            self.in_flight[(self.names[v], self.names[u])] = deque()
        #: every event of the real execution, in a topological (learn) order
        self.events: Dict[EventId, Event] = {}
        #: the same events as a causally closed View (legacy oracle surface)
        self.view = View()
        #: hidden real time of each event
        self.truth: Dict[EventId, float] = {}
        #: sends dropped and truthfully flagged so far
        self.flagged: Set[EventId] = set()
        #: processors whose state may causally depend on tampered payloads
        self.tainted: Set[ProcessorId] = set()
        # -- deterministic tampering state --
        self._tamper = schedule.tamper
        self._liar: Optional[ProcessorId] = (
            self.names[self._tamper.liar] if self._tamper is not None else None
        )
        if self._liar is not None:
            self.tainted.add(self._liar)
        self._payload_count = 0
        self._lie_lt: Dict[Tuple[EventId, Optional[ProcessorId]], float] = {}

    # -- clock plumbing ---------------------------------------------------------

    def _lt(self, proc: ProcessorId) -> float:
        return self.rates[proc] * self.now

    def _next_event(self, proc: ProcessorId, kind: EventKind, **kwargs) -> Event:
        event = Event(
            eid=EventId(proc, self.seq[proc]), lt=self._lt(proc), kind=kind, **kwargs
        )
        self.seq[proc] += 1
        self.events[event.eid] = event
        self.view.add(event)
        self.truth[event.eid] = self.now
        return event

    # -- step application -------------------------------------------------------

    def advance(self, dt: float) -> None:
        self.now += dt

    def send(self, src: ProcessorId, dest: ProcessorId) -> None:
        event = self._next_event(src, EventKind.SEND, dest=dest)
        payload = self.csas[src].on_send(event)
        if src == self._liar:
            payload = self._tamper_payload(dest, payload)
        full_payload = (
            self.fulls[src].on_send(event) if self.fulls else None
        )
        self.in_flight[(src, dest)].append((event, payload, full_payload))

    def deliver(self, src: ProcessorId, dest: ProcessorId) -> Optional[ProcessorId]:
        """Deliver the oldest in-flight message; returns the receiver or None."""
        queue = self.in_flight[(src, dest)]
        if not queue:
            return None
        send_event, payload, full_payload = queue.popleft()
        event = self._next_event(dest, EventKind.RECEIVE, send_eid=send_event.eid)
        self.csas[dest].on_receive(event, payload)
        if self.fulls:
            self.fulls[dest].on_receive(event, full_payload)
        if self.schedule.lossy:
            self.csas[src].on_delivery_confirmed(send_event.eid)
            if self.fulls:
                self.fulls[src].on_delivery_confirmed(send_event.eid)
        if src in self.tainted:
            self.tainted.add(dest)
        return dest

    def drop(self, src: ProcessorId, dest: ProcessorId) -> Optional[ProcessorId]:
        """Drop the oldest in-flight message, truthfully detected at the sender."""
        queue = self.in_flight[(src, dest)]
        if not queue:
            return None
        send_event, _payload, _full = queue.popleft()
        self.flagged.add(send_event.eid)
        self.csas[src].on_loss_detected(send_event.eid)
        if self.fulls:
            self.fulls[src].on_loss_detected(send_event.eid)
        return src

    def run(
        self,
        on_checkpoint: Optional[Callable[[int, ProcessorId], None]] = None,
    ) -> None:
        """Replay every step; call ``on_checkpoint(step_index, proc)`` after
        each effective delivery (at the receiver) or drop (at the sender)."""
        for index, (op, u, v, dt) in enumerate(self.schedule.steps):
            self.advance(dt)
            src, dest = self.names[u], self.names[v]
            if (src, dest) not in self.in_flight:
                continue  # a shrunk schedule may reference a removed edge
            if op == "send":
                self.send(src, dest)
            elif op == "deliver":
                at = self.deliver(src, dest)
                if at is not None and on_checkpoint is not None:
                    on_checkpoint(index, at)
            else:
                at = self.drop(src, dest)
                if at is not None and on_checkpoint is not None:
                    on_checkpoint(index, at)

    # -- deterministic Byzantine tampering --------------------------------------

    def _tamper_payload(
        self, dest: ProcessorId, payload: HistoryPayload
    ) -> HistoryPayload:
        """Apply the schedule's tamper spec to one outgoing payload.

        Lies are cached per (event, destination) so the liar never
        contradicts itself to the same listener; the cache is consulted on
        every payload (not only firing ones) because an honest-looking
        re-report of an already-told lie must repeat the lie.
        """
        tamper = self._tamper
        self._payload_count += 1
        firing = self._payload_count % tamper.period == 0
        records: List[Event] = []
        mutated = False
        for record in payload.records:
            if record.eid.proc == self._liar and (
                "lie" in tamper.modes or "equivocate" in tamper.modes
            ):
                claimed = self._claimed_lt(dest, record, firing)
                if claimed != record.lt:
                    record = dataclasses.replace(record, lt=claimed)
                    mutated = True
            records.append(record)
        if firing and "truncate" in tamper.modes and len(records) > 1:
            records.pop()
            mutated = True
        if not mutated:
            return payload
        return HistoryPayload(records=tuple(records), loss_flags=payload.loss_flags)

    def _claimed_lt(self, dest: ProcessorId, record: Event, firing: bool) -> float:
        equivocate = "equivocate" in self._tamper.modes
        key = (record.eid, dest if equivocate else None)
        cached = self._lie_lt.get(key)
        if cached is not None:
            return cached
        if not firing:
            return record.lt
        offset = self._tamper.magnitude
        if equivocate:
            offset *= 1.0 + self.names.index(dest)
        claimed = record.lt + offset
        self._lie_lt[key] = claimed
        return claimed
