"""Persistence: traces, specs, and samples to/from JSON.

Reproducibility plumbing: a finished run can be archived as a JSON
document (events with real and local times, lost messages, the full
specification) and re-hydrated later into an :class:`ExecutionTrace` and
:class:`SystemSpec` for offline analysis — re-running the claim checkers,
re-querying optimal bounds at historical points, or diffing two runs —
without re-simulating.

The format is versioned and intentionally flat; see :data:`FORMAT_VERSION`.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from ..core.errors import SpecificationError
from ..core.events import Event, EventId, EventKind
from ..core.specs import DriftSpec, SystemSpec, TransitSpec
from .runner import EstimateSample
from .trace import ExecutionTrace

__all__ = [
    "FORMAT_VERSION",
    "trace_to_dict",
    "trace_from_dict",
    "spec_to_dict",
    "spec_from_dict",
    "samples_to_dicts",
    "dump_run",
    "load_run",
]

FORMAT_VERSION = 1


def _num(value: float):
    """JSON-safe float: infinities become strings."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _unnum(value) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


# -- traces ---------------------------------------------------------------------------


def trace_to_dict(trace: ExecutionTrace) -> Dict:
    events = []
    for record in trace:
        event = record.event
        entry = {
            "proc": event.proc,
            "seq": event.seq,
            "lt": event.lt,
            "rt": record.rt,
            "kind": event.kind.value,
        }
        if event.is_send:
            entry["dest"] = event.dest
        if event.is_receive:
            entry["send"] = [event.send_eid.proc, event.send_eid.seq]
        events.append(entry)
    return {
        "version": FORMAT_VERSION,
        "events": events,
        "lost": sorted([eid.proc, eid.seq] for eid in trace.lost_sends),
    }


def trace_from_dict(data: Dict) -> ExecutionTrace:
    if data.get("version") != FORMAT_VERSION:
        raise SpecificationError(
            f"unsupported trace format version {data.get('version')!r}"
        )
    trace = ExecutionTrace()
    for entry in data["events"]:
        kind = EventKind(entry["kind"])
        send_eid = None
        if kind is EventKind.RECEIVE:
            proc, seq = entry["send"]
            send_eid = EventId(proc, seq)
        event = Event(
            eid=EventId(entry["proc"], entry["seq"]),
            lt=entry["lt"],
            kind=kind,
            dest=entry.get("dest"),
            send_eid=send_eid,
        )
        trace.record(event, entry["rt"])
    for proc, seq in data.get("lost", []):
        trace.record_lost(EventId(proc, seq))
    return trace


# -- specs ----------------------------------------------------------------------------


def spec_to_dict(spec: SystemSpec) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "source": spec.source,
        "drift": {
            proc: [drift.alpha, drift.beta] for proc, drift in spec.drift.items()
        },
        "transit": [
            {
                "link": list(lid),
                "directions": {
                    sender: [ts.lower, _num(ts.upper)]
                    for sender, ts in directions.items()
                },
            }
            for lid, directions in spec.transit.items()
        ],
    }


def spec_from_dict(data: Dict) -> SystemSpec:
    if data.get("version") != FORMAT_VERSION:
        raise SpecificationError(
            f"unsupported spec format version {data.get('version')!r}"
        )
    drift = {
        proc: DriftSpec(alpha, beta)
        for proc, (alpha, beta) in data["drift"].items()
    }
    transit = {}
    for entry in data["transit"]:
        u, v = entry["link"]
        transit[(u, v)] = {
            sender: TransitSpec(lower, _unnum(upper))
            for sender, (lower, upper) in entry["directions"].items()
        }
    return SystemSpec(source=data["source"], drift=drift, transit=transit)


# -- samples --------------------------------------------------------------------------


def samples_to_dicts(samples: List[EstimateSample]) -> List[Dict]:
    return [
        {
            "rt": sample.rt,
            "proc": sample.proc,
            "channel": sample.channel,
            "lower": _num(sample.bound.lower),
            "upper": _num(sample.bound.upper),
            "truth": sample.truth,
        }
        for sample in samples
    ]


# -- whole runs -----------------------------------------------------------------------


def dump_run(result, path: str) -> None:
    """Archive a :class:`~repro.sim.runner.RunResult` as one JSON file."""
    document = {
        "version": FORMAT_VERSION,
        "spec": spec_to_dict(result.sim.spec),
        "trace": trace_to_dict(result.trace),
        "samples": samples_to_dicts(result.samples),
        "messages_sent": result.sim.messages_sent,
        "messages_lost": result.sim.messages_lost,
    }
    with open(path, "w") as handle:
        json.dump(document, handle)


def load_run(path: str) -> Tuple[SystemSpec, ExecutionTrace, List[Dict]]:
    """Re-hydrate an archived run: (spec, trace, raw sample dicts)."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("version") != FORMAT_VERSION:
        raise SpecificationError(
            f"unsupported run format version {document.get('version')!r}"
        )
    return (
        spec_from_dict(document["spec"]),
        trace_from_dict(document["trace"]),
        document["samples"],
    )
