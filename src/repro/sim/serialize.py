"""Persistence: traces, specs, and samples to/from JSON.

Reproducibility plumbing: a finished run can be archived as a JSON
document (events with real and local times, lost messages, the full
specification) and re-hydrated later into an :class:`ExecutionTrace` and
:class:`SystemSpec` for offline analysis — re-running the claim checkers,
re-querying optimal bounds at historical points, or diffing two runs —
without re-simulating.

The format is versioned and intentionally flat; see :data:`FORMAT_VERSION`.
Version history:

* **1** - events, lost sends, spec, samples, aggregate message counters.
* **2** - adds per-directed-link ``links`` counters
  (sent/lost/duplicated per ``src -> dest``).  Version-1 documents still
  load; their per-link counters are simply absent (empty mapping).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from ..core.errors import SpecificationError
from ..core.events import Event, EventId
from ..core.specs import DriftSpec, SystemSpec, TransitSpec
from .runner import EstimateSample
from .trace import ExecutionTrace

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "trace_to_dict",
    "trace_from_dict",
    "spec_to_dict",
    "spec_from_dict",
    "samples_to_dicts",
    "link_stats_to_dicts",
    "link_stats_from_dicts",
    "dump_run",
    "load_run",
    "load_run_document",
]

FORMAT_VERSION = 2

#: versions :func:`load_run` and the ``*_from_dict`` helpers accept
SUPPORTED_VERSIONS = (1, 2)


def _check_version(data: Dict, what: str) -> int:
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise SpecificationError(f"unsupported {what} format version {version!r}")
    return version


def _num(value: float):
    """JSON-safe float: infinities become strings."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _unnum(value) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


# -- traces ---------------------------------------------------------------------------


def trace_to_dict(trace: ExecutionTrace) -> Dict:
    # per-event entries are Event.to_dict() plus the analysis-only real time
    events = []
    for record in trace:
        entry = record.event.to_dict()
        entry["rt"] = record.rt
        events.append(entry)
    return {
        "version": FORMAT_VERSION,
        "events": events,
        "lost": sorted([eid.proc, eid.seq] for eid in trace.lost_sends),
    }


def trace_from_dict(data: Dict) -> ExecutionTrace:
    _check_version(data, "trace")
    trace = ExecutionTrace()
    for entry in data["events"]:
        trace.record(Event.from_dict(entry), entry["rt"])
    for proc, seq in data.get("lost", []):
        trace.record_lost(EventId(proc, seq))
    return trace


# -- specs ----------------------------------------------------------------------------


def spec_to_dict(spec: SystemSpec) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "source": spec.source,
        "drift": {
            proc: [drift.alpha, drift.beta] for proc, drift in spec.drift.items()
        },
        "transit": [
            {
                "link": list(lid),
                "directions": {
                    sender: [ts.lower, _num(ts.upper)]
                    for sender, ts in directions.items()
                },
            }
            for lid, directions in spec.transit.items()
        ],
    }


def spec_from_dict(data: Dict) -> SystemSpec:
    _check_version(data, "spec")
    drift = {
        proc: DriftSpec(alpha, beta)
        for proc, (alpha, beta) in data["drift"].items()
    }
    transit = {}
    for entry in data["transit"]:
        u, v = entry["link"]
        transit[(u, v)] = {
            sender: TransitSpec(lower, _unnum(upper))
            for sender, (lower, upper) in entry["directions"].items()
        }
    return SystemSpec(source=data["source"], drift=drift, transit=transit)


# -- samples --------------------------------------------------------------------------


def samples_to_dicts(samples: List[EstimateSample]) -> List[Dict]:
    return [
        {
            "rt": sample.rt,
            "proc": sample.proc,
            "channel": sample.channel,
            "lower": _num(sample.bound.lower),
            "upper": _num(sample.bound.upper),
            "truth": sample.truth,
        }
        for sample in samples
    ]


# -- per-link counters (format v2) ----------------------------------------------------


def link_stats_to_dicts(link_stats: Dict) -> List[Dict]:
    """Flatten ``(src, dest) -> LinkCounters`` into sorted JSON rows."""
    return [
        {
            "src": src,
            "dest": dest,
            "sent": counters.sent,
            "lost": counters.lost,
            "duplicated": counters.duplicated,
        }
        for (src, dest), counters in sorted(link_stats.items())
    ]


def link_stats_from_dicts(rows: List[Dict]) -> Dict[Tuple[str, str], Dict[str, int]]:
    """The v2 ``links`` rows as ``(src, dest) -> {sent, lost, duplicated}``."""
    return {
        (row["src"], row["dest"]): {
            "sent": int(row["sent"]),
            "lost": int(row["lost"]),
            "duplicated": int(row.get("duplicated", 0)),
        }
        for row in rows
    }


# -- whole runs -----------------------------------------------------------------------


def dump_run(result, path: str) -> None:
    """Archive a :class:`~repro.sim.runner.RunResult` as one JSON file."""
    document = {
        "version": FORMAT_VERSION,
        "spec": spec_to_dict(result.sim.spec),
        "trace": trace_to_dict(result.trace),
        "samples": samples_to_dicts(result.samples),
        "messages_sent": result.sim.messages_sent,
        "messages_lost": result.sim.messages_lost,
        "links": link_stats_to_dicts(result.sim.link_stats),
    }
    with open(path, "w") as handle:
        json.dump(document, handle)


def load_run(path: str) -> Tuple[SystemSpec, ExecutionTrace, List[Dict]]:
    """Re-hydrate an archived run: (spec, trace, raw sample dicts).

    Kept as a 3-tuple for backward compatibility; use
    :func:`load_run_document` for the per-link counters a v2 archive adds.
    """
    spec, trace, samples, _links = load_run_document(path)
    return spec, trace, samples


def load_run_document(
    path: str,
) -> Tuple[SystemSpec, ExecutionTrace, List[Dict], Dict[Tuple[str, str], Dict[str, int]]]:
    """Re-hydrate an archived run including v2 per-link counters.

    Version-1 archives load fine; their ``links`` mapping is empty.
    """
    with open(path) as handle:
        document = json.load(handle)
    _check_version(document, "run")
    return (
        spec_from_dict(document["spec"]),
        trace_from_dict(document["trace"]),
        document["samples"],
        link_stats_from_dicts(document.get("links", [])),
    )
