"""High-level run orchestration: build, execute, sample, validate.

The runner is the convenience layer experiments and examples use: it
assembles a :class:`~repro.sim.network.Network` from a topology shape,
attaches estimator channels, installs a workload, runs for a given real
duration while periodically sampling every estimator's current interval
against the true time, and returns everything bundled in a
:class:`RunResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.csa_base import Estimator
from ..core.errors import SimulationError
from ..core.events import ProcessorId
from ..core.intervals import ClockBound
from ..core.specs import TransitSpec
from .clock import ClockModel, PiecewiseDriftingClock
from .engine import Simulation
from .faults import FaultPlan, RetransmitPolicy
from .network import LinkConfig, Network
from .trace import ExecutionTrace

__all__ = ["EstimateSample", "RunResult", "standard_network", "run_workload"]


@dataclass(frozen=True)
class EstimateSample:
    """One sampled estimate: who, when, what, and the truth.

    ``truth`` is the true source time at sampling instant (= real time,
    since the source clock defines real time); soundness means
    ``bound.contains(truth)``.
    """

    rt: float
    proc: ProcessorId
    channel: str
    bound: ClockBound
    truth: float

    @property
    def sound(self) -> bool:
        return self.bound.contains(self.truth, tolerance=1e-6)

    @property
    def width(self) -> float:
        return self.bound.width


@dataclass
class RunResult:
    """Everything a finished run exposes to analysis."""

    sim: Simulation
    trace: ExecutionTrace
    samples: List[EstimateSample] = field(default_factory=list)

    def samples_for(
        self, channel: str, proc: Optional[ProcessorId] = None
    ) -> List[EstimateSample]:
        return [
            s
            for s in self.samples
            if s.channel == channel and (proc is None or s.proc == proc)
        ]

    def soundness_violations(self) -> List[EstimateSample]:
        return [s for s in self.samples if not s.sound]

    def mean_width(self, channel: str, *, skip_unbounded: bool = True) -> float:
        widths = [
            s.width
            for s in self.samples_for(channel)
            if s.bound.is_bounded or not skip_unbounded
        ]
        if not widths:
            return float("inf")
        return sum(widths) / len(widths)

    # -- robustness reporting (quarantine / suspicion / validation) ----------------

    def _each_estimator(self, channel: Optional[str]):
        for proc, sp in self.sim.processors.items():
            for name, estimator in sp.estimators.items():
                if channel is None or name == channel:
                    yield proc, name, estimator

    def quarantine_diagnostics(self, channel: Optional[str] = None) -> Dict[
        Tuple[ProcessorId, str], list
    ]:
        """Per ``(observer, channel)``: quarantined-edge diagnostics, if any."""
        out: Dict[Tuple[ProcessorId, str], list] = {}
        for proc, name, estimator in self._each_estimator(channel):
            diagnostics = list(getattr(estimator, "diagnostics", ()) or ())
            if diagnostics:
                out[(proc, name)] = diagnostics
        return out

    def eviction_events(self, channel: Optional[str] = None) -> Dict[
        Tuple[ProcessorId, str], list
    ]:
        """Per ``(observer, channel)``: suspicion eviction/rehabilitation events."""
        out: Dict[Tuple[ProcessorId, str], list] = {}
        for proc, name, estimator in self._each_estimator(channel):
            events = list(getattr(estimator, "eviction_events", ()) or ())
            if events:
                out[(proc, name)] = events
        return out

    def validation_failures(self, channel: Optional[str] = None) -> Dict[
        Tuple[ProcessorId, str], list
    ]:
        """Per ``(observer, channel)``: payload validation failures recorded."""
        out: Dict[Tuple[ProcessorId, str], list] = {}
        for proc, name, estimator in self._each_estimator(channel):
            failures = list(getattr(estimator, "validation_failures", ()) or ())
            if failures:
                out[(proc, name)] = failures
        return out

    def evicted_by(self, channel: str) -> Dict[ProcessorId, frozenset]:
        """Per observer on ``channel``: the set of processors it has evicted."""
        out: Dict[ProcessorId, frozenset] = {}
        for proc, _name, estimator in self._each_estimator(channel):
            suspicion = getattr(estimator, "suspicion", None)
            if suspicion is not None:
                out[proc] = suspicion.evicted_procs
        return out

    # -- self-stabilization reporting (churn extension) -----------------------------

    def recovery_events(self, channel: Optional[str] = None) -> Dict[
        Tuple[ProcessorId, str], list
    ]:
        """Per ``(observer, channel)``: self-stabilization recovery events."""
        out: Dict[Tuple[ProcessorId, str], list] = {}
        for proc, name, estimator in self._each_estimator(channel):
            events = list(getattr(estimator, "recovery_events", ()) or ())
            if events:
                out[(proc, name)] = events
        return out

    def reconvergence_after(
        self, rt0: float, proc: ProcessorId, channel: str
    ) -> Tuple[float, int]:
        """Re-convergence after a disruption at real time ``rt0``.

        Returns ``(rt_delta, samples_examined)``: the real-time lag from
        ``rt0`` to the first sample of ``proc`` on ``channel`` from which
        every remaining sample is sound *and* bounded - the operational
        reading of "the Theorem 2.1 bounds hold again".  ``(inf, n)`` if
        the tail never settles (or no sample at/after ``rt0`` exists).
        """
        tail = [s for s in self.samples_for(channel, proc) if s.rt >= rt0]
        settled_from: Optional[float] = None
        for sample in tail:
            good = sample.sound and sample.bound.is_bounded
            if good and settled_from is None:
                settled_from = sample.rt
            elif not good:
                settled_from = None
        if settled_from is None:
            return float("inf"), len(tail)
        return settled_from - rt0, len(tail)


def standard_network(
    names: Sequence[ProcessorId],
    links: Sequence[Tuple[ProcessorId, ProcessorId]],
    *,
    source: Optional[ProcessorId] = None,
    seed: int = 0,
    drift_ppm: float = 100.0,
    delay: Tuple[float, float] = (0.01, 0.08),
    loss_prob: float = 0.0,
    clock_offset_spread: float = 5.0,
) -> Network:
    """A network with drifting clocks and uniform link behaviour.

    Every non-source processor gets a seeded
    :class:`~repro.sim.clock.PiecewiseDriftingClock` within
    ``+/- drift_ppm``; every link gets transit bounds ``[delay[0],
    delay[1]]`` and the given loss probability.
    """
    if source is None:
        source = names[0]
    rng = random.Random(seed)
    clocks: Dict[ProcessorId, ClockModel] = {}
    for name in names:
        if name == source:
            continue
        clocks[name] = PiecewiseDriftingClock(
            seed=rng.randrange(2**31),
            r_min=1 - drift_ppm * 1e-6,
            r_max=1 + drift_ppm * 1e-6,
            offset=rng.uniform(-clock_offset_spread, clock_offset_spread),
        )
    link_configs = [
        LinkConfig(u, v, transit=TransitSpec(delay[0], delay[1]), loss_prob=loss_prob)
        for u, v in links
    ]
    return Network(source=source, clocks=clocks, links=link_configs)


def run_workload(
    network: Network,
    workload,
    estimators: Dict[str, Callable[[ProcessorId, object], Estimator]],
    *,
    duration: float,
    seed: int = 0,
    sample_period: Optional[float] = None,
    sample_channels: Optional[Sequence[str]] = None,
    loss_detection_delay: float = 5.0,
    confirm_deliveries: Optional[bool] = None,
    faults: Optional[FaultPlan] = None,
    retransmit: Optional[RetransmitPolicy] = None,
) -> RunResult:
    """Build a simulation, run it, and collect estimate samples.

    ``estimators`` maps channel names to factories ``(proc, spec) ->
    Estimator``.  If any link is lossy and ``confirm_deliveries`` is not
    explicitly set, delivery confirmations are enabled automatically (the
    unreliable-mode protocol needs them).  ``faults`` attaches a
    :class:`~repro.sim.faults.FaultPlan`; ``retransmit`` replaces the loss
    oracle with a :class:`~repro.sim.faults.RetransmitPolicy`.
    """
    lossy = any(link.loss_prob > 0 for link in network.links.values())
    if confirm_deliveries is None:
        confirm_deliveries = lossy
    sim = Simulation(
        network,
        seed=seed,
        loss_detection_delay=loss_detection_delay,
        confirm_deliveries=confirm_deliveries,
        faults=faults,
        retransmit=retransmit,
    )
    for name, factory in estimators.items():
        sim.attach_estimators(name, factory)
    workload.install(sim)
    result = RunResult(sim=sim, trace=sim.trace)
    if sample_period is not None:
        channels = tuple(sample_channels or estimators.keys())

        def sample():
            for proc in network.processors:
                lt_now = sim.local_time(proc)
                for channel in channels:
                    bound = sim.estimator(proc, channel).estimate_now(lt_now)
                    result.samples.append(
                        EstimateSample(
                            rt=sim.now,
                            proc=proc,
                            channel=channel,
                            bound=bound,
                            truth=sim.now,
                        )
                    )
            if sim.now + sample_period <= duration:
                sim.schedule_after(sample_period, sample)

        sim.schedule_at(sample_period, sample)
    sim.run_until(duration)
    return result
