"""Hardware clock models for the simulator.

A clock model maps real time to local time and back.  Every model
*advertises* a :class:`~repro.core.specs.DriftSpec`; the model's actual
behaviour must stay within the advertised bounds, because the optimality
theorems quantify over executions that satisfy their own specification.
The test-suite verifies this containment for every model (including the
randomised one, via hypothesis).

Models:

* :class:`PerfectClock` - ``LT == RT`` (the source).
* :class:`AffineClock` - constant rate and offset; the classical
  fixed-skew model.
* :class:`PiecewiseDriftingClock` - the realistic model: the rate performs
  a seeded random walk within ``[r_min, r_max]``, changing at random
  intervals.  This exercises the *drifting* part of the paper's title:
  no single affine correction explains such a clock for long.

All clocks here are strictly increasing and continuous, hence invertible,
as the paper's model requires (it excludes discontinuous local clocks).
"""

from __future__ import annotations

import abc
import bisect
import math
import random
from typing import List, Tuple

from ..core.errors import SimulationError
from ..core.specs import DriftSpec

__all__ = [
    "ClockModel",
    "PerfectClock",
    "AffineClock",
    "PiecewiseDriftingClock",
    "SinusoidalDriftClock",
    "ExcursionClock",
]


class ClockModel(abc.ABC):
    """A strictly increasing, invertible mapping from real to local time."""

    @property
    @abc.abstractmethod
    def advertised(self) -> DriftSpec:
        """The drift specification this clock promises to satisfy."""

    @abc.abstractmethod
    def lt(self, rt: float) -> float:
        """Local time shown when real time is ``rt >= 0``."""

    @abc.abstractmethod
    def rt(self, lt: float) -> float:
        """The real time at which the clock shows ``lt`` (inverse of :meth:`lt`)."""

    def lt_batch(self, rts: List[float]) -> List[float]:
        """Local times for many real times; identical values to mapping :meth:`lt`.

        The batch-delivery engine path funnels every same-round timestamp
        through one call so stateful models can amortize their lazy state
        extension; the default is the plain scalar loop.
        """
        return [self.lt(rt) for rt in rts]


class PerfectClock(ClockModel):
    """The source's clock: local time equals real time."""

    @property
    def advertised(self) -> DriftSpec:
        return DriftSpec.perfect()

    def lt(self, rt: float) -> float:
        return rt

    def rt(self, lt: float) -> float:
        return lt


class AffineClock(ClockModel):
    """``LT = offset + rate * RT`` with a constant rate.

    The advertised spec defaults to the exact rate bounds ``[rate, rate]``
    widened to the given ppm envelope, mirroring a workstation whose quartz
    oscillator sits somewhere inside its datasheet tolerance.
    """

    def __init__(self, offset: float = 0.0, rate: float = 1.0, *, advertised_ppm: float = None):
        if rate <= 0:
            raise SimulationError(f"clock rate must be positive, got {rate}")
        self.offset = offset
        self.rate = rate
        if advertised_ppm is None:
            # tightest spec containing the true rate
            self._advertised = DriftSpec.from_rate_bounds(rate, rate)
        else:
            self._advertised = DriftSpec.from_ppm(advertised_ppm)
            rho = advertised_ppm * 1e-6
            if not (1 - rho <= rate <= 1 + rho):
                raise SimulationError(
                    f"true rate {rate} outside advertised +/-{advertised_ppm} ppm"
                )

    @property
    def advertised(self) -> DriftSpec:
        return self._advertised

    def lt(self, rt: float) -> float:
        return self.offset + self.rate * rt

    def rt(self, lt: float) -> float:
        return (lt - self.offset) / self.rate


class PiecewiseDriftingClock(ClockModel):
    """A clock whose rate random-walks inside ``[r_min, r_max]``.

    Segments are generated lazily and deterministically from the seed: the
    rate is redrawn uniformly from the advertised band (optionally pulled
    towards the current value) at exponentially distributed real-time
    intervals.  ``advertised`` is exactly ``[r_min, r_max]`` expressed as a
    :class:`DriftSpec`, so the clock satisfies its spec by construction:
    over any real interval, elapsed local time is the integral of a rate
    that stays within the band.
    """

    def __init__(
        self,
        seed: int,
        *,
        r_min: float = 1.0 - 1e-4,
        r_max: float = 1.0 + 1e-4,
        offset: float = 0.0,
        mean_segment: float = 50.0,
        smoothness: float = 0.5,
    ):
        if not (0 < r_min <= r_max):
            raise SimulationError(f"bad rate band [{r_min}, {r_max}]")
        if mean_segment <= 0:
            raise SimulationError("mean_segment must be positive")
        if not (0 <= smoothness < 1):
            raise SimulationError("smoothness must be in [0, 1)")
        self._rng = random.Random(seed)
        self._r_min = r_min
        self._r_max = r_max
        self._mean_segment = mean_segment
        self._smoothness = smoothness
        self._advertised = DriftSpec.from_rate_bounds(r_min, r_max)
        initial_rate = self._rng.uniform(r_min, r_max)
        #: segment starts: (rt_start, lt_start, rate); covers [rt_start, next)
        self._segments: List[Tuple[float, float, float]] = [(0.0, offset, initial_rate)]
        #: parallel arrays of segment starts, for O(log n) bisect lookups
        self._starts_rt: List[float] = [0.0]
        self._starts_lt: List[float] = [offset]
        self._horizon_rt = 0.0

    @property
    def advertised(self) -> DriftSpec:
        return self._advertised

    @property
    def rate_band(self) -> Tuple[float, float]:
        return self._r_min, self._r_max

    def _extend_to(self, rt: float) -> None:
        while self._horizon_rt <= rt:
            rt_start, lt_start, rate = self._segments[-1]
            duration = self._rng.expovariate(1.0 / self._mean_segment)
            rt_end = rt_start + max(duration, 1e-6)
            lt_end = lt_start + rate * (rt_end - rt_start)
            fresh = self._rng.uniform(self._r_min, self._r_max)
            next_rate = self._smoothness * rate + (1 - self._smoothness) * fresh
            self._segments.append((rt_end, lt_end, next_rate))
            self._starts_rt.append(rt_end)
            self._starts_lt.append(lt_end)
            self._horizon_rt = rt_end

    def lt(self, rt: float) -> float:
        if rt < 0:
            raise SimulationError(f"real time must be >= 0, got {rt}")
        self._extend_to(rt)
        idx = bisect.bisect_right(self._starts_rt, rt) - 1
        rt_start, lt_start, rate = self._segments[idx]
        return lt_start + rate * (rt - rt_start)

    def lt_batch(self, rts: List[float]) -> List[float]:
        """Bulk :meth:`lt`: one segment extension, then O(log n) per query.

        Values are bit-identical to the scalar loop - ``_extend_to`` draws
        the same segment sequence whether it is reached incrementally or
        in one jump to the batch maximum - but the per-call horizon check
        and Python dispatch are paid once.  Inputs are validated up front,
        so an invalid batch raises before any segments are generated.
        """
        if not rts:
            return []
        for rt in rts:
            if rt < 0:
                raise SimulationError(f"real time must be >= 0, got {rt}")
        self._extend_to(max(rts))
        starts_rt = self._starts_rt
        segments = self._segments
        out = []
        for rt in rts:
            rt_start, lt_start, rate = segments[bisect.bisect_right(starts_rt, rt) - 1]
            out.append(lt_start + rate * (rt - rt_start))
        return out

    def rt(self, lt: float) -> float:
        if lt < self._segments[0][1]:
            raise SimulationError(
                f"local time {lt} precedes clock start {self._segments[0][1]}"
            )
        # Extend until the last generated segment starts after lt, so some
        # earlier segment is guaranteed to cover it.
        while lt > self._starts_lt[-1]:
            self._extend_to(self._horizon_rt + self._mean_segment)
        idx = bisect.bisect_right(self._starts_lt, lt) - 1
        rt_start, lt_start, rate = self._segments[idx]
        return rt_start + (lt - lt_start) / rate

    def segment_count(self) -> int:
        return len(self._segments)


class SinusoidalDriftClock(ClockModel):
    """A clock whose rate oscillates sinusoidally - the temperature model.

    Quartz oscillators drift with ambient temperature, which typically
    cycles (diurnal or HVAC-driven); the resulting rate is well modelled
    as ``rate(t) = center + amplitude * sin(2 pi t / period + phase)``.
    The local time is the closed-form integral

        ``LT(t) = offset + center * t
                  - amplitude * period / (2 pi)
                    * (cos(2 pi t / period + phase) - cos(phase))``

    and the inverse is computed by bisection (the rate is everywhere
    positive, so the mapping is strictly increasing).  The advertised
    spec is exactly the band ``[center - amplitude, center + amplitude]``.
    """

    def __init__(
        self,
        *,
        center: float = 1.0,
        amplitude: float = 5e-5,
        period: float = 600.0,
        phase: float = 0.0,
        offset: float = 0.0,
    ):
        if not (0 <= amplitude < center):
            raise SimulationError(
                f"need 0 <= amplitude < center, got {amplitude}, {center}"
            )
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self.center = center
        self.amplitude = amplitude
        self.period = period
        self.phase = phase
        self.offset = offset
        self._omega = 2.0 * math.pi / period
        self._advertised = DriftSpec.from_rate_bounds(
            center - amplitude, center + amplitude
        )

    @property
    def advertised(self) -> DriftSpec:
        return self._advertised

    def lt(self, rt: float) -> float:
        if rt < 0:
            raise SimulationError(f"real time must be >= 0, got {rt}")
        swing = self.amplitude / self._omega
        return (
            self.offset
            + self.center * rt
            - swing * (math.cos(self._omega * rt + self.phase) - math.cos(self.phase))
        )

    def rt(self, lt: float) -> float:
        if lt < self.offset:
            raise SimulationError(
                f"local time {lt} precedes clock start {self.offset}"
            )
        # bracket: rate is within [center - amplitude, center + amplitude]
        low = (lt - self.offset) / (self.center + self.amplitude)
        high = (lt - self.offset) / (self.center - self.amplitude) + 1e-12
        for _ in range(200):
            mid = 0.5 * (low + high)
            if self.lt(mid) < lt:
                low = mid
            else:
                high = mid
            if high - low <= 1e-12 * max(1.0, high):
                break
        return 0.5 * (low + high)


class ExcursionClock(ClockModel):
    """A clock that *violates* its advertised spec during excursion windows.

    Wraps a base clock and adds ``rate_offset`` to its rate over each real
    time window ``[start, end)``:

        ``LT(t) = base.LT(t) + sum_w offset_w * |[0, t] ∩ [start_w, end_w)|``

    The advertised spec is the *base clock's* spec, unchanged - the whole
    point is a clock that silently leaves its datasheet band, the
    out-of-spec fault :class:`~repro.sim.faults.DriftExcursion` injects.
    Such executions break the preconditions of Theorem 2.1; estimators see
    timestamps their specification cannot explain, which is what the
    degraded-mode quarantine of :class:`~repro.core.csa.EfficientCSA`
    exists to absorb.

    The mapping stays strictly increasing (required by the model): the
    summed active offsets may never push the rate to zero, which is
    validated against the base clock's advertised minimum rate.
    """

    def __init__(self, base: ClockModel, windows):
        self.base = base
        cleaned = []
        for start, end, offset in windows:
            if not (0 <= start < end):
                raise SimulationError(f"bad excursion window [{start}, {end})")
            if offset == 0:
                raise SimulationError("excursion rate offset must be non-zero")
            cleaned.append((float(start), float(end), float(offset)))
        self._windows = tuple(cleaned)
        # minimum instantaneous base rate allowed by the advertised band
        min_rate = 1.0 / base.advertised.beta
        boundaries = sorted({w[0] for w in self._windows} | {w[1] for w in self._windows})
        for point in boundaries:
            active = sum(o for s, e, o in self._windows if s <= point < e)
            if min_rate + active <= 0:
                raise SimulationError(
                    f"excursion offsets sum to {active} at rt={point}, which would "
                    f"stop or reverse a clock with minimum rate {min_rate}"
                )

    @property
    def advertised(self) -> DriftSpec:
        return self.base.advertised

    @property
    def windows(self):
        return self._windows

    def _extra(self, rt: float) -> float:
        total = 0.0
        for start, end, offset in self._windows:
            overlap = min(rt, end) - start
            if overlap > 0:
                total += offset * overlap
        return total

    def lt(self, rt: float) -> float:
        if rt < 0:
            raise SimulationError(f"real time must be >= 0, got {rt}")
        return self.base.lt(rt) + self._extra(rt)

    def rt(self, lt: float) -> float:
        start_lt = self.lt(0.0)
        if lt < start_lt:
            raise SimulationError(f"local time {lt} precedes clock start {start_lt}")
        # exponential search for an upper bracket, then bisection (the
        # mapping is strictly increasing but only piecewise smooth)
        high = 1.0
        while self.lt(high) < lt:
            high *= 2.0
            if high > 1e18:  # pragma: no cover - defensive
                raise SimulationError(f"cannot bracket local time {lt}")
        low = 0.0
        for _ in range(200):
            mid = 0.5 * (low + high)
            if self.lt(mid) < lt:
                low = mid
            else:
                high = mid
            if high - low <= 1e-12 * max(1.0, high):
                break
        return 0.5 * (low + high)
