"""Deterministic discrete-event simulation engine.

The engine advances real time through a priority queue of actions, creates
events (sends, receives, internal points) at processors, drives every
attached passive estimator, and records the omniscient
:class:`~repro.sim.trace.ExecutionTrace`.

Design points that matter for fidelity:

* **Estimators are passive** (Sec 2.2): workloads decide all traffic; the
  estimators only fill/read piggybacked payloads.  Several estimator kinds
  can ride the *same* execution simultaneously, each with its own payload
  channel - that is how the baseline-comparison experiment observes all
  algorithms under identical conditions.
* **Specs are honoured by construction**: actual delays are sampled inside
  the advertised transit bounds (with a small interior margin so FIFO
  nudges cannot push them out), and clock models stay inside their
  advertised drift bands.  The trace-level validator double-checks every
  run in the tests.
* **FIFO links**: report propagation (Figure 2) requires per-direction
  FIFO delivery; arrivals on a directed link are clamped to be strictly
  increasing, staying within the transit spec (see DESIGN.md).
* **Loss and detection** (Sec 3.3): each send may be dropped with the
  link's loss probability; a dropped message triggers, after
  ``loss_detection_delay`` real time units, the sender's
  ``on_loss_detected`` hook - the paper's assumed detection mechanism.
  Successful deliveries trigger ``on_delivery_confirmed`` at the sender.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.csa_base import Estimator
from ..core.errors import SimulationError
from ..core.events import Event, EventId, EventKind, ProcessorId
from .clock import ClockModel
from .network import LinkConfig, Network
from .trace import ExecutionTrace

__all__ = ["Message", "SimProcessor", "Simulation"]

#: minimal spacing forced between same-processor events and FIFO arrivals
_NUDGE = 1e-9


@dataclass
class Message:
    """An in-flight application message with its piggybacked CSA payloads."""

    send_event: Event
    payloads: Dict[str, object]
    info: object = None


@dataclass
class SimProcessor:
    """Run-time state of one simulated processor."""

    name: ProcessorId
    clock: ClockModel
    estimators: Dict[str, Estimator] = field(default_factory=dict)
    next_seq: int = 0
    last_event_rt: float = float("-inf")
    last_event_lt: float = float("-inf")

    def make_event(
        self,
        rt: float,
        kind: EventKind,
        *,
        dest: Optional[ProcessorId] = None,
        send_eid: Optional[EventId] = None,
    ) -> Tuple[Event, float]:
        """Create this processor's next event at (approximately) ``rt``.

        Returns ``(event, actual_rt)``; ``actual_rt`` may be nudged forward
        to keep per-processor real times (hence local times) strictly
        increasing.
        """
        if rt <= self.last_event_rt:
            rt = self.last_event_rt + _NUDGE
        lt = self.clock.lt(rt)
        if lt <= self.last_event_lt:
            raise SimulationError(
                f"clock of {self.name!r} not strictly increasing at rt={rt}"
            )
        event = Event(
            eid=EventId(self.name, self.next_seq),
            lt=lt,
            kind=kind,
            dest=dest,
            send_eid=send_eid,
        )
        self.next_seq += 1
        self.last_event_rt = rt
        self.last_event_lt = lt
        return event, rt


class Simulation:
    """The simulator: one network, one workload-driven execution."""

    def __init__(
        self,
        network: Network,
        *,
        seed: int = 0,
        loss_detection_delay: float = 5.0,
        confirm_deliveries: bool = False,
    ):
        self.network = network
        self.spec = network.spec
        self.rng = random.Random(seed)
        self.trace = ExecutionTrace()
        self.loss_detection_delay = loss_detection_delay
        #: whether to signal on_delivery_confirmed (needed by unreliable-mode
        #: estimators; reliable runs skip the bookkeeping)
        self.confirm_deliveries = confirm_deliveries
        self.now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._tiebreak = itertools.count()
        self.processors: Dict[ProcessorId, SimProcessor] = {
            name: SimProcessor(name, network.clocks[name])
            for name in network.processors
        }
        #: last scheduled arrival per directed link, for FIFO clamping
        self._last_arrival: Dict[Tuple[ProcessorId, ProcessorId], float] = {}
        #: workload hook invoked at each delivery: fn(sim, receive_event, info)
        self.on_message: Optional[Callable[["Simulation", Event, object], None]] = None
        #: workload hook invoked on each detected loss: fn(sim, send_event, info)
        self.on_loss: Optional[Callable[["Simulation", Event, object], None]] = None
        self.messages_sent = 0
        self.messages_lost = 0

    # -- setup -------------------------------------------------------------------

    def attach_estimators(
        self, name: str, factory: Callable[[ProcessorId, object], Estimator]
    ) -> None:
        """Create one estimator per processor under payload channel ``name``."""
        for proc in self.processors.values():
            if name in proc.estimators:
                raise SimulationError(f"estimator channel {name!r} already attached")
            proc.estimators[name] = factory(proc.name, self.spec)

    def estimator(self, proc: ProcessorId, name: str) -> Estimator:
        return self.processors[proc].estimators[name]

    # -- scheduling ----------------------------------------------------------------

    def schedule_at(self, rt: float, action: Callable[[], None]) -> None:
        if rt < self.now:
            raise SimulationError(f"cannot schedule in the past ({rt} < {self.now})")
        heapq.heappush(self._queue, (rt, next(self._tiebreak), action))

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        self.schedule_at(self.now + delay, action)

    def schedule_local(
        self, proc: ProcessorId, lt: float, action: Callable[[], None]
    ) -> None:
        """Schedule an action when ``proc``'s own clock shows ``lt``."""
        rt = self.processors[proc].clock.rt(lt)
        self.schedule_at(rt, action)

    def local_time(self, proc: ProcessorId) -> float:
        return self.processors[proc].clock.lt(self.now)

    # -- event generation --------------------------------------------------------------

    def internal_event(self, proc: ProcessorId) -> Event:
        """An internal point at ``proc`` (used to raise relative system speed)."""
        sp = self.processors[proc]
        event, rt = sp.make_event(self.now, EventKind.INTERNAL)
        self.trace.record(event, rt)
        for estimator in sp.estimators.values():
            estimator.on_internal(event)
        return event

    def send(self, src: ProcessorId, dest: ProcessorId, info: object = None) -> Event:
        """Send an application message now; returns the send event."""
        link = self.network.link_between(src, dest)
        sp = self.processors[src]
        send_event, send_rt = sp.make_event(self.now, EventKind.SEND, dest=dest)
        self.trace.record(send_event, send_rt)
        payloads = {
            name: estimator.on_send(send_event)
            for name, estimator in sp.estimators.items()
        }
        message = Message(send_event=send_event, payloads=payloads, info=info)
        self.messages_sent += 1
        if link.loss_prob > 0 and self.rng.random() < link.loss_prob:
            self.messages_lost += 1
            self.schedule_after(
                self.loss_detection_delay, lambda: self._detect_loss(message)
            )
            return send_event
        arrival = self._fifo_arrival(src, dest, send_rt, link)
        self.schedule_at(arrival, lambda: self._deliver(message, arrival))
        return send_event

    def _fifo_arrival(
        self, src: ProcessorId, dest: ProcessorId, send_rt: float, link: LinkConfig
    ) -> float:
        spec = link.spec_for(src)
        span = spec.slack if spec.is_bounded else link.unbounded_span
        # sample with a small interior margin so FIFO nudges stay in spec
        margin = 0.02 * span
        delay = spec.lower + margin + self.rng.random() * max(span - 2 * margin, 0.0)
        arrival = send_rt + delay
        key = (src, dest)
        floor = self._last_arrival.get(key, -1.0) + _NUDGE
        if arrival < floor:
            arrival = floor
        if spec.is_bounded and arrival > send_rt + spec.upper:
            previous = self._last_arrival.get(key, send_rt)
            arrival = 0.5 * (previous + send_rt + spec.upper)
            if arrival <= previous:
                raise SimulationError(
                    f"cannot schedule FIFO arrival on {key} within transit spec"
                )
        if arrival < send_rt + spec.lower:
            raise SimulationError(
                f"arrival violates transit lower bound on {key}"
            )
        self._last_arrival[key] = arrival
        return arrival

    def _deliver(self, message: Message, arrival: float) -> None:
        send_event = message.send_event
        dest = send_event.dest
        dp = self.processors[dest]
        receive_event, recv_rt = dp.make_event(
            arrival, EventKind.RECEIVE, send_eid=send_event.eid
        )
        self.trace.record(receive_event, recv_rt)
        for name, estimator in dp.estimators.items():
            estimator.on_receive(receive_event, message.payloads.get(name))
        if self.confirm_deliveries:
            for estimator in self.processors[send_event.proc].estimators.values():
                estimator.on_delivery_confirmed(send_event.eid)
        if self.on_message is not None:
            self.on_message(self, receive_event, message.info)

    def _detect_loss(self, message: Message) -> None:
        send_event = message.send_event
        self.trace.record_lost(send_event.eid)
        for estimator in self.processors[send_event.proc].estimators.values():
            estimator.on_loss_detected(send_event.eid)
        if self.on_loss is not None:
            self.on_loss(self, send_event, message.info)

    # -- main loop -----------------------------------------------------------------

    def run_until(self, rt_limit: float, *, max_actions: Optional[int] = None) -> int:
        """Process queued actions until ``rt_limit``; returns actions executed."""
        executed = 0
        while self._queue and self._queue[0][0] <= rt_limit:
            if max_actions is not None and executed >= max_actions:
                break
            rt, _tie, action = heapq.heappop(self._queue)
            self.now = rt
            action()
            executed += 1
        self.now = max(self.now, rt_limit)
        return executed

    def pending_actions(self) -> int:
        return len(self._queue)
