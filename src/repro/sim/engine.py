"""Deterministic discrete-event simulation engine.

The engine advances real time through a priority queue of actions, creates
events (sends, receives, internal points) at processors, drives every
attached passive estimator, and records the omniscient
:class:`~repro.sim.trace.ExecutionTrace`.

Design points that matter for fidelity:

* **Estimators are passive** (Sec 2.2): workloads decide all traffic; the
  estimators only fill/read piggybacked payloads.  Several estimator kinds
  can ride the *same* execution simultaneously, each with its own payload
  channel - that is how the baseline-comparison experiment observes all
  algorithms under identical conditions.
* **Specs are honoured by construction**: actual delays are sampled inside
  the advertised transit bounds (with a small interior margin so FIFO
  nudges cannot push them out), and clock models stay inside their
  advertised drift bands.  The trace-level validator double-checks every
  run in the tests.  The *only* exception is deliberate fault injection:
  a :class:`~repro.sim.faults.FaultPlan` may schedule out-of-spec delay or
  drift excursions, precisely to exercise the estimators' degraded mode.
* **FIFO links**: report propagation (Figure 2) requires per-direction
  FIFO delivery; arrivals on a directed link are clamped to be strictly
  increasing, staying within the transit spec (see DESIGN.md).
* **Loss and detection** (Sec 3.3): each send may be dropped with the
  link's i.i.d. loss probability, or by an injected fault (partition,
  correlated burst, crashed receiver).  Losses are recorded in the trace
  *at drop time* - the omniscient record never lags the counters.  The
  processors learn of a loss through one of two mechanisms:

  - the legacy **oracle**: after ``loss_detection_delay`` real time units
    the sender's ``on_loss_detected`` hook fires - the paper's assumed
    detection mechanism; or
  - a :class:`~repro.sim.faults.RetransmitPolicy`: each send arms an ack
    timeout; silence triggers ``on_loss_detected`` *and* an application
    level resend with exponential backoff up to a retry cap.  This turns
    the Sec 3.3 assumption into an actual recovery protocol.

  Successful deliveries trigger ``on_delivery_confirmed`` at the sender
  when ``confirm_deliveries`` is enabled (forced on by a retransmit
  policy, which cannot work without confirmations).
* **At-most-once delivery**: the paper's model gives every message at most
  one receive event.  Injected duplicates are therefore discarded by the
  receiving link layer (and counted); since an echo never becomes a receive
  event, it does not constrain the FIFO floor of genuine messages.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.csa_base import Estimator
from ..core.errors import ProtocolError, SimulationError
from ..core.events import Event, EventId, EventKind, ProcessorId
from .clock import ClockModel
from .faults import ActiveFaults, FaultPlan, RetransmitPolicy, scramble_estimator
from .network import LinkConfig, Network
from .trace import ExecutionTrace

__all__ = ["Message", "SimProcessor", "LinkCounters", "Simulation"]

#: minimal spacing forced between same-processor events and FIFO arrivals
_NUDGE = 1e-9


@dataclass
class Message:
    """An in-flight application message with its piggybacked CSA payloads."""

    send_event: Event
    payloads: Dict[str, object]
    info: object = None
    #: 0 for the original transmission, k for the k-th retransmission
    attempt: int = 0


class _DeliveryAction:
    """A scheduled message delivery, recognisable on the action queue.

    ``run_until`` coalesces runs of consecutively queued deliveries bound
    for the same destination into one batch (bulk local-time generation,
    hoisted per-destination lookups); everything else on the queue stays
    an opaque callable.
    """

    __slots__ = ("sim", "message", "arrival")

    def __init__(self, sim: "Simulation", message: "Message", arrival: float):
        self.sim = sim
        self.message = message
        self.arrival = arrival

    def __call__(self) -> None:
        self.sim._deliver(self.message, self.arrival)


@dataclass
class LinkCounters:
    """Per-directed-link message accounting (src -> dest)."""

    sent: int = 0
    lost: int = 0
    duplicated: int = 0

    @property
    def delivered(self) -> int:
        return self.sent - self.lost


@dataclass
class SimProcessor:
    """Run-time state of one simulated processor."""

    name: ProcessorId
    clock: ClockModel
    estimators: Dict[str, Estimator] = field(default_factory=dict)
    next_seq: int = 0
    last_event_rt: float = float("-inf")
    last_event_lt: float = float("-inf")

    def make_event(
        self,
        rt: float,
        kind: EventKind,
        *,
        dest: Optional[ProcessorId] = None,
        send_eid: Optional[EventId] = None,
        lt_hint: Optional[float] = None,
    ) -> Tuple[Event, float]:
        """Create this processor's next event at (approximately) ``rt``.

        Returns ``(event, actual_rt)``; ``actual_rt`` may be nudged forward
        to keep per-processor real times (hence local times) strictly
        increasing.  ``lt_hint`` is the precomputed ``clock.lt(rt)`` for
        the *unnudged* ``rt`` (from a :meth:`ClockModel.lt_batch` bulk
        read); it is discarded whenever the nudge changes ``rt``.
        """
        if rt <= self.last_event_rt:
            rt = self.last_event_rt + _NUDGE
            lt = self.clock.lt(rt)
        else:
            lt = self.clock.lt(rt) if lt_hint is None else lt_hint
        if lt <= self.last_event_lt:
            raise SimulationError(
                f"clock of {self.name!r} not strictly increasing at rt={rt}"
            )
        event = Event(
            eid=EventId(self.name, self.next_seq),
            lt=lt,
            kind=kind,
            dest=dest,
            send_eid=send_eid,
        )
        self.next_seq += 1
        self.last_event_rt = rt
        self.last_event_lt = lt
        return event, rt


class Simulation:
    """The simulator: one network, one workload-driven execution."""

    def __init__(
        self,
        network: Network,
        *,
        seed: int = 0,
        loss_detection_delay: float = 5.0,
        confirm_deliveries: bool = False,
        faults: Optional[FaultPlan] = None,
        retransmit: Optional[RetransmitPolicy] = None,
    ):
        self.network = network
        self.spec = network.spec
        self.rng = random.Random(seed)
        self.trace = ExecutionTrace()
        self.loss_detection_delay = loss_detection_delay
        self.retransmit = retransmit
        #: whether to signal on_delivery_confirmed (needed by unreliable-mode
        #: estimators; reliable runs skip the bookkeeping).  A retransmit
        #: policy requires confirmations, so it forces this on.
        self.confirm_deliveries = confirm_deliveries or retransmit is not None
        #: bound fault-plan runtime; its RNG stream is disjoint from self.rng,
        #: so a no-op plan leaves the execution bit-identical
        self.faults: Optional[ActiveFaults] = (
            faults.bind(network) if faults is not None else None
        )
        self.now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._tiebreak = itertools.count()
        self.processors: Dict[ProcessorId, SimProcessor] = {}
        for name in network.processors:
            clock = network.clocks[name]
            if self.faults is not None:
                clock = self.faults.clock_for(name, clock)
            self.processors[name] = SimProcessor(name, clock)
        #: last scheduled arrival per directed link, for FIFO clamping
        self._last_arrival: Dict[Tuple[ProcessorId, ProcessorId], float] = {}
        #: workload hook invoked at each delivery: fn(sim, receive_event, info)
        self.on_message: Optional[Callable[["Simulation", Event, object], None]] = None
        #: workload hook invoked on each detected loss: fn(sim, send_event, info)
        self.on_loss: Optional[Callable[["Simulation", Event, object], None]] = None
        self.messages_sent = 0
        self.messages_lost = 0
        self.messages_duplicated = 0
        #: application sends swallowed because the sender was crashed
        self.sends_suppressed = 0
        #: retransmissions issued by the retransmit policy
        self.retransmissions = 0
        #: timeouts that fired for messages actually delivered (false alarms)
        self.false_loss_signals = 0
        #: per-directed-link counters (src, dest) -> LinkCounters
        self.link_stats: Dict[Tuple[ProcessorId, ProcessorId], LinkCounters] = {}
        #: sends awaiting a delivery confirmation under the retransmit policy
        self._await_ack: Dict[EventId, Message] = {}
        # churn extension: state corruptions and late joins fire as ordinary
        # scheduled actions (estimators are attached before run_until drains
        # the queue, so the lazily bound hooks see them)
        if self.faults is not None:
            for inj in self.faults.corruptions():
                self.schedule_at(inj.at, lambda inj=inj: self._do_corrupt(inj))
            for inj in self.faults.late_joins().values():
                self.schedule_at(inj.at, lambda inj=inj: self._do_join(inj))

    # -- setup -------------------------------------------------------------------

    def attach_estimators(
        self, name: str, factory: Callable[[ProcessorId, object], Estimator]
    ) -> None:
        """Create one estimator per processor under payload channel ``name``."""
        for proc in self.processors.values():
            if name in proc.estimators:
                raise SimulationError(f"estimator channel {name!r} already attached")
            proc.estimators[name] = factory(proc.name, self.spec)

    def estimator(self, proc: ProcessorId, name: str) -> Estimator:
        return self.processors[proc].estimators[name]

    # -- scheduling ----------------------------------------------------------------

    def schedule_at(self, rt: float, action: Callable[[], None]) -> None:
        if rt < self.now:
            raise SimulationError(f"cannot schedule in the past ({rt} < {self.now})")
        heapq.heappush(self._queue, (rt, next(self._tiebreak), action))

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        self.schedule_at(self.now + delay, action)

    def schedule_local(
        self, proc: ProcessorId, lt: float, action: Callable[[], None]
    ) -> None:
        """Schedule an action when ``proc``'s own clock shows ``lt``."""
        rt = self.processors[proc].clock.rt(lt)
        self.schedule_at(rt, action)

    def local_time(self, proc: ProcessorId) -> float:
        return self.processors[proc].clock.lt(self.now)

    def crashed(self, proc: ProcessorId) -> bool:
        """Whether ``proc`` is inside an injected crash window right now."""
        return self.faults is not None and self.faults.crashed(proc, self.now)

    def _link_counters(self, src: ProcessorId, dest: ProcessorId) -> LinkCounters:
        key = (src, dest)
        counters = self.link_stats.get(key)
        if counters is None:
            counters = self.link_stats[key] = LinkCounters()
        return counters

    # -- event generation --------------------------------------------------------------

    def internal_event(self, proc: ProcessorId) -> Optional[Event]:
        """An internal point at ``proc`` (used to raise relative system speed).

        Suppressed (returns ``None``) while ``proc`` is crashed.
        """
        if self.crashed(proc):
            self.faults.note_crash_suppressed_internal()
            return None
        sp = self.processors[proc]
        event, rt = sp.make_event(self.now, EventKind.INTERNAL)
        self.trace.record(event, rt)
        for estimator in sp.estimators.values():
            estimator.on_internal(event)
        return event

    def send(
        self,
        src: ProcessorId,
        dest: ProcessorId,
        info: object = None,
        *,
        _attempt: int = 0,
    ) -> Optional[Event]:
        """Send an application message now; returns the send event.

        Returns ``None`` (no event, no message) when the sender is inside
        an injected crash window.
        """
        link = self.network.link_between(src, dest)
        if self.crashed(src):
            self.faults.note_crash_suppressed_send()
            self.sends_suppressed += 1
            return None
        sp = self.processors[src]
        send_event, send_rt = sp.make_event(self.now, EventKind.SEND, dest=dest)
        self.trace.record(send_event, send_rt)
        payloads = {
            name: estimator.on_send(send_event)
            for name, estimator in sp.estimators.items()
        }
        # Byzantine tampering rewrites payload *contents* only - the event
        # trace and all baseline RNG draws are untouched, so a run with a
        # liar is timing-identical to the honest run.
        if self.faults is not None:
            payloads = self.faults.tamper_payloads(src, dest, self.now, payloads)
        message = Message(
            send_event=send_event, payloads=payloads, info=info, attempt=_attempt
        )
        self.messages_sent += 1
        self._link_counters(src, dest).sent += 1
        if self.retransmit is not None:
            self._await_ack[send_event.eid] = message
            self.schedule_after(
                self.retransmit.timeout_for(_attempt),
                lambda: self._ack_timeout(message),
            )
        # baseline i.i.d. loss draw - same self.rng order as a fault-free run
        if link.loss_prob > 0 and self.rng.random() < link.loss_prob:
            self._drop(message, at_rt=send_rt)
            return send_event
        # injected drops (partition, correlated burst) use the fault stream only
        if self.faults is not None and self.faults.drop_in_transit(
            src, dest, send_rt
        ):
            self._drop(message, at_rt=send_rt)
            return send_event
        excursion_extra = (
            self.faults.delay_excursion(src, dest, send_rt)
            if self.faults is not None
            else None
        )
        arrival = self._fifo_arrival(
            src, dest, send_rt, link, excursion_extra=excursion_extra
        )
        self.schedule_at(arrival, _DeliveryAction(self, message, arrival))
        if self.faults is not None and self.faults.duplicated(src, dest, send_rt):
            # the echo trails the original; it is discarded at the receiver
            # without creating a receive event, so it does not constrain the
            # link's FIFO arrival floor for genuine messages
            echo = arrival + max(self.faults.echo_delay(arrival - send_rt), _NUDGE)
            self.schedule_at(echo, lambda: self._deliver_duplicate(message))
        return send_event

    def _fifo_arrival(
        self,
        src: ProcessorId,
        dest: ProcessorId,
        send_rt: float,
        link: LinkConfig,
        *,
        excursion_extra: Optional[float] = None,
    ) -> float:
        spec = link.spec_for(src)
        span = spec.slack if spec.is_bounded else link.unbounded_span
        # sample with a small interior margin so FIFO nudges stay in spec;
        # the draw happens even under an excursion so the baseline stream
        # stays aligned for everything the fault does not touch
        margin = 0.02 * span
        delay = spec.lower + margin + self.rng.random() * max(span - 2 * margin, 0.0)
        if excursion_extra is not None:
            if not spec.is_bounded:
                raise SimulationError(
                    f"delay excursion on ({src!r}, {dest!r}) needs a bounded transit spec"
                )
            # deliberate spec violation: land strictly beyond the upper bound
            delay = spec.upper + excursion_extra
        arrival = send_rt + delay
        key = (src, dest)
        floor = self._last_arrival.get(key, -1.0) + _NUDGE
        if arrival < floor:
            arrival = floor
        if excursion_extra is None:
            if spec.is_bounded and arrival > send_rt + spec.upper:
                if self.faults is not None and self.faults.link_has_delay_excursion(
                    src, dest
                ):
                    # collateral lateness: FIFO behind an out-of-spec arrival
                    # forces this message out of spec as well; let it through
                    # (it is part of the injected violation)
                    self._last_arrival[key] = arrival
                    return arrival
                previous = self._last_arrival.get(key, send_rt)
                arrival = 0.5 * (previous + send_rt + spec.upper)
                if arrival <= previous:
                    raise SimulationError(
                        f"cannot schedule FIFO arrival on {key} within transit spec"
                    )
            if arrival < send_rt + spec.lower:
                raise SimulationError(
                    f"arrival violates transit lower bound on {key}"
                )
        self._last_arrival[key] = arrival
        return arrival

    # -- delivery and loss ---------------------------------------------------------

    def _deliver(
        self, message: Message, arrival: float, *, lt_hint: Optional[float] = None
    ) -> None:
        send_event = message.send_event
        dest = send_event.dest
        if self.crashed(dest):
            # the message reached a dead host: lost at the doorstep
            self.faults.note_crash_dropped_arrival()
            self._drop(message, at_rt=arrival, already_sent=True)
            return
        dp = self.processors[dest]
        receive_event, recv_rt = dp.make_event(
            arrival, EventKind.RECEIVE, send_eid=send_event.eid, lt_hint=lt_hint
        )
        self.trace.record(receive_event, recv_rt)
        for name, estimator in dp.estimators.items():
            estimator.on_receive(receive_event, message.payloads.get(name))
        self._await_ack.pop(send_event.eid, None)
        if self.confirm_deliveries:
            for estimator in self.processors[send_event.proc].estimators.values():
                estimator.on_delivery_confirmed(send_event.eid)
        if self.on_message is not None:
            self.on_message(self, receive_event, message.info)

    def _deliver_duplicate(self, message: Message) -> None:
        """A duplicated copy arrives: the link layer discards it (at-most-once)."""
        send_event = message.send_event
        self.messages_duplicated += 1
        self._link_counters(send_event.proc, send_event.dest).duplicated += 1

    def _drop(
        self, message: Message, *, at_rt: float, already_sent: bool = False
    ) -> None:
        """Record a dropped message and arrange for its loss to be noticed.

        ``already_sent`` distinguishes drops at arrival time (crashed
        receiver) from drops at send time; both are recorded in the trace
        immediately, so ``messages_lost`` and ``trace.lost_sends`` agree at
        every instant - including at quiesce, when a drop would previously
        go unrecorded if the run ended inside the detection delay.
        """
        send_event = message.send_event
        self.messages_lost += 1
        self._link_counters(send_event.proc, send_event.dest).lost += 1
        self.trace.record_lost(send_event.eid)
        if self.retransmit is not None:
            return  # the armed ack timeout is the detection mechanism
        # legacy oracle: signal the sender after the detection delay
        if math.isfinite(self.loss_detection_delay):
            self.schedule_at(
                at_rt + self.loss_detection_delay,
                lambda: self._signal_loss(message),
            )
        else:
            # an infinite delay models "no detection mechanism": schedule
            # beyond any reachable time so the signal never fires
            heapq.heappush(
                self._queue,
                (math.inf, next(self._tiebreak), lambda: self._signal_loss(message)),
            )

    def _signal_loss(self, message: Message) -> None:
        """Tell the sender's estimators (and the workload) about a loss."""
        send_event = message.send_event
        for estimator in self.processors[send_event.proc].estimators.values():
            estimator.on_loss_detected(send_event.eid)
        if self.on_loss is not None:
            self.on_loss(self, send_event, message.info)

    def _detect_loss(self, message: Message) -> None:
        """Backwards-compatible alias for the oracle detection signal."""
        self._signal_loss(message)

    def _ack_timeout(self, message: Message) -> None:
        """Retransmit-policy timer: no confirmation in time means presumed lost."""
        send_event = message.send_event
        if self._await_ack.pop(send_event.eid, None) is None:
            return  # confirmed in time - nothing to do
        if send_event.eid not in self.trace.lost_sends:
            # the message is merely late (still in flight); the loss signal
            # is a false alarm - sound (flags on delivered messages are
            # ignored downstream) but worth counting
            self.false_loss_signals += 1
        self._signal_loss(message)
        if message.attempt >= self.retransmit.max_retries:
            return  # give up: graceful degradation, not an error
        src, dest = send_event.proc, send_event.dest
        if self.crashed(src):
            return  # a dead sender retries nothing
        retry = self.send(src, dest, message.info, _attempt=message.attempt + 1)
        if retry is not None:
            self.retransmissions += 1

    # -- churn: state corruption and late joins ---------------------------------------

    def _do_corrupt(self, inj) -> None:
        """Scramble one subsystem of every self-healing estimator at a victim.

        Deterministic per (victim, scope, time, channel); estimators without
        ``self_heal`` refuse the scramble (corrupting a non-healing estimator
        tests nothing but a crash) and the injection counts as skipped.
        """
        sp = self.processors[inj.proc]
        scrambled = False
        for name, estimator in sp.estimators.items():
            rng = random.Random(f"corrupt|{inj.proc}|{inj.scope}|{inj.at}|{name}")
            if scramble_estimator(estimator, inj.scope, rng):
                scrambled = True
        self.faults.injected[
            "corruptions" if scrambled else "corruptions_skipped"
        ] += 1

    def _do_join(self, inj) -> None:
        """Admit a late joiner via a sponsor bootstrap handshake.

        The sponsor sends an ordinary application message to the joiner (so
        the handshake rides the normal payload/FIFO/loss machinery); each
        sponsor estimator that supports it exports a snapshot *after* that
        send - covering it as an undelivered live point - and the joiner's
        matching estimator adopts it immediately (the snapshot travels out
        of band; only the records ride the message).  With the sponsor
        crashed or the snapshot unsupported, the joiner comes up cold and
        learns through regular traffic instead.
        """
        joiner, sponsor = inj.proc, inj.sponsor
        if self.faults.crashed(sponsor, self.now):
            self.faults.injected["joins_cold"] += 1
            return
        send_event = self.send(sponsor, joiner)
        if send_event is None:
            self.faults.injected["joins_cold"] += 1
            return
        jp = self.processors[joiner]
        sp = self.processors[sponsor]
        bootstrapped = False
        for name, estimator in jp.estimators.items():
            sponsor_est = sp.estimators.get(name)
            snap_fn = getattr(sponsor_est, "bootstrap_snapshot", None)
            adopt_fn = getattr(estimator, "bootstrap_from", None)
            if snap_fn is None or adopt_fn is None:
                continue
            try:
                snapshot = snap_fn()
            except ProtocolError:
                continue  # source-only backends hold no pairwise distances
            if adopt_fn(snapshot):
                bootstrapped = True
        self.faults.injected[
            "joins_bootstrapped" if bootstrapped else "joins_cold"
        ] += 1

    # -- main loop -----------------------------------------------------------------

    def run_until(self, rt_limit: float, *, max_actions: Optional[int] = None) -> int:
        """Process queued actions until ``rt_limit``; returns actions executed.

        Consecutively queued deliveries bound for the same destination are
        drained as one batch (:meth:`_deliver_batch`); execution order and
        all observable behaviour are identical to the scalar loop - the
        batch merely amortizes per-delivery lookups and local-time reads.
        """
        executed = 0
        queue = self._queue
        while queue and queue[0][0] <= rt_limit:
            if max_actions is not None and executed >= max_actions:
                break
            entry = heapq.heappop(queue)
            rt, _tie, action = entry
            if type(action) is _DeliveryAction:
                dest = action.message.send_event.dest
                batch = [entry]
                while (
                    queue
                    and queue[0][0] <= rt_limit
                    and type(queue[0][2]) is _DeliveryAction
                    and queue[0][2].message.send_event.dest == dest
                    and (max_actions is None or executed + len(batch) < max_actions)
                ):
                    batch.append(heapq.heappop(queue))
                if len(batch) > 1:
                    executed += self._deliver_batch(dest, batch)
                    continue
            self.now = rt
            action()
            executed += 1
        self.now = max(self.now, rt_limit)
        return executed

    def _deliver_batch(
        self, dest: ProcessorId, batch: List[Tuple[float, int, "_DeliveryAction"]]
    ) -> int:
        """Deliver a run of same-destination messages popped from the queue.

        Local times for the whole run are read through one
        :meth:`ClockModel.lt_batch` call (each hint is discarded if the
        per-processor nudge moves its event).  A delivery's hooks (the
        workload's ``on_message``, retransmit timers) may schedule actions
        *between* two batched arrivals; before each subsequent delivery
        the queue head is re-checked and any not-yet-delivered remainder
        is pushed back - entries keep their original ``(rt, tie)`` keys,
        so the resulting execution order is exactly the scalar schedule.
        """
        hints = self.processors[dest].clock.lt_batch(
            [entry[2].arrival for entry in batch]
        )
        queue = self._queue
        executed = 0
        for i, (rt, tie, action) in enumerate(batch):
            if i and queue and (queue[0][0], queue[0][1]) < (rt, tie):
                for entry in batch[i:]:
                    heapq.heappush(queue, entry)
                break
            self.now = rt
            self._deliver(action.message, action.arrival, lt_hint=hints[i])
            executed += 1
        return executed

    def pending_actions(self) -> int:
        return len(self._queue)
