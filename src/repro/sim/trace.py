"""Execution traces: the analyst's omniscient record of a simulation run.

The trace stores what the paper's *analysis* sees but the processors do
not: the real time of every event.  It powers the test oracles -

* building the global view (and any local view from any point),
* checking that the simulated execution satisfies its own specification
  (:func:`repro.core.theorem.check_execution`),
* verifying estimate soundness against true real times, and
* recomputing liveness and optimal bounds from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core.errors import SimulationError, UnknownEventError
from ..core.events import Event, EventId, ProcessorId
from ..core.view import View

__all__ = ["TracedEvent", "ExecutionTrace"]


@dataclass(frozen=True)
class TracedEvent:
    event: Event
    rt: float


class ExecutionTrace:
    """Chronological record of all events with their real occurrence times."""

    def __init__(self):
        self._records: List[TracedEvent] = []
        self._rt: Dict[EventId, float] = {}
        self._events: Dict[EventId, Event] = {}
        self._lost_sends: Set[EventId] = set()
        self._last_rt = -1.0

    # -- recording ----------------------------------------------------------------

    def record(self, event: Event, rt: float) -> None:
        if event.eid in self._rt:
            raise SimulationError(f"event {event.eid} traced twice")
        if rt < self._last_rt:
            raise SimulationError(
                f"trace not chronological: {rt} after {self._last_rt}"
            )
        self._records.append(TracedEvent(event, rt))
        self._rt[event.eid] = rt
        self._events[event.eid] = event
        self._last_rt = rt

    def record_lost(self, send_eid: EventId) -> None:
        if send_eid not in self._rt:
            raise SimulationError(f"lost message for untraced send {send_eid}")
        self._lost_sends.add(send_eid)

    # -- access --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TracedEvent]:
        return iter(self._records)

    def rt_of(self, eid: EventId) -> float:
        try:
            return self._rt[eid]
        except KeyError:
            raise UnknownEventError(f"event {eid} not in trace") from None

    def event(self, eid: EventId) -> Event:
        try:
            return self._events[eid]
        except KeyError:
            raise UnknownEventError(f"event {eid} not in trace") from None

    @property
    def lost_sends(self) -> Set[EventId]:
        return set(self._lost_sends)

    @property
    def real_times(self) -> Dict[EventId, float]:
        return dict(self._rt)

    def events_of(self, proc: ProcessorId) -> List[TracedEvent]:
        return [r for r in self._records if r.event.proc == proc]

    def event_count(self, proc: Optional[ProcessorId] = None) -> int:
        if proc is None:
            return len(self._records)
        return sum(1 for r in self._records if r.event.proc == proc)

    def link_summary(self) -> Dict[Tuple[ProcessorId, ProcessorId], Dict[str, int]]:
        """Per-directed-link ``{sent, lost, delivered}`` counts from the record.

        Derived purely from traced events and loss marks, so it cross-checks
        the engine's live :attr:`~repro.sim.engine.Simulation.link_stats`
        (which additionally counts discarded duplicates - those never become
        events, hence are invisible here).
        """
        summary: Dict[Tuple[ProcessorId, ProcessorId], Dict[str, int]] = {}
        for record in self._records:
            event = record.event
            if not event.is_send:
                continue
            key = (event.proc, event.dest)
            stats = summary.setdefault(key, {"sent": 0, "lost": 0, "delivered": 0})
            stats["sent"] += 1
            if event.eid in self._lost_sends:
                stats["lost"] += 1
        for stats in summary.values():
            stats["delivered"] = stats["sent"] - stats["lost"]
        return summary

    # -- derived structures -----------------------------------------------------------

    def global_view(self) -> View:
        """The whole execution as a view (insertion order is chronological,
        which is a valid topological order)."""
        view = View()
        for record in self._records:
            view.add(record.event)
        return view

    def local_view(self, point: EventId) -> View:
        """The local view from ``point`` - the oracle for Lemma 3.1."""
        return self.global_view().view_from(point)

    # -- complexity accounting ----------------------------------------------------------

    def relative_system_speed(self) -> int:
        """Empirical ``K1``: max events system-wide strictly between two
        consecutive events of the same processor.

        Lemma 3.3 and Theorem 3.6 parameterise complexity by this number.
        """
        worst = 0
        last_index: Dict[ProcessorId, int] = {}
        for index, record in enumerate(self._records):
            proc = record.event.proc
            if proc in last_index:
                between = index - last_index[proc] - 1
                worst = max(worst, between)
            last_index[proc] = index
        return worst

    def link_send_speed(self) -> int:
        """Empirical ``K1`` in the Lemma 3.3 sense: max events system-wide
        strictly between two successive send events on the same link
        (either direction).

        Lemma 3.3 bounds ``|H_v|`` by ``O(K1 * (D + 1))`` with this
        parameter; Theorem 3.6 uses the per-processor variant
        (:meth:`relative_system_speed`).
        """
        worst = 0
        last_index: Dict[Tuple[ProcessorId, ProcessorId], int] = {}
        for index, record in enumerate(self._records):
            event = record.event
            if not event.is_send:
                continue
            lid = event.link
            if lid in last_index:
                worst = max(worst, index - last_index[lid] - 1)
            last_index[lid] = index
        return worst

    def link_asymmetry(self) -> int:
        """Empirical ``K2``: max sends one way on a link between two
        consecutive sends the other way (Lemma 4.1)."""
        worst = 0
        # per directed link: run length of consecutive sends in that direction
        run: Dict[Tuple[ProcessorId, ProcessorId], int] = {}
        for record in self._records:
            event = record.event
            if not event.is_send:
                continue
            forward = (event.proc, event.dest)
            backward = (event.dest, event.proc)
            run[forward] = run.get(forward, 0) + 1
            run[backward] = 0
            worst = max(worst, run[forward])
        return worst

    def max_live_points(self) -> int:
        """Peak of |live points| over the growing global view (oracle for
        Lemma 4.1), ignoring loss flags."""
        view = View()
        worst = 0
        for record in self._records:
            view.add(record.event)
            worst = max(worst, len(view.live_points()))
        return worst
